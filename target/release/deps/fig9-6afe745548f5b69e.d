/root/repo/target/release/deps/fig9-6afe745548f5b69e.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-6afe745548f5b69e: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
