/root/repo/target/debug/deps/quokka-d22d2d6b304225c2.d: crates/quokka/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquokka-d22d2d6b304225c2.rmeta: crates/quokka/src/lib.rs Cargo.toml

crates/quokka/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
