/root/repo/target/release/deps/quokka_batch-3683d96cb56ca259.d: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs

/root/repo/target/release/deps/libquokka_batch-3683d96cb56ca259.rlib: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs

/root/repo/target/release/deps/libquokka_batch-3683d96cb56ca259.rmeta: crates/batch/src/lib.rs crates/batch/src/batch.rs crates/batch/src/codec.rs crates/batch/src/column.rs crates/batch/src/compute.rs crates/batch/src/datatype.rs crates/batch/src/rowkey.rs crates/batch/src/schema.rs

crates/batch/src/lib.rs:
crates/batch/src/batch.rs:
crates/batch/src/codec.rs:
crates/batch/src/column.rs:
crates/batch/src/compute.rs:
crates/batch/src/datatype.rs:
crates/batch/src/rowkey.rs:
crates/batch/src/schema.rs:
