/root/repo/target/debug/deps/quokka_gcs-8bdb3c41014a729d.d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/debug/deps/quokka_gcs-8bdb3c41014a729d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

crates/gcs/src/lib.rs:
crates/gcs/src/kv.rs:
crates/gcs/src/tables.rs:
