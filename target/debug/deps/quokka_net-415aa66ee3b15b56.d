/root/repo/target/debug/deps/quokka_net-415aa66ee3b15b56.d: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_net-415aa66ee3b15b56.rmeta: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/flight.rs:
crates/net/src/plane.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
