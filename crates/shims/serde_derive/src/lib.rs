//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, and the codebase only uses
//! `#[derive(Serialize, Deserialize)]` as documentation of intent — all real
//! serialization goes through the hand-written codec in `quokka-batch`. The
//! derives therefore expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
