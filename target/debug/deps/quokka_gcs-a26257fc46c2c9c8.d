/root/repo/target/debug/deps/quokka_gcs-a26257fc46c2c9c8.d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/debug/deps/libquokka_gcs-a26257fc46c2c9c8.rmeta: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

crates/gcs/src/lib.rs:
crates/gcs/src/kv.rs:
crates/gcs/src/tables.rs:
