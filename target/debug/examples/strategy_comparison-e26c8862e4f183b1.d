/root/repo/target/debug/examples/strategy_comparison-e26c8862e4f183b1.d: examples/strategy_comparison.rs

/root/repo/target/debug/examples/libstrategy_comparison-e26c8862e4f183b1.rmeta: examples/strategy_comparison.rs

examples/strategy_comparison.rs:
