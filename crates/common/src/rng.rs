//! Deterministic pseudo-random number generation helpers.
//!
//! Experiments, the TPC-H data generator and randomised placement decisions
//! during recovery all need to be reproducible from a seed. This module
//! provides a tiny, allocation-free SplitMix64/xorshift-style generator that
//! is stable across platforms and Rust versions (unlike `rand`'s `StdRng`,
//! whose algorithm is not guaranteed to stay fixed), plus hashing helpers
//! used to derive independent streams (e.g. one per table, per column, per
//! row) from a single master seed.

/// A small, fast, deterministic PRNG (xoshiro256** seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let state =
            [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)];
        DetRng { state }
    }

    /// Derive an independent stream from this seed and a stream identifier.
    /// Used to give every table/column/partition its own generator so data
    /// generation can be parallelised and re-generated piecemeal (a failed
    /// input task must regenerate exactly the same split).
    pub fn derive(seed: u64, stream: u64) -> Self {
        Self::new(mix64(seed ^ mix64(stream)))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be > 0");
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // the tiny modulo bias is irrelevant for synthetic data.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Pick one element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// True with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// A stable 64-bit mixer used for hash partitioning and stream derivation.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x = (x ^ (x >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Stable FNV-1a hash of a byte slice, used for hashing string join keys.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn derived_streams_are_independent_and_reproducible() {
        let mut a1 = DetRng::derive(7, 100);
        let mut a2 = DetRng::derive(7, 100);
        let mut b = DetRng::derive(7, 101);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let v = rng.range_i64(-5, 17);
            assert!((-5..=17).contains(&v));
            let f = rng.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&f));
            let u = rng.next_below(7);
            assert!(u < 7);
        }
    }

    #[test]
    fn next_f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::new(11);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fnv_and_mix_are_stable() {
        // Pinned values: these hashes feed hash partitioning, so changing
        // them would silently change which channel owns which key.
        assert_eq!(fnv1a(b"lineitem"), fnv1a(b"lineitem"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(mix64(1), mix64(2));
        assert_eq!(mix64(0x1234), mix64(0x1234));
    }

    #[test]
    fn chance_and_pick() {
        let mut rng = DetRng::new(99);
        let items = [1, 2, 3, 4];
        for _ in 0..100 {
            assert!(items.contains(rng.pick(&items)));
        }
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits {hits} not near 25%");
    }
}
