/root/repo/target/debug/deps/fig9-8368cc9860bcf741.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-8368cc9860bcf741.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
