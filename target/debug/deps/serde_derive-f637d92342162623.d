/root/repo/target/debug/deps/serde_derive-f637d92342162623.d: crates/shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-f637d92342162623.rmeta: crates/shims/serde_derive/src/lib.rs Cargo.toml

crates/shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
