//! The coordinator: fault injection, failure detection and Algorithm 2.
//!
//! The coordinator never talks to TaskManagers directly (§IV-B/C): every
//! action is an edit of the GCS. On failure it raises the pause barrier,
//! reconciles the GCS to a consistent state — rewinding the channels that
//! lived on the failed worker, scheduling replay of the partitions they need
//! that still exist on live workers' disks (or in the durable store under
//! the spooling strategy), and rewinding producers whose partitions are
//! gone — then lowers the barrier and lets the TaskManagers carry on.
//! Rewound stateful channels of different stages land on different workers:
//! pipeline-parallel recovery (§III-B).

use crate::worker::Services;
use quokka_common::config::FailureSpec;
use quokka_common::ids::{ChannelAddr, WorkerId};
use quokka_common::{QuokkaError, Result};
use quokka_gcs::tables::{ChannelState, ReplayRequest, TaskEntry};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the coordinator's supervision of one query ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordinatorOutcome {
    /// The sink stage finished; every result batch has been streamed.
    Completed,
    /// The query failed with an unrecoverable error.
    Failed(String),
    /// A worker died and the configured strategy has no intra-query
    /// recovery; the caller should restart the query on the surviving
    /// workers (the paper's restart baseline).
    NeedsRestart { failed: Vec<WorkerId> },
}

/// The coordinator for one query execution.
pub struct Coordinator {
    services: Arc<Services>,
    /// Abort the query if it makes no progress for this long (defensive
    /// watchdog so a scheduling bug cannot hang the benchmark harness).
    pub watchdog: Duration,
}

impl Coordinator {
    pub fn new(services: Arc<Services>) -> Self {
        // `QUOKKA_WATCHDOG_SECS` shortens the no-progress abort for
        // stress-testing liveness; production default is 120s.
        let watchdog = std::env::var("QUOKKA_WATCHDOG_SECS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_secs(120));
        Coordinator { services, watchdog }
    }

    /// Fraction of all input splits consumed so far — the progress measure
    /// used to decide when to inject a failure ("a worker machine is killed
    /// halfway through the query", §V-D).
    pub fn progress(&self) -> f64 {
        let total = self.services.layout.total_splits();
        if total == 0 {
            return 1.0;
        }
        let mut consumed = 0u64;
        for stage in &self.services.layout.graph.stages {
            if !stage.is_scan() {
                continue;
            }
            for channel in self.services.layout.channels_of(stage.id) {
                if let Some(state) = self.services.gcs.get_channel(channel) {
                    consumed += state.splits_consumed as u64;
                }
            }
        }
        consumed as f64 / total as f64
    }

    fn sink_done(&self) -> bool {
        self.services
            .layout
            .channels_of(self.services.layout.sink())
            .iter()
            .all(|&c| self.services.gcs.get_channel(c).map(|s| s.done).unwrap_or(false))
    }

    /// Supervise the query until completion, failure or restart.
    pub fn run(&self) -> CoordinatorOutcome {
        let mut pending: Vec<FailureSpec> = self.services.config.failures.clone();
        pending.sort_by(|a, b| a.at_progress.total_cmp(&b.at_progress));
        let mut injected: Vec<WorkerId> = Vec::new();
        let heartbeat = self.services.config.cluster.heartbeat_interval;
        let start = Instant::now();
        let mut last_progress = (0u64, Instant::now());

        loop {
            if let Some(error) = self.services.gcs.query_error() {
                return CoordinatorOutcome::Failed(error);
            }
            if self.services.is_cancelled() {
                // The consuming stream was dropped; stop computing a result
                // nobody will read. Workers exit on the done flag.
                self.services.gcs.set_query_done();
                return CoordinatorOutcome::Failed(
                    "query cancelled: result stream dropped".to_string(),
                );
            }

            // Inject any failures whose trigger point has been reached.
            // This happens *before* the completion check: a fast query can
            // sprint from the trigger fraction to done within one heartbeat,
            // and an injection the configuration promised must still land
            // (killing a worker whose channels all finished is harmless —
            // recovery finds nothing to rewind).
            let progress = self.progress();
            while let Some(spec) = pending.first().copied() {
                if progress < spec.at_progress {
                    break;
                }
                pending.remove(0);
                if spec.worker >= self.services.layout.workers()
                    || self.services.is_killed(spec.worker)
                {
                    continue;
                }
                self.services.kill_worker(spec.worker);
                injected.push(spec.worker);
                if !self.services.config.fault.supports_intra_query_recovery() {
                    self.services.gcs.set_query_error(
                        "worker failed and the strategy has no intra-query recovery",
                    );
                    return CoordinatorOutcome::NeedsRestart { failed: injected };
                }
                // Failure detection (the heartbeat round trip), then recovery.
                std::thread::sleep(heartbeat);
                let planning_start = Instant::now();
                if let Err(e) = self.recover(spec.worker) {
                    self.services.gcs.set_query_error(&format!("recovery failed: {e}"));
                    return CoordinatorOutcome::Failed(format!("recovery failed: {e}"));
                }
                self.services.metrics.add_recovery_planning(planning_start.elapsed());
            }

            if self.sink_done() {
                self.services.gcs.set_query_done();
                return CoordinatorOutcome::Completed;
            }

            // Watchdog: abort if the task counter stops moving for too long.
            let tasks = self.services.metrics.snapshot(Duration::ZERO).tasks_executed;
            if tasks != last_progress.0 {
                last_progress = (tasks, Instant::now());
            } else if last_progress.1.elapsed() > self.watchdog {
                let message = format!(
                    "watchdog: no task progress for {:?} (elapsed {:?})",
                    self.watchdog,
                    start.elapsed()
                );
                // Dump the stuck state: which channels are unfinished, where
                // they are assigned, and what their watermarks look like.
                eprintln!("[watchdog] paused={}", self.services.gcs.is_paused());
                for state in self.services.gcs.all_channels() {
                    if !state.done {
                        eprintln!(
                            "[watchdog] stuck channel {} worker={} committed={:?} \
                             consumed={:?} splits={} rewind={:?} killed={}",
                            state.addr,
                            state.worker,
                            state.committed_seq,
                            state.consumed,
                            state.splits_consumed,
                            state.rewind_until,
                            self.services.is_killed(state.worker),
                        );
                        for (flat, (_, upstream)) in self
                            .services
                            .layout
                            .upstream_channels(state.addr.stage)
                            .iter()
                            .enumerate()
                        {
                            let up = self.services.gcs.get_channel(*upstream);
                            let produced = up.as_ref().map(|u| u.outputs_produced()).unwrap_or(0);
                            let consumed = state.consumed.get(flat).copied().unwrap_or(0);
                            if consumed < produced {
                                let inbox = self
                                    .services
                                    .plane
                                    .server(state.worker)
                                    .map(|s| {
                                        s.available_from(state.addr, *upstream, consumed).len()
                                    })
                                    .unwrap_or(0);
                                eprintln!(
                                    "[watchdog]   waiting on {} ({}/{} consumed, {} in inbox, \
                                     up done={:?})",
                                    upstream,
                                    consumed,
                                    produced,
                                    inbox,
                                    up.map(|u| u.done),
                                );
                                for seq in consumed..produced {
                                    let name = upstream.task(seq);
                                    let in_inbox = self
                                        .services
                                        .plane
                                        .server(state.worker)
                                        .map(|s| s.has_slice(state.addr, name))
                                        .unwrap_or(false);
                                    let lineage = self.services.gcs.lineage_committed(name);
                                    if !in_inbox || !lineage {
                                        eprintln!(
                                            "[watchdog]     seq {seq}: in_inbox={in_inbox} \
                                             lineage_committed={lineage}"
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                for w in 0..self.services.layout.workers() {
                    for r in self.services.gcs.replays_for_worker(w) {
                        eprintln!(
                            "[watchdog] pending replay owner={} partition={} consumer={} \
                             owner_killed={}",
                            w,
                            r.partition,
                            r.consumer,
                            self.services.is_killed(w)
                        );
                    }
                }
                self.services.gcs.set_query_error(&message);
                return CoordinatorOutcome::Failed(message);
            }
            std::thread::sleep(heartbeat);
        }
    }

    /// Algorithm 2: reconcile the GCS after `failed` died.
    pub fn recover(&self, failed: WorkerId) -> Result<()> {
        let services = &self.services;
        let layout = &services.layout;
        let gcs = &services.gcs;

        gcs.set_paused(true);
        gcs.mark_worker_failed(failed);
        // Give in-flight commits a moment to abort against the barrier.
        std::thread::sleep(Duration::from_millis(2));

        let live = services.live_workers();
        if live.is_empty() {
            gcs.set_paused(false);
            return Err(QuokkaError::Unschedulable(ChannelAddr::new(0, 0)));
        }

        // R: channels that must be rewound. Start with every unfinished
        // channel hosted by the failed worker.
        let mut rewind: BTreeSet<ChannelAddr> = gcs
            .all_channels()
            .into_iter()
            .filter(|c| c.worker == failed && !c.done)
            .map(|c| c.addr)
            .collect();

        // Walk the stages in reverse topological order, scheduling replays
        // for the inputs every rewound channel needs, and rewinding the
        // producers whose partitions no longer exist anywhere.
        let mut replays: Vec<ReplayRequest> = Vec::new();
        for stage in layout.graph.reverse_topological() {
            for channel in layout.channels_of(stage) {
                if !rewind.contains(&channel) {
                    continue;
                }
                for (_, upstream) in layout.upstream_channels(stage) {
                    if rewind.contains(upstream) {
                        // The producer itself is being rewound; it will
                        // re-push everything.
                        continue;
                    }
                    let Some(upstream_state) = gcs.get_channel(*upstream) else { continue };
                    let mut lost_producer = false;
                    for seq in 0..upstream_state.outputs_produced() {
                        let partition = upstream.task(seq);
                        let entry = gcs.get_partition(partition);
                        match entry {
                            Some(e) if e.spooled => replays.push(ReplayRequest {
                                owner: live[(seq as usize) % live.len()],
                                partition,
                                consumer: channel,
                            }),
                            Some(e)
                                if e.backed_up
                                    && !services.is_killed(e.owner)
                                    && e.owner != failed =>
                            {
                                replays.push(ReplayRequest {
                                    owner: e.owner,
                                    partition,
                                    consumer: channel,
                                })
                            }
                            _ => {
                                lost_producer = true;
                            }
                        }
                    }
                    if lost_producer {
                        rewind.insert(*upstream);
                    }
                }
            }
        }

        // Reassign and reset every rewound channel. Stateful channels of
        // different stages go to different live workers — the degree of
        // recovery parallelism is therefore bounded by the number of stages
        // (pipeline-parallel recovery), exactly as §III-B describes.
        for channel in &rewind {
            let previous = gcs
                .get_channel(*channel)
                .ok_or_else(|| QuokkaError::NotFound(format!("channel {channel}")))?;
            let new_worker = live[(channel.stage as usize + channel.channel as usize) % live.len()];
            let mut state = ChannelState::new(
                *channel,
                new_worker,
                layout.upstream_channels(channel.stage).len(),
            );
            state.rewind_until = previous.committed_seq;
            gcs.put_channel(&state);
            gcs.put_task(&TaskEntry { task: channel.task(0), worker: new_worker });
        }

        // Replays only matter for partitions feeding rewound channels; they
        // can be served concurrently by their owner workers ("replay tasks
        // are pushed to TaskManagers that hold them").
        for replay in &replays {
            // Skip replays whose producer ended up rewound after all.
            if rewind.contains(&replay.partition.channel_addr()) {
                continue;
            }
            gcs.add_replay(replay);
        }

        gcs.set_paused(false);
        Ok(())
    }
}
