//! Streaming result delivery: the first batch of a multi-batch query is
//! observable before the query completes, `collect()` stays equivalent to
//! the old materialize-then-return behavior, and fault tolerance composes
//! with incremental delivery (replay deduplication, restart semantics).

use quokka::dataframe::{col, lit};
use quokka::{
    same_result, Batch, Column, CostModelConfig, DataType, EngineConfig, FailureSpec,
    FaultStrategy, QuokkaSession, Schema,
};

/// A session whose `events` table has many input splits, so the scan-shaped
/// queries below emit many sink partitions over time.
fn session(workers: u32) -> QuokkaSession {
    let session = QuokkaSession::new(EngineConfig::quokka(workers));
    let schema = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Float64)]);
    let rows = 20_000i64;
    let batch = Batch::try_new(
        schema.clone(),
        vec![
            Column::Int64((0..rows).collect()),
            Column::Float64((0..rows).map(|i| (i % 97) as f64).collect()),
        ],
    )
    .unwrap();
    session.register_table("events", schema, batch.chunks(512));
    session
}

/// The sink of this query is the (fused) scan+filter stage itself, so every
/// scan task that commits emits a result partition — the streaming-friendly
/// shape.
fn scan_query(session: &QuokkaSession) -> quokka::DataFrame {
    session.table("events").unwrap().filter(col("v").lt(lit(90.0f64))).unwrap()
}

#[test]
fn first_batch_arrives_before_the_query_completes() {
    let session = session(2);
    let frame = scan_query(&session);
    let expected = frame.collect_reference().unwrap();

    let mut stream = frame.stream().unwrap();
    let first = stream.next_batch().unwrap().expect("query has results");
    // The finish event has not been seen yet: the stream handed us rows
    // while, from the consumer's perspective, the query was still running.
    assert!(!stream.is_finished());
    assert!(stream.metrics().is_none());
    assert!(first.num_rows() > 0);

    // More batches follow the first one. The engine's event channel is
    // FIFO, so a second batch *after* the first proves the first was
    // emitted strictly before the query completed.
    let mut rows = first.num_rows() as u64;
    let mut batches = 1u64;
    while let Some(batch) = stream.next_batch().unwrap() {
        rows += batch.num_rows() as u64;
        batches += 1;
    }
    assert!(batches >= 2, "a multi-split scan must stream multiple batches, got {batches}");
    assert_eq!(rows, expected.num_rows() as u64);
    assert!(stream.is_finished());

    // The engine's own clock agrees: the first sink emission landed before
    // the query's total runtime elapsed.
    let metrics = stream.metrics().unwrap();
    // One sink emission may carry several batches; the engine counts
    // emissions, the stream counts batches.
    assert!(metrics.result_batches >= 2 && metrics.result_batches <= batches);
    let first_at = metrics.time_to_first_batch.expect("sink emitted batches");
    assert!(
        first_at < metrics.runtime,
        "first batch at {first_at:?} must precede completion at {:?}",
        metrics.runtime
    );
}

/// With simulated data-path delays the gap is macroscopic: the first batch
/// lands in a fraction of the total runtime (the quantity the streaming
/// bench tracks for TPC-H Q1).
#[test]
fn time_to_first_batch_beats_time_to_last_batch_under_realistic_costs() {
    let config = EngineConfig::quokka(2).with_cost(CostModelConfig::scaled(0.2));
    let session = session(2).with_config(config);
    let outcome = scan_query(&session).collect().unwrap();
    let first = outcome.metrics.time_to_first_batch.unwrap();
    assert!(outcome.metrics.result_batches >= 4);
    assert!(
        first.as_secs_f64() < outcome.metrics.runtime.as_secs_f64() * 0.75,
        "first batch ({first:?}) should land well before completion ({:?})",
        outcome.metrics.runtime
    );
}

#[test]
fn collect_refuses_a_partially_consumed_stream() {
    // Batches handed out by next_batch() cannot be reclaimed, so collect()
    // on a used stream would silently lose rows — it must error instead.
    let session = session(2);
    let mut stream = scan_query(&session).stream().unwrap();
    let _first = stream.next_batch().unwrap().expect("query has results");
    let err = stream.collect().unwrap_err();
    assert!(err.to_string().contains("unconsumed"), "{err}");
}

#[test]
fn collect_is_equivalent_to_draining_the_stream() {
    let session = session(3);
    let frame = scan_query(&session);
    let collected = frame.collect().unwrap();
    let mut streamed_rows = Vec::new();
    for batch in frame.stream().unwrap() {
        streamed_rows.push(batch.unwrap());
    }
    let streamed = Batch::concat(&streamed_rows).unwrap();
    assert!(same_result(&collected.batch, &streamed));
    assert!(same_result(&collected.batch, &frame.collect_reference().unwrap()));
}

#[test]
fn streaming_deduplicates_replayed_sink_partitions_under_failure() {
    // Kill a worker halfway; write-ahead-lineage recovery rewinds channels
    // and replays sink emissions under their original task names. The
    // stream must not double-deliver them.
    let session =
        session(3).with_config(EngineConfig::quokka(3).with_failure(FailureSpec::new(1, 0.4)));
    let frame = scan_query(&session);
    let expected = frame.collect_reference().unwrap();

    let mut stream = frame.stream().unwrap();
    let mut rows = 0u64;
    while let Some(batch) = stream.next_batch().unwrap() {
        rows += batch.num_rows() as u64;
    }
    assert_eq!(rows, expected.num_rows() as u64, "recovery must not duplicate streamed rows");
    assert_eq!(stream.metrics().unwrap().failures, 1);
}

#[test]
fn restart_baseline_collects_but_refuses_mid_stream_restart() {
    let config = EngineConfig::quokka(3)
        .with_fault(FaultStrategy::None)
        .with_failure(FailureSpec::new(1, 0.3));
    let session = session(3).with_config(config);
    let frame = scan_query(&session);
    let expected = frame.collect_reference().unwrap();

    // collect() owns every batch until the end, so the restart baseline can
    // discard the first attempt and rerun transparently — exactly the old
    // blocking behavior.
    let outcome = frame.collect().unwrap();
    assert!(same_result(&outcome.batch, &expected));
    assert_eq!(outcome.metrics.failures, 1);

    // The incremental path cannot retract rows it already handed out: once
    // a batch has been delivered, a restart surfaces as an error.
    let mut stream = frame.stream().unwrap();
    let mut delivered = 0u64;
    let error = loop {
        match stream.next_batch() {
            Ok(Some(batch)) => delivered += batch.num_rows() as u64,
            Ok(None) => panic!("restart after {delivered} delivered rows must surface an error"),
            Err(e) => break e,
        }
    };
    assert!(error.to_string().contains("restart"), "{error}");
    // A failure is reported exactly once; after that the stream is fused,
    // so iterator-style consumers terminate instead of looping on the
    // stored error.
    assert!(stream.next_batch().unwrap().is_none());
    assert!(stream.next().is_none());
}

#[test]
fn dropping_a_stream_cancels_the_query_and_the_session_stays_usable() {
    // Slow the data paths down so the query is certainly still running when
    // the stream is dropped.
    let config = EngineConfig::quokka(2).with_cost(CostModelConfig::scaled(0.2));
    let session = session(2).with_config(config);
    let frame = scan_query(&session);

    let mut stream = frame.stream().unwrap();
    let _first = stream.next_batch().unwrap();
    drop(stream);

    // The session (and its catalog) are unaffected; later queries run
    // normally, including on the same table.
    let outcome = session
        .table("events")
        .unwrap()
        .filter(col("k").lt(lit(100i64)))
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(outcome.batch.num_rows(), 100);
}

#[test]
fn sql_and_tpch_handles_stream_too() {
    let session = QuokkaSession::tpch(0.002, 2).unwrap();
    // SQL handle.
    let mut stream = session
        .sql("SELECT o_orderpriority FROM orders WHERE o_orderkey < 500")
        .unwrap()
        .stream()
        .unwrap();
    let mut rows = 0;
    while let Some(batch) = stream.next_batch().unwrap() {
        assert_eq!(batch.schema().column_names(), vec!["o_orderpriority"]);
        rows += batch.num_rows();
    }
    assert!(rows > 0);

    // Hand-built TPC-H plan handle: Q1's sink is a sort, so the whole
    // result arrives as one batch — but through the same streaming path.
    let mut stream = session.tpch_query(1).unwrap().stream().unwrap();
    let batch = stream.next_batch().unwrap().expect("Q1 has rows");
    assert!(stream.next_batch().unwrap().is_none());
    let expected = session.tpch_query(1).unwrap().collect_reference().unwrap();
    assert!(same_result(&batch, &expected));

    // EXPLAIN statements stream their rendering.
    let mut stream =
        session.sql("EXPLAIN SELECT count(*) AS n FROM orders").unwrap().stream().unwrap();
    let rendering = stream.next_batch().unwrap().unwrap();
    assert!(rendering.as_strs("plan").unwrap().iter().any(|l| l.contains("Optimized plan")));
}
