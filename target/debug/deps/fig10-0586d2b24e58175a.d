/root/repo/target/debug/deps/fig10-0586d2b24e58175a.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/libfig10-0586d2b24e58175a.rmeta: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
