/root/repo/target/debug/deps/fig11-d1aa89b5a93c605b.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-d1aa89b5a93c605b.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
