/root/repo/target/debug/deps/quokka_bench-0cece4aa9059e01b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libquokka_bench-0cece4aa9059e01b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
