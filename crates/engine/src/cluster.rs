//! Multi-process clusters: real worker processes over the TCP transport.
//!
//! The in-process runtime ([`runtime`](crate::runtime)) hosts every
//! TaskManager as a thread and every service as a shared `Arc`. This module
//! splits that picture across OS processes the way the paper's deployment
//! does across machines:
//!
//! * The **driver** process keeps the authoritative services — the GCS
//!   [`KvStore`], the durable object store, the result sink and the
//!   [`Coordinator`] — and hosts *no* workers. It exposes them over a tiny
//!   length-prefixed control protocol ([`quokka_gcs::remote`]) on a loopback
//!   listener.
//! * Each **workerd** process ([`run_workerd`], driven by the
//!   `quokka-workerd` binary) hosts a contiguous range of workers. Its GCS
//!   handle is a [`KvStore::remote`] proxy, its durable store a
//!   [`RemoteDurable`] proxy, and its shuffle plane a real
//!   [`TcpTransport`] mesh wired to every peer process.
//!
//! Because every recovery action in Quokka is a GCS edit, the coordinator's
//! failure handling is *unchanged*: SIGKILL a workerd process and its
//! heartbeats stop flowing to the driver, the detector suspects and then
//! kills its workers, and channel reconciliation plus lineage replay resume
//! the query on the survivors — the same Algorithm 2 path the thread-based
//! chaos tests exercise.

use crate::layout::QueryLayout;
use crate::recovery::{Coordinator, CoordinatorOutcome};
use crate::runtime::QueryOutcome;
use crate::stream::{BatchStream, StreamEvent};
use crate::worker::{spawn_workers_for, Services};
use bytes::Bytes;
use parking_lot::Mutex;
use quokka_batch::codec::{decode_partition, encode_partition};
use quokka_batch::wire::{self, WireReader};
use quokka_batch::{Batch, Schema};
use quokka_common::config::EngineConfig;
use quokka_common::ids::{TaskName, WorkerId};
use quokka_common::metrics::{MetricsRegistry, PeerWireStats};
use quokka_common::{QuokkaError, Result};
use quokka_gcs::remote::{
    self, ControlClient, OP_DURABLE_CONTAINS, OP_DURABLE_GET, OP_DURABLE_LIST, OP_DURABLE_PUT,
    OP_HEARTBEAT, OP_SINK_EMIT, OP_WIRE_STATS,
};
use quokka_gcs::tables::{ChannelState, TaskEntry};
use quokka_gcs::{Gcs, KvStore};
use quokka_net::{DataPlane, FlightServer, TcpTransport};
use quokka_plan::stage::StageGraph;
use quokka_storage::{CostModel, DurableObjectStore, LocalBackupStore, ObjectStore};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long a workerd waits for every peer process to publish its shuffle
/// address before giving up. Generous: peers may still be compiling their
/// table snapshots.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(60);

/// KV key under which process `p` publishes its transport listener address.
fn proc_addr_key(process: usize) -> String {
    format!("proc/addr/{process:08}")
}

/// Split `workers` workers over `processes` processes into contiguous
/// ranges; process `i` hosts `ranges[i]`. Every process gets at least the
/// floor share and the remainder is spread over the first processes.
pub fn worker_ranges(workers: u32, processes: u32) -> Vec<std::ops::Range<WorkerId>> {
    let processes = processes.max(1);
    let base = workers / processes;
    let extra = workers % processes;
    let mut ranges = Vec::with_capacity(processes as usize);
    let mut start = 0;
    for p in 0..processes {
        let len = base + u32::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Render ranges as `"0-2,2-4"` for the workerd command line.
pub fn format_ranges(ranges: &[std::ops::Range<WorkerId>]) -> String {
    ranges.iter().map(|r| format!("{}-{}", r.start, r.end)).collect::<Vec<_>>().join(",")
}

/// Parse the `"0-2,2-4"` form produced by [`format_ranges`].
pub fn parse_ranges(text: &str) -> Result<Vec<std::ops::Range<WorkerId>>> {
    let mut ranges = Vec::new();
    for part in text.split(',') {
        let (start, end) = part
            .split_once('-')
            .ok_or_else(|| QuokkaError::Config(format!("bad worker range {part:?}")))?;
        let start: WorkerId =
            start.parse().map_err(|_| QuokkaError::Config(format!("bad worker range {part:?}")))?;
        let end: WorkerId =
            end.parse().map_err(|_| QuokkaError::Config(format!("bad worker range {part:?}")))?;
        if end < start {
            return Err(QuokkaError::Config(format!("bad worker range {part:?}")));
        }
        ranges.push(start..end);
    }
    Ok(ranges)
}

// ---------------------------------------------------------------------------
// Remote durable store (workerd side)
// ---------------------------------------------------------------------------

/// An [`ObjectStore`] that proxies every call to the driver's
/// [`DurableObjectStore`] over the control connection. Worker processes have
/// no durable storage of their own — like the paper's S3, the object store
/// is a shared service that survives worker death.
#[derive(Debug)]
pub struct RemoteDurable {
    client: Arc<ControlClient>,
}

impl RemoteDurable {
    pub fn new(client: Arc<ControlClient>) -> Self {
        RemoteDurable { client }
    }

    fn put_impl(&self, key: String, payload: Bytes, metered: bool) {
        let mut req = Vec::with_capacity(key.len() + payload.len() + 16);
        wire::put_u8(&mut req, OP_DURABLE_PUT);
        wire::put_str(&mut req, &key);
        wire::put_bool(&mut req, metered);
        wire::put_bytes(&mut req, &payload);
        if let Err(e) = self.client.request(&req) {
            panic!("durable store connection to driver lost: {e}");
        }
    }
}

impl ObjectStore for RemoteDurable {
    fn put(&self, key: String, payload: Bytes) {
        self.put_impl(key, payload, true);
    }

    fn put_unmetered(&self, key: String, payload: Bytes) {
        self.put_impl(key, payload, false);
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let mut req = Vec::with_capacity(key.len() + 8);
        wire::put_u8(&mut req, OP_DURABLE_GET);
        wire::put_str(&mut req, key);
        let resp = self.client.request(&req)?;
        let mut r = WireReader::new(&resp);
        let payload = Bytes::from(r.bytes()?.to_vec());
        r.expect_end()?;
        Ok(payload)
    }

    fn contains(&self, key: &str) -> bool {
        let mut req = Vec::with_capacity(key.len() + 8);
        wire::put_u8(&mut req, OP_DURABLE_CONTAINS);
        wire::put_str(&mut req, key);
        match self.client.request(&req).and_then(|resp| WireReader::new(&resp).bool()) {
            Ok(present) => present,
            Err(e) => panic!("durable store connection to driver lost: {e}"),
        }
    }

    fn list_prefix(&self, prefix: &str) -> Vec<String> {
        let mut req = Vec::with_capacity(prefix.len() + 8);
        wire::put_u8(&mut req, OP_DURABLE_LIST);
        wire::put_str(&mut req, prefix);
        let listing = (|| -> Result<Vec<String>> {
            let resp = self.client.request(&req)?;
            let mut r = WireReader::new(&resp);
            let count = r.u32()? as usize;
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                keys.push(r.str()?);
            }
            r.expect_end()?;
            Ok(keys)
        })();
        match listing {
            Ok(keys) => keys,
            Err(e) => panic!("durable store connection to driver lost: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Control server (driver side)
// ---------------------------------------------------------------------------

struct ControlState {
    services: Arc<Services>,
    durable: Arc<DurableObjectStore>,
    shutdown: AtomicBool,
    socks: Mutex<Vec<TcpStream>>,
    /// Last `(tasks, recovery_tasks)` totals reported per process, for
    /// watchdog forwarding and recovery accounting.
    process_tasks: Mutex<BTreeMap<u32, (u64, u64)>>,
}

/// The driver's control endpoint: serves GCS/KV, durable-store, sink,
/// heartbeat and wire-stat traffic from workerd processes.
pub struct ControlServer {
    addr: SocketAddr,
    state: Arc<ControlState>,
    accept: Option<thread::JoinHandle<()>>,
}

impl ControlServer {
    /// Bind on an ephemeral loopback port and start serving.
    pub fn bind(services: Arc<Services>, durable: Arc<DurableObjectStore>) -> Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| QuokkaError::Transient(format!("control bind failed: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| QuokkaError::Transient(format!("control local_addr failed: {e}")))?;
        let state = Arc::new(ControlState {
            services,
            durable,
            shutdown: AtomicBool::new(false),
            socks: Mutex::new(Vec::new()),
            process_tasks: Mutex::new(BTreeMap::new()),
        });
        let accept_state = Arc::clone(&state);
        let accept = thread::Builder::new()
            .name("quokka-control-accept".into())
            .spawn(move || {
                while let Ok((stream, _)) = listener.accept() {
                    if accept_state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Ok(clone) = stream.try_clone() {
                        accept_state.socks.lock().push(clone);
                    }
                    let conn_state = Arc::clone(&accept_state);
                    let _ = thread::Builder::new()
                        .name("quokka-control-conn".into())
                        .spawn(move || serve_connection(stream, conn_state));
                }
            })
            .map_err(|e| QuokkaError::Transient(format!("control accept spawn failed: {e}")))?;
        Ok(ControlServer { addr, state, accept: Some(accept) })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ControlServer {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop awake, then hard-close every connection so
        // handler threads blocked in `read_frame` see EOF.
        let _ = TcpStream::connect(self.addr);
        for sock in self.state.socks.lock().drain(..) {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn serve_connection(mut stream: TcpStream, state: Arc<ControlState>) {
    loop {
        let payload = match remote::read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => return,
        };
        let response = dispatch(&payload, &state);
        if remote::write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Handle one control request. KV opcodes go straight to the shared
/// [`KvStore`]; everything else is served here against the driver's
/// authoritative services.
fn dispatch(payload: &[u8], state: &ControlState) -> Vec<u8> {
    if let Some(response) = remote::apply_kv(payload, state.services.gcs.kv()) {
        return response;
    }
    match try_dispatch(payload, state) {
        Ok(response) => response,
        Err(e) => remote::err_frame(&e),
    }
}

fn try_dispatch(payload: &[u8], state: &ControlState) -> Result<Vec<u8>> {
    let mut r = WireReader::new(payload);
    let op = r.u8()?;
    match op {
        OP_DURABLE_GET => {
            let key = r.str()?;
            r.expect_end()?;
            let payload = state.durable.get(&key)?;
            Ok(remote::ok_frame(|buf| wire::put_bytes(buf, &payload)))
        }
        OP_DURABLE_PUT => {
            let key = r.str()?;
            let metered = r.bool()?;
            let payload = Bytes::from(r.bytes()?.to_vec());
            r.expect_end()?;
            if metered {
                state.durable.put(key, payload);
            } else {
                state.durable.put_unmetered(key, payload);
            }
            Ok(remote::ok_frame(|_| {}))
        }
        OP_DURABLE_CONTAINS => {
            let key = r.str()?;
            r.expect_end()?;
            let present = state.durable.contains(&key);
            Ok(remote::ok_frame(|buf| wire::put_bool(buf, present)))
        }
        OP_DURABLE_LIST => {
            let prefix = r.str()?;
            r.expect_end()?;
            let keys = state.durable.list_prefix(&prefix);
            Ok(remote::ok_frame(|buf| {
                wire::put_u32(buf, keys.len() as u32);
                for key in &keys {
                    wire::put_str(buf, key);
                }
            }))
        }
        OP_SINK_EMIT => {
            let stage = r.u32()?;
            let channel = r.u32()?;
            let seq = r.u32()?;
            let encoded = r.bytes()?;
            r.expect_end()?;
            let batches = decode_partition(encoded)?;
            let name = TaskName::new(stage, channel, seq);
            state.services.emit_result(name, batches);
            // Record delivery only *after* the batch is queued on the result
            // stream: once the coordinator sees the name here, the batch is
            // provably ordered ahead of any future `Finished` event.
            if let Some(delivered) = &state.services.delivered_sinks {
                delivered.lock().insert(name);
            }
            Ok(remote::ok_frame(|_| {}))
        }
        OP_HEARTBEAT => {
            let process = r.u32()?;
            let tasks_total = r.u64()?;
            let recovery_total = r.u64()?;
            let count = r.u32()? as usize;
            for _ in 0..count {
                let worker = r.u32()?;
                let beats = r.u64()?;
                if let Some(slot) = state.services.heartbeats.get(worker as usize) {
                    slot.fetch_max(beats, Ordering::SeqCst);
                }
            }
            r.expect_end()?;
            // Forward task progress into the driver's metrics so the stall
            // watchdog sees commits that happened in other processes (and
            // recovery statistics survive into the final snapshot).
            let (task_delta, recovery_delta) = {
                let mut totals = state.process_tasks.lock();
                if !totals.contains_key(&process) {
                    eprintln!("[control] first heartbeat from process {process}");
                }
                let last = totals.entry(process).or_insert((0, 0));
                let task_delta = tasks_total.saturating_sub(last.0);
                let recovery_delta = recovery_total.saturating_sub(last.1);
                *last = (tasks_total, recovery_total);
                (task_delta, recovery_delta)
            };
            for _ in 0..recovery_delta {
                state.services.metrics.add_task(true);
            }
            for _ in 0..task_delta.saturating_sub(recovery_delta) {
                state.services.metrics.add_task(false);
            }
            Ok(remote::ok_frame(|_| {}))
        }
        OP_WIRE_STATS => {
            let count = r.u32()? as usize;
            let mut peers = Vec::with_capacity(count);
            for _ in 0..count {
                peers.push(PeerWireStats {
                    peer: r.u32()?,
                    frames_sent: r.u64()?,
                    bytes_sent: r.u64()?,
                    frames_received: r.u64()?,
                    bytes_received: r.u64()?,
                    send_queue_peak: r.u64()?,
                });
            }
            r.expect_end()?;
            state.services.metrics.merge_wire_peers(&peers);
            Ok(remote::ok_frame(|_| {}))
        }
        other => Err(QuokkaError::Internal(format!("unknown control opcode {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Driver harness
// ---------------------------------------------------------------------------

/// Kill one worker process mid-query (the process-level analogue of
/// [`FailureSpec`](quokka_common::config::FailureSpec)).
#[derive(Debug, Clone, Copy)]
pub struct KillPlan {
    /// Index of the workerd process to SIGKILL.
    pub victim_process: usize,
    /// Fire once the GCS has committed at least this many transactions —
    /// progress-based rather than wall-clock so runs are reproducible.
    pub after_transactions: u64,
}

/// Everything [`run_process_query`] needs to drive a multi-process run.
pub struct ProcessQuery {
    /// Engine configuration; `cluster.workers` are split over `processes`.
    pub config: EngineConfig,
    /// The compiled stage graph (workerd processes recompile the identical
    /// graph from the query number — plan compilation is deterministic).
    pub graph: StageGraph,
    /// Schema of the query result.
    pub output_schema: Schema,
    /// Base table snapshots, loaded into the driver's durable store.
    pub tables: BTreeMap<String, Vec<Batch>>,
    /// Path to the `quokka-workerd` binary.
    pub workerd: std::path::PathBuf,
    /// Extra arguments handed to every workerd (e.g. `--query 3 --sf 0.01`)
    /// so it can rebuild the plan; `--driver/--process/--ranges` are
    /// appended by the harness.
    pub workerd_args: Vec<String>,
    /// Number of worker processes to spawn.
    pub processes: u32,
    /// Optionally SIGKILL one process mid-query.
    pub kill: Option<KillPlan>,
}

/// Run one query across real worker processes. The driver hosts the
/// coordinator and every shared service but no workers; result batches
/// stream back over the control connection and are collected here.
pub fn run_process_query(query: ProcessQuery) -> Result<QueryOutcome> {
    let config = &query.config;
    let cost = CostModel::new(config.cost);
    let metrics = MetricsRegistry::new();
    let durable = Arc::new(DurableObjectStore::new(cost, Arc::clone(&metrics)));

    let mut table_splits = BTreeMap::new();
    for (table, batches) in &query.tables {
        for (index, batch) in batches.iter().enumerate() {
            durable.put_unmetered(
                Services::table_split_key(table, index as u64),
                encode_partition(std::slice::from_ref(batch)),
            );
        }
        table_splits.insert(table.clone(), batches.len() as u64);
    }

    let layout = Arc::new(QueryLayout::new(query.graph.clone(), &config.cluster, &table_splits)?);
    let gcs = Arc::new(Gcs::new(cost.gcs_delay()));
    // The driver's own data plane carries no shuffle traffic (it hosts no
    // workers); the real TCP mesh lives in the workerd processes.
    let plane = Arc::new(DataPlane::new(config.cluster.workers, cost, Arc::clone(&metrics)));
    let backups: Vec<Arc<LocalBackupStore>> = (0..config.cluster.workers)
        .map(|w| Arc::new(LocalBackupStore::new(w, cost, Arc::clone(&metrics))))
        .collect();

    for addr in layout.all_channels() {
        let worker = layout.initial_worker(addr);
        let state = ChannelState::new(addr, worker, layout.upstream_channels(addr.stage).len());
        gcs.put_channel(&state);
        gcs.put_task(&TaskEntry { task: addr.task(0), worker });
    }

    let (tx, rx) = channel::<StreamEvent>();
    let cancel = Arc::new(AtomicBool::new(false));
    let delivered_sinks = Arc::new(Mutex::new(std::collections::HashSet::new()));
    let services = Arc::new(Services {
        config: config.clone(),
        layout,
        gcs: Arc::clone(&gcs),
        plane,
        backups,
        durable: durable.clone() as Arc<dyn ObjectStore>,
        sink: Mutex::new(tx.clone()),
        metrics: Arc::clone(&metrics),
        killed: (0..config.cluster.workers).map(|_| AtomicBool::new(false)).collect(),
        cancelled: Arc::clone(&cancel),
        cost,
        heartbeats: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        heartbeat_suppressed: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        suspected: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        straggler_tasks: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        straggler_micros: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        delivered_sinks: Some(Arc::clone(&delivered_sinks)),
    });

    let server = ControlServer::bind(Arc::clone(&services), Arc::clone(&durable))?;
    let driver_addr = server.addr();

    // Spawn the worker processes.
    let ranges = worker_ranges(config.cluster.workers, query.processes);
    let ranges_arg = format_ranges(&ranges);
    let mut spawned = Vec::new();
    for (process, _) in ranges.iter().enumerate() {
        let child = Command::new(&query.workerd)
            .args(&query.workerd_args)
            .arg("--driver")
            .arg(driver_addr.to_string())
            .arg("--process")
            .arg(process.to_string())
            .arg("--ranges")
            .arg(&ranges_arg)
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| QuokkaError::Config(format!("failed to spawn workerd: {e}")))?;
        spawned.push(Some(child));
    }
    let children: Arc<Mutex<Vec<Option<Child>>>> = Arc::new(Mutex::new(spawned));

    // The chaos arm: SIGKILL the victim process once enough GCS
    // transactions have committed *beyond* the driver's own registration
    // commits — the baseline is captured after spawn, so the threshold
    // counts worker task commits and the kill always lands mid-execution
    // (after rendezvous), at the same logical point on every rerun.
    let killer = query.kill.map(|plan| {
        let gcs = Arc::clone(&gcs);
        let children = Arc::clone(&children);
        let baseline = gcs.transactions();
        thread::spawn(move || loop {
            if gcs.is_query_done() || gcs.query_error().is_some() {
                return false;
            }
            if gcs.transactions() >= baseline + plan.after_transactions {
                let victim = children.lock()[plan.victim_process].take();
                if let Some(mut child) = victim {
                    eprintln!(
                        "[chaos] SIGKILL workerd process {} at {} GCS transactions",
                        plan.victim_process,
                        gcs.transactions()
                    );
                    let _ = child.kill();
                    let _ = child.wait();
                    return true;
                }
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        })
    });

    // The coordinator runs on its own thread and reports through the same
    // stream protocol as the in-process runtime.
    let coordinator = {
        let services = Arc::clone(&services);
        let gcs = Arc::clone(&gcs);
        let metrics = Arc::clone(&metrics);
        let config = config.clone();
        thread::spawn(move || {
            let start = Instant::now();
            metrics.restart_clock();
            let outcome = Coordinator::new(Arc::clone(&services)).run();
            if gcs.query_error().is_none() && !gcs.is_query_done() {
                gcs.set_query_done();
            }
            let event = match outcome {
                CoordinatorOutcome::Completed => {
                    let mut snapshot = metrics.snapshot(start.elapsed());
                    snapshot.lineage_bytes = gcs.lineage_bytes();
                    snapshot.gcs_transactions = gcs.transactions();
                    snapshot.effective_watchdog = config.watchdog;
                    snapshot.effective_suspicion_timeout = config.cluster.suspicion_timeout;
                    StreamEvent::Finished(Box::new(snapshot))
                }
                CoordinatorOutcome::Failed(error) => StreamEvent::Failed(error),
                CoordinatorOutcome::NeedsRestart { .. } => {
                    StreamEvent::Failed(QuokkaError::Internal(
                        "process mode requires a fault strategy with intra-query recovery"
                            .to_string(),
                    ))
                }
            };
            let _ = services.sink.lock().send(event);
        })
    };
    drop(tx);

    let outcome = BatchStream::new(query.output_schema, rx, cancel).collect();
    let _ = coordinator.join();
    let killed = killer.map(|handle| handle.join().unwrap_or(false)).unwrap_or(false);

    // Reap the children: they exit on their own once the query-done flag is
    // set (or their control connection drops); escalate to SIGKILL if one
    // wedges.
    let deadline = Instant::now() + Duration::from_secs(10);
    for slot in children.lock().iter_mut() {
        if let Some(child) = slot.as_mut() {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        thread::sleep(Duration::from_millis(5))
                    }
                    _ => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                }
            }
        }
    }

    let mut outcome = outcome?;
    // Wire stats arrive as each workerd exits — after the coordinator took
    // its snapshot. Fold the late arrivals in now that every child is gone.
    outcome.metrics.transport_peers = metrics.snapshot(Duration::ZERO).transport_peers;
    if killed {
        // A SIGKILLed process sends no final wire stats; the surviving
        // processes' counters still prove real bytes crossed sockets.
        outcome.metrics.failures = outcome.metrics.failures.max(1);
    }
    drop(server);
    Ok(outcome)
}

// ---------------------------------------------------------------------------
// Workerd runtime (worker-process side)
// ---------------------------------------------------------------------------

/// Everything [`run_workerd`] needs to host one process's worker range.
pub struct WorkerdOpts {
    /// Address of the driver's control server.
    pub driver: SocketAddr,
    /// This process's index into `ranges`.
    pub process: usize,
    /// Worker ranges of every process (identical on all processes).
    pub ranges: Vec<std::ops::Range<WorkerId>>,
    /// Engine configuration — must match the driver's.
    pub config: EngineConfig,
    /// The compiled stage graph — must equal the driver's (recompiled
    /// deterministically from the query text/number).
    pub graph: StageGraph,
    /// Split counts per base table — must match the driver's table load.
    pub table_splits: BTreeMap<String, u64>,
}

/// Host this process's workers until the query finishes. Called by the
/// `quokka-workerd` binary; panics tear the whole process down, which is
/// exactly the failure model the driver's detector handles.
pub fn run_workerd(opts: WorkerdOpts) -> Result<()> {
    let client = Arc::new(ControlClient::connect(opts.driver)?);
    let gcs = Arc::new(Gcs::with_kv(KvStore::remote(Arc::clone(&client))));
    let durable: Arc<dyn ObjectStore> = Arc::new(RemoteDurable::new(Arc::clone(&client)));
    let metrics = MetricsRegistry::new();
    let cost = CostModel::new(opts.config.cost);
    let workers = opts.config.cluster.workers;
    let my_range = opts
        .ranges
        .get(opts.process)
        .cloned()
        .ok_or_else(|| QuokkaError::Config("process index out of range".to_string()))?;

    let mut table_splits = opts.table_splits;
    // Defensive: recompute against the shared durable store if empty, so a
    // bespoke workerd caller can omit the counts.
    if table_splits.is_empty() {
        table_splits = BTreeMap::new();
    }
    let layout = Arc::new(QueryLayout::new(opts.graph, &opts.config.cluster, &table_splits)?);

    // Inboxes for every worker exist in every process, but only frames for
    // locally hosted workers ever arrive (peers connect lanes per worker).
    let servers: Vec<Arc<FlightServer>> =
        (0..workers).map(|w| Arc::new(FlightServer::new(w))).collect();
    let transport = TcpTransport::bind(
        workers,
        &opts.config.transport,
        Arc::clone(&metrics),
        DataPlane::deliver_into(servers.clone()),
    )?;

    // Rendezvous: publish our listener, wait for every peer's, then open a
    // lane per remote worker (and loopback lanes for our own).
    gcs.kv().put(proc_addr_key(opts.process), transport.local_addr().to_string().into_bytes());
    let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
    for (process, range) in opts.ranges.iter().enumerate() {
        let addr = loop {
            if let Some(bytes) = gcs.kv().get_value(&proc_addr_key(process)) {
                let text = String::from_utf8_lossy(&bytes).to_string();
                break text
                    .parse::<SocketAddr>()
                    .map_err(|e| QuokkaError::Config(format!("bad peer address {text:?}: {e}")))?;
            }
            if Instant::now() > deadline {
                return Err(QuokkaError::Transient(format!(
                    "peer process {process} never published its address"
                )));
            }
            thread::sleep(Duration::from_millis(2));
        };
        for worker in range.clone() {
            transport.connect_peer(worker, addr)?;
        }
    }
    let plane =
        Arc::new(DataPlane::from_parts(servers, cost, Arc::clone(&metrics), Box::new(transport)));

    let backups: Vec<Arc<LocalBackupStore>> = (0..workers)
        .map(|w| Arc::new(LocalBackupStore::new(w, cost, Arc::clone(&metrics))))
        .collect();

    // Sink forwarder: relay local sink commits to the driver's collector.
    let (tx, rx) = channel::<StreamEvent>();
    let sink_client = Arc::clone(&client);
    let sink_forwarder = thread::Builder::new()
        .name("quokka-workerd-sink".into())
        .spawn(move || {
            while let Ok(event) = rx.recv() {
                if let StreamEvent::Batch { name, batches } = event {
                    let encoded = encode_partition(&batches);
                    let mut req = Vec::with_capacity(encoded.len() + 24);
                    wire::put_u8(&mut req, OP_SINK_EMIT);
                    wire::put_u32(&mut req, name.stage);
                    wire::put_u32(&mut req, name.channel);
                    wire::put_u32(&mut req, name.seq);
                    wire::put_bytes(&mut req, &encoded);
                    if let Err(e) = sink_client.request(&req) {
                        panic!("sink connection to driver lost: {e}");
                    }
                }
            }
        })
        .map_err(|e| QuokkaError::Transient(format!("sink forwarder spawn failed: {e}")))?;

    let services = Arc::new(Services {
        config: opts.config.clone(),
        layout,
        gcs: Arc::clone(&gcs),
        plane,
        backups,
        durable,
        sink: Mutex::new(tx),
        metrics: Arc::clone(&metrics),
        killed: (0..workers).map(|_| AtomicBool::new(false)).collect(),
        cancelled: Arc::new(AtomicBool::new(false)),
        cost,
        heartbeats: (0..workers).map(|_| Default::default()).collect(),
        heartbeat_suppressed: (0..workers).map(|_| Default::default()).collect(),
        suspected: (0..workers).map(|_| Default::default()).collect(),
        straggler_tasks: (0..workers).map(|_| Default::default()).collect(),
        straggler_micros: (0..workers).map(|_| Default::default()).collect(),
        delivered_sinks: None,
    });

    eprintln!(
        "quokka-workerd: process {} hosting workers {}..{} connected to {}",
        opts.process, my_range.start, my_range.end, opts.driver
    );
    let handles = spawn_workers_for(&services, my_range.clone());

    // Heartbeat forwarder: ship hosted workers' beat counters (and this
    // process's task total, for the driver's stall watchdog) to the driver.
    let stop = Arc::new(AtomicBool::new(false));
    let hb_stop = Arc::clone(&stop);
    let hb_client = Arc::clone(&client);
    let hb_services = Arc::clone(&services);
    let hb_metrics = Arc::clone(&metrics);
    let hb_range = my_range.clone();
    let hb_process = opts.process as u32;
    let hb_interval = opts.config.cluster.heartbeat_interval;
    let heartbeat_forwarder = thread::Builder::new()
        .name("quokka-workerd-heartbeat".into())
        .spawn(move || {
            while !hb_stop.load(Ordering::SeqCst) {
                let mut req = Vec::with_capacity(24 + hb_range.len() * 12);
                let snap = hb_metrics.snapshot(Duration::ZERO);
                wire::put_u8(&mut req, OP_HEARTBEAT);
                wire::put_u32(&mut req, hb_process);
                wire::put_u64(&mut req, snap.tasks_executed);
                wire::put_u64(&mut req, snap.recovery_tasks);
                wire::put_u32(&mut req, hb_range.len() as u32);
                for worker in hb_range.clone() {
                    wire::put_u32(&mut req, worker);
                    wire::put_u64(&mut req, hb_services.heartbeat_count(worker));
                }
                if let Err(e) = hb_client.request(&req) {
                    // Driver is gone; nothing to heartbeat to. The workers
                    // will panic on their next GCS access and exit.
                    eprintln!("quokka-workerd: heartbeat forwarding stopped: {e}");
                    return;
                }
                thread::sleep(hb_interval);
            }
        })
        .map_err(|e| QuokkaError::Transient(format!("heartbeat forwarder spawn failed: {e}")))?;

    for handle in handles {
        let _ = handle.join();
    }
    stop.store(true, Ordering::SeqCst);
    let _ = heartbeat_forwarder.join();

    // Ship final wire stats so the driver's bench/test output shows the
    // real socket traffic, then let `services` drop (tearing the transport
    // down) and the sink forwarder drain.
    let peers = metrics.snapshot(Duration::ZERO).transport_peers;
    let mut req = Vec::with_capacity(8 + peers.len() * 44);
    wire::put_u8(&mut req, OP_WIRE_STATS);
    wire::put_u32(&mut req, peers.len() as u32);
    for p in &peers {
        wire::put_u32(&mut req, p.peer);
        wire::put_u64(&mut req, p.frames_sent);
        wire::put_u64(&mut req, p.bytes_sent);
        wire::put_u64(&mut req, p.frames_received);
        wire::put_u64(&mut req, p.bytes_received);
        wire::put_u64(&mut req, p.send_queue_peak);
    }
    let _ = client.request(&req);

    drop(services);
    let _ = sink_forwarder.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_ranges_cover_all_workers_contiguously() {
        for workers in 1..=9u32 {
            for processes in 1..=4u32 {
                let ranges = worker_ranges(workers, processes);
                assert_eq!(ranges.len(), processes as usize);
                let mut next = 0;
                for range in &ranges {
                    assert_eq!(range.start, next);
                    next = range.end;
                }
                assert_eq!(next, workers);
            }
        }
    }

    #[test]
    fn ranges_round_trip_through_the_command_line_form() {
        let ranges = worker_ranges(7, 3);
        let text = format_ranges(&ranges);
        assert_eq!(text, "0-3,3-5,5-7");
        assert_eq!(parse_ranges(&text).unwrap(), ranges);
        assert!(parse_ranges("3-1").is_err());
        assert!(parse_ranges("nope").is_err());
    }
}
