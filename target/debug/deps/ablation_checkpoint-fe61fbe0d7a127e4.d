/root/repo/target/debug/deps/ablation_checkpoint-fe61fbe0d7a127e4.d: crates/bench/src/bin/ablation_checkpoint.rs

/root/repo/target/debug/deps/ablation_checkpoint-fe61fbe0d7a127e4: crates/bench/src/bin/ablation_checkpoint.rs

crates/bench/src/bin/ablation_checkpoint.rs:
