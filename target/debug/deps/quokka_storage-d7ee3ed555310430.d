/root/repo/target/debug/deps/quokka_storage-d7ee3ed555310430.d: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/debug/deps/libquokka_storage-d7ee3ed555310430.rlib: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/debug/deps/libquokka_storage-d7ee3ed555310430.rmeta: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

crates/storage/src/lib.rs:
crates/storage/src/backup.rs:
crates/storage/src/cost.rs:
crates/storage/src/durable.rs:
