//! Name resolution, type checking, and lowering to [`LogicalPlan`].
//!
//! The binder walks a parsed [`SelectStatement`] and produces the same
//! `LogicalPlan` shapes the hand-written TPC-H plans use:
//!
//! * `FROM a JOIN b ON ...` becomes a left-deep chain of inner hash joins,
//!   with the accumulated side as the build input (matching the
//!   `PlanBuilder::join` convention).
//! * `WHERE` becomes a `Filter` above the join tree.
//! * Aggregate calls in the SELECT list and `HAVING` are extracted into an
//!   `Aggregate` node; arithmetic over aggregates (e.g. `sum(a) / sum(b)`)
//!   is rewritten to a projection over the aggregate's output, and hidden
//!   aggregate columns (named `__agg_N`) are projected away again.
//! * `ORDER BY` + `LIMIT` become `Sort { limit }` (top-k); `LIMIT` alone
//!   becomes `Limit`.
//!
//! All errors are positioned [`SqlError`]s; unknown names include a
//! "did you mean" suggestion when a close match exists.

use crate::ast::*;
use crate::error::{Pos, SqlError};
use crate::parser::validate_date;
use crate::resolve::suggest;
use quokka_batch::datatype::{DataType, ScalarValue};
use quokka_batch::Schema;
use quokka_plan::aggregate::{AggExpr, AggFunc};
use quokka_plan::catalog::Catalog;
use quokka_plan::expr::{ArithOpKind, CmpOpKind, Expr};
use quokka_plan::logical::{JoinType, LogicalPlan};

/// Bind `stmt` against `catalog` and lower it to a logical plan.
pub fn bind_statement(
    stmt: &SelectStatement,
    catalog: &dyn Catalog,
) -> Result<LogicalPlan, SqlError> {
    Binder { catalog }.bind_select(stmt, None)
}

struct Binder<'a> {
    catalog: &'a dyn Catalog,
}

/// One table (base or derived) visible in a scope, with the mapping from
/// its SQL-visible column names to the flat plan column names. The two
/// differ only for tables that were renamed apart (aliased self-joins),
/// where the flat name is `{alias}_{column}`.
struct ScopeTable {
    binding: String,
    /// `(SQL-visible name, flat plan name, type)` per column.
    columns: Vec<(String, String, DataType)>,
}

impl ScopeTable {
    /// Identity mapping: SQL names are the plan names.
    fn identity(binding: String, schema: &Schema) -> Self {
        let columns =
            schema.fields().iter().map(|f| (f.name.clone(), f.name.clone(), f.data_type)).collect();
        ScopeTable { binding, columns }
    }

    fn lookup(&self, sql_name: &str) -> Option<(&str, DataType)> {
        self.columns.iter().find(|(s, _, _)| s == sql_name).map(|(_, f, t)| (f.as_str(), *t))
    }

    fn sql_names(&self) -> Vec<&str> {
        self.columns.iter().map(|(s, _, _)| s.as_str()).collect()
    }
}

/// The lowered parts of a JOIN ON condition: equi-join key pairs
/// `(old side, new side)` in flat names, plus bound predicates that
/// reference only the newly joined table.
type JoinOnParts = (Vec<(String, String)>, Vec<Expr>);

/// How a column reference resolved against a scope chain.
enum Resolved {
    /// A column of the current query's row (by flat plan name).
    Column(String),
    /// A column of the *enclosing* query — a correlated reference found in
    /// the parent scope while binding a subquery.
    Outer { name: String, dtype: DataType },
}

/// The tables visible to expression binding, in join order, plus (when
/// binding a subquery) the enclosing query's scope for correlated
/// references.
struct Scope<'p> {
    tables: Vec<ScopeTable>,
    /// The flattened row schema over *flat plan names* (for type lookups).
    flat: Schema,
    /// The enclosing scope when this query is a subquery in WHERE/HAVING.
    parent: Option<&'p Scope<'p>>,
}

impl<'p> Scope<'p> {
    /// A scope over an intermediate result (e.g. an aggregate's output),
    /// where columns have no table qualifier.
    fn anonymous(schema: Schema, parent: Option<&'p Scope<'p>>) -> Self {
        Scope { tables: vec![ScopeTable::identity(String::new(), &schema)], flat: schema, parent }
    }

    fn push(&mut self, table: ScopeTable, flat_schema: &Schema) {
        self.flat = self.flat.join(flat_schema);
        self.tables.push(table);
    }

    /// All SQL-visible column names in scope (for suggestions).
    fn all_columns(&self) -> Vec<String> {
        self.tables.iter().flat_map(|t| t.sql_names()).map(|s| s.to_string()).collect()
    }

    /// Look a reference up in this scope only (not the parent).
    /// `Ok(None)` means "no such table/column here"; errors are reserved
    /// for ambiguity and for a known table lacking the column.
    fn resolve_here(
        &self,
        qualifier: Option<&str>,
        name: &str,
        pos: Pos,
    ) -> Result<Option<String>, SqlError> {
        match qualifier {
            Some(q) => {
                let Some(table) = self.tables.iter().find(|t| t.binding == q) else {
                    return Ok(None);
                };
                match table.lookup(name) {
                    Some((flat, _)) => Ok(Some(flat.to_string())),
                    None => Err(SqlError::bind(
                        pos,
                        format!(
                            "table '{q}' has no column '{name}'{}",
                            suggest(name, table.sql_names())
                        ),
                    )),
                }
            }
            None => {
                let mut matches =
                    self.tables.iter().filter_map(|t| t.lookup(name).map(|(f, _)| (t, f)));
                let Some((_, flat)) = matches.next() else { return Ok(None) };
                if matches.next().is_some() {
                    let tables: Vec<&str> = self
                        .tables
                        .iter()
                        .filter(|t| t.lookup(name).is_some())
                        .map(|t| t.binding.as_str())
                        .collect();
                    return Err(SqlError::bind(
                        pos,
                        format!(
                            "column '{name}' is ambiguous (in {}); qualify it",
                            tables.join(" and ")
                        ),
                    ));
                }
                Ok(Some(flat.to_string()))
            }
        }
    }

    /// Resolve a column reference: this scope first, then (for subqueries)
    /// the enclosing scope, which yields a correlated [`Resolved::Outer`].
    fn resolve(&self, qualifier: Option<&str>, name: &str, pos: Pos) -> Result<Resolved, SqlError> {
        if let Some(flat) = self.resolve_here(qualifier, name, pos)? {
            return Ok(Resolved::Column(flat));
        }
        if let Some(parent) = self.parent {
            if let Some(flat) = parent.resolve_here(qualifier, name, pos)? {
                let dtype = parent.flat.data_type(&flat).expect("resolved name has a type");
                return Ok(Resolved::Outer { name: flat, dtype });
            }
        }
        if let Some(q) = qualifier {
            let mut known: Vec<&str> = self.tables.iter().map(|t| t.binding.as_str()).collect();
            if let Some(parent) = self.parent {
                known.extend(parent.tables.iter().map(|t| t.binding.as_str()));
            }
            return Err(SqlError::bind(
                pos,
                format!("unknown table or alias '{q}' (in scope: {})", known.join(", ")),
            ));
        }
        let mut all = self.all_columns();
        if let Some(parent) = self.parent {
            all.extend(parent.all_columns());
        }
        Err(SqlError::bind(
            pos,
            format!(
                "unknown column '{name}'{}",
                suggest(name, all.iter().map(String::as_str).collect())
            ),
        ))
    }
}

/// The aggregate function named by a call, if it is one.
fn agg_func_of(name: &str, distinct: bool, pos: Pos) -> Result<Option<AggFunc>, SqlError> {
    let func = match name {
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "count" => {
            if distinct {
                return Ok(Some(AggFunc::CountDistinct));
            }
            AggFunc::Count
        }
        _ => return Ok(None),
    };
    if distinct {
        return Err(SqlError::bind(pos, "DISTINCT is only supported with COUNT"));
    }
    Ok(Some(func))
}

/// Does this expression contain an aggregate function call?
fn contains_aggregate(e: &SqlExpr) -> bool {
    match &e.kind {
        ExprKind::Function { name, .. } => {
            matches!(name.as_str(), "sum" | "avg" | "min" | "max" | "count")
        }
        ExprKind::Column { .. }
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Date(_) => false,
        ExprKind::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        ExprKind::Not(inner) => contains_aggregate(inner),
        ExprKind::Like { expr, .. } => contains_aggregate(expr),
        ExprKind::InList { expr, items, .. } => {
            contains_aggregate(expr) || items.iter().any(contains_aggregate)
        }
        ExprKind::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        ExprKind::Case { branches, else_expr } => {
            branches.iter().any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || contains_aggregate(else_expr)
        }
        ExprKind::ExtractYear(inner) => contains_aggregate(inner),
        ExprKind::Substring { expr, .. } => contains_aggregate(expr),
        ExprKind::Cast { expr, .. } => contains_aggregate(expr),
        // A subquery's own aggregates belong to the subquery, not the
        // enclosing statement.
        ExprKind::Subquery(_) | ExprKind::Exists(_) => false,
        ExprKind::InSubquery { expr, .. } => contains_aggregate(expr),
    }
}

/// The scalar value of a literal expression, if it is one.
fn literal_scalar(e: &SqlExpr) -> Option<ScalarValue> {
    match &e.kind {
        ExprKind::Int(v) => Some(ScalarValue::Int64(*v)),
        ExprKind::Float(v) => Some(ScalarValue::Float64(*v)),
        ExprKind::Str(s) => Some(ScalarValue::Utf8(s.clone())),
        ExprKind::Bool(b) => Some(ScalarValue::Bool(*b)),
        ExprKind::Date(d) => Some(ScalarValue::Date(*d)),
        _ => None,
    }
}

/// Coerce a literal toward the type of the expression it is compared with:
/// integers widen to floats, and date-formatted strings become dates.
fn coerce_literal(value: ScalarValue, target: DataType, pos: Pos) -> Result<ScalarValue, SqlError> {
    let got = value.data_type();
    if got == target {
        return Ok(value);
    }
    match (&value, target) {
        (ScalarValue::Int64(v), DataType::Float64) => Ok(ScalarValue::Float64(*v as f64)),
        (ScalarValue::Float64(_), DataType::Int64) => Ok(value), // kernels compare via f64
        (ScalarValue::Utf8(s), DataType::Date) => match validate_date(s) {
            Some(days) => Ok(ScalarValue::Date(days)),
            None => Err(SqlError::bind(
                pos,
                format!("'{s}' is not a valid date literal (expected 'YYYY-MM-DD')"),
            )),
        },
        _ => Err(SqlError::bind(
            pos,
            format!("type mismatch: {got} literal used where {target} is expected"),
        )),
    }
}

impl Binder<'_> {
    /// Bind one SELECT statement. `parent` is the enclosing query's scope
    /// when this statement is a subquery in WHERE/HAVING — references that
    /// do not resolve locally then become correlated [`Expr::OuterRef`]s.
    fn bind_select(
        &self,
        stmt: &SelectStatement,
        parent: Option<&Scope<'_>>,
    ) -> Result<LogicalPlan, SqlError> {
        let (mut plan, scope) = self.bind_from(stmt, parent)?;

        // WHERE
        if let Some(selection) = &stmt.selection {
            if contains_aggregate(selection) {
                return Err(SqlError::bind(
                    selection.pos,
                    "aggregate functions are not allowed in WHERE; use HAVING",
                ));
            }
            let predicate = self.bind_predicate(&scope, selection)?;
            self.expect_bool(&predicate, &scope, selection.pos, "WHERE predicate")?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }

        let has_aggregates = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                SelectItem::Wildcard => false,
            })
            || stmt.having.as_ref().is_some_and(contains_aggregate);

        let mut plan = if has_aggregates {
            self.bind_aggregate_query(stmt, plan, &scope)?
        } else {
            if let Some(having) = &stmt.having {
                return Err(SqlError::bind(
                    having.pos,
                    "HAVING requires GROUP BY or an aggregate in the SELECT list",
                ));
            }
            self.bind_plain_select(stmt, plan, &scope)?
        };

        // SELECT DISTINCT: an aggregation over every output column with no
        // aggregate calls (the engine's hash-aggregate deduplicates).
        if stmt.distinct {
            let output = self.schema_of(&plan)?;
            let group_by = output
                .column_names()
                .iter()
                .map(|n| (Expr::Column(n.to_string()), n.to_string()))
                .collect();
            plan = LogicalPlan::Aggregate { input: Box::new(plan), group_by, aggregates: vec![] };
        }

        // ORDER BY / LIMIT. Keys are bound against the statement's *output*
        // columns (select aliases included) and may be arbitrary scalar
        // expressions over them — computed keys lower through the same
        // hidden-sort-column path the DataFrame `sort()` uses
        // ([`quokka_plan::logical::sort_by_exprs`]).
        let output = self.schema_of(&plan)?;
        if !stmt.order_by.is_empty() {
            let output_scope = Scope::anonymous(output.clone(), None);
            let mut keys: Vec<(Expr, bool)> = Vec::new();
            for item in &stmt.order_by {
                let key = match &item.expr.kind {
                    ExprKind::Column { qualifier: None, name } => {
                        if output.index_of(name).is_err() {
                            return Err(SqlError::bind(
                                item.expr.pos,
                                format!(
                                    "ORDER BY column '{name}' is not in the output{}",
                                    suggest(name, output.column_names())
                                ),
                            ));
                        }
                        Expr::Column(name.clone())
                    }
                    ExprKind::Column { qualifier: Some(q), .. } => {
                        return Err(SqlError::bind(
                            item.expr.pos,
                            format!(
                                "ORDER BY references output columns; drop the '{q}.' qualifier"
                            ),
                        ))
                    }
                    // `ORDER BY 2` — 1-based position in the output.
                    ExprKind::Int(n) => {
                        match usize::try_from(*n).ok().filter(|i| (1..=output.len()).contains(i)) {
                            Some(i) => Expr::Column(output.column_names()[i - 1].to_string()),
                            None => {
                                return Err(SqlError::bind(
                                    item.expr.pos,
                                    format!(
                                        "ORDER BY position {n} is not in the select list \
                                     (it has {} columns)",
                                        output.len()
                                    ),
                                ))
                            }
                        }
                    }
                    _ => {
                        if contains_aggregate(&item.expr) {
                            return Err(SqlError::bind(
                                item.expr.pos,
                                "ORDER BY cannot introduce new aggregates; give the \
                                 aggregate an alias in the SELECT list and sort by that",
                            ));
                        }
                        let bound = self.bind_scalar(&output_scope, &item.expr)?;
                        self.type_of(&bound, &output_scope.flat, item.expr.pos)?;
                        bound
                    }
                };
                keys.push((key, item.ascending));
            }
            plan = quokka_plan::logical::sort_by_exprs(plan, keys, stmt.limit)
                .map_err(|e| SqlError::bind(Pos::new(1, 1), format!("invalid ORDER BY: {e}")))?;
        } else if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit { input: Box::new(plan), n };
        }

        // Belt and braces: the plan must type-check end to end.
        self.schema_of(&plan)?;
        Ok(plan)
    }

    fn schema_of(&self, plan: &LogicalPlan) -> Result<Schema, SqlError> {
        plan.schema().map_err(|e| SqlError::bind(Pos::new(1, 1), format!("invalid plan: {e}")))
    }

    /// FROM + JOINs → a left-deep join tree and the resulting scope.
    ///
    /// Each entry may be a named table or a derived table (`(SELECT ...) a`).
    /// A table whose columns would collide with the columns already in
    /// scope (an aliased self-join like `nation n1, nation n2`, or a
    /// derived table reusing names) is renamed apart at the scan:
    /// a projection directly above it gives every column the flat name
    /// `{alias}_{column}`, so the binder *and* the optimizer see disjoint
    /// names while SQL text keeps addressing `alias.column`.
    fn bind_from<'p>(
        &self,
        stmt: &SelectStatement,
        parent: Option<&'p Scope<'p>>,
    ) -> Result<(LogicalPlan, Scope<'p>), SqlError> {
        let mut scope = Scope { tables: Vec::new(), flat: Schema::empty(), parent };
        let (mut plan, first_table, first_flat) = self.bind_table_factor(&stmt.from, &scope)?;
        scope.push(first_table, &first_flat);

        for join in &stmt.joins {
            let binding = join.table.binding_name().to_string();
            if scope.tables.iter().any(|t| t.binding == binding) {
                return Err(SqlError::bind(
                    join.table.pos,
                    format!(
                        "duplicate table name or alias '{binding}'; give each occurrence \
                         a distinct alias"
                    ),
                ));
            }
            let old_flat = scope.flat.clone();
            let (new_plan, new_table, new_flat) = self.bind_table_factor(&join.table, &scope)?;
            // Push before binding ON so the condition sees both sides
            // (including qualified references to the new table).
            scope.push(new_table, &new_flat);
            match join.kind {
                JoinKind::Cross => {
                    // No ON condition: a keyless cross join; the optimizer's
                    // filter-to-join rule recovers equi-joins from WHERE.
                    plan = LogicalPlan::Join {
                        build: Box::new(plan),
                        probe: Box::new(new_plan),
                        on: Vec::new(),
                        join_type: JoinType::Inner,
                    };
                }
                JoinKind::Inner => {
                    let on = join.on.as_ref().expect("parser requires ON for INNER JOIN");
                    let (pairs, new_side) =
                        self.bind_join_on(&scope, &old_flat, &new_flat, &binding, on, join.kind)?;
                    let probe = match Expr::conjoin(new_side) {
                        Some(p) => LogicalPlan::Filter { input: Box::new(new_plan), predicate: p },
                        None => new_plan,
                    };
                    plan = LogicalPlan::Join {
                        build: Box::new(plan),
                        probe: Box::new(probe),
                        on: pairs,
                        join_type: JoinType::Inner,
                    };
                }
                JoinKind::Left => {
                    let on = join.on.as_ref().expect("parser requires ON for LEFT JOIN");
                    let (pairs, new_side) =
                        self.bind_join_on(&scope, &old_flat, &new_flat, &binding, on, join.kind)?;
                    // The engine's Left join preserves the *probe* side, so
                    // the accumulated (left) tables become the probe and the
                    // new table the build; ON predicates over the new table
                    // filter its input before the join (sound for LEFT: the
                    // non-preserved side may be filtered early).
                    let build = match Expr::conjoin(new_side) {
                        Some(p) => LogicalPlan::Filter { input: Box::new(new_plan), predicate: p },
                        None => new_plan,
                    };
                    plan = LogicalPlan::Join {
                        build: Box::new(build),
                        probe: Box::new(plan),
                        on: pairs.into_iter().map(|(old, new)| (new, old)).collect(),
                        join_type: JoinType::Left,
                    };
                }
            }
        }
        Ok((plan, scope))
    }

    /// Bind one FROM entry to a plan (scan, derived-table subtree, or a
    /// renaming projection over either), its scope entry, and its flat
    /// schema.
    fn bind_table_factor(
        &self,
        table: &TableRef,
        scope: &Scope<'_>,
    ) -> Result<(LogicalPlan, ScopeTable, Schema), SqlError> {
        let (base_plan, visible) = match &table.source {
            TableSource::Named(name) => {
                let schema = self.catalog.table_schema(name).map_err(|_| {
                    let names = self.catalog.table_names();
                    SqlError::bind(
                        table.pos,
                        format!(
                            "unknown table '{name}'{}",
                            suggest(name, names.iter().map(String::as_str).collect())
                        ),
                    )
                })?;
                (LogicalPlan::Scan { table: name.clone(), schema: schema.clone() }, schema)
            }
            TableSource::Subquery(sub) => {
                // Derived tables are plain nested queries — they cannot see
                // the enclosing FROM list (no LATERAL), so no parent scope.
                let plan = self.bind_select(sub, None)?;
                let schema = self.schema_of(&plan)?;
                (plan, schema)
            }
        };
        let binding = table.binding_name().to_string();
        let collision = visible
            .column_names()
            .into_iter()
            .find(|n| scope.flat.index_of(n).is_ok())
            .map(|n| n.to_string());
        let Some(dup) = collision else {
            let entry = ScopeTable::identity(binding, &visible);
            return Ok((base_plan, entry, visible));
        };
        // Collision: rename this table's columns apart. That needs an alias
        // to build the flat names from.
        if table.alias.is_none() {
            return Err(SqlError::bind(
                table.pos,
                format!(
                    "joining '{binding}' would duplicate column '{dup}'; the engine's \
                     namespace is flat — give the table an alias (its columns are then \
                     renamed to alias_column and addressed as alias.column)"
                ),
            ));
        }
        let mut exprs = Vec::with_capacity(visible.len());
        let mut columns = Vec::with_capacity(visible.len());
        let mut fields = Vec::with_capacity(visible.len());
        for field in visible.fields() {
            let mut flat = format!("{binding}_{}", field.name);
            while scope.flat.index_of(&flat).is_ok()
                || columns.iter().any(|(_, f, _): &(String, String, DataType)| *f == flat)
            {
                flat.push('_');
            }
            exprs.push((Expr::Column(field.name.clone()), flat.clone()));
            columns.push((field.name.clone(), flat.clone(), field.data_type));
            fields.push(quokka_batch::Field::new(flat, field.data_type));
        }
        let plan = LogicalPlan::Project { input: Box::new(base_plan), exprs };
        Ok((plan, ScopeTable { binding, columns }, Schema::new(fields)))
    }

    /// Lower a JOIN ON condition into equi-join key pairs `(old side, new
    /// side)` in flat names, plus bound predicates that reference only the
    /// new table (applied to its input before the join). Equality conjuncts
    /// must relate the two sides; any other predicate must stay on the new
    /// table — cross-side residuals belong in WHERE.
    fn bind_join_on(
        &self,
        scope: &Scope<'_>,
        old_flat: &Schema,
        new_flat: &Schema,
        new_binding: &str,
        on: &SqlExpr,
        kind: JoinKind,
    ) -> Result<JoinOnParts, SqlError> {
        let mut conjuncts = Vec::new();
        collect_conjuncts(on, &mut conjuncts);
        let mut pairs = Vec::new();
        let mut new_side = Vec::new();
        for conjunct in conjuncts {
            if let ExprKind::Binary { op: BinOp::Eq, left, right } = &conjunct.kind {
                let columns = matches!(left.kind, ExprKind::Column { .. })
                    && matches!(right.kind, ExprKind::Column { .. });
                // Both operands must also *bind* to local columns (a
                // correlated reference to an enclosing query is not a join
                // key of this join).
                if columns {
                    let (Expr::Column(l), Expr::Column(r)) =
                        (self.bind_scalar(scope, left)?, self.bind_scalar(scope, right)?)
                    else {
                        return Err(SqlError::bind(
                            conjunct.pos,
                            "JOIN ON equalities cannot reference the enclosing query; \
                             put correlated predicates in WHERE",
                        ));
                    };
                    let side = |flat: &str| {
                        (old_flat.index_of(flat).is_ok(), new_flat.index_of(flat).is_ok())
                    };
                    let (old_col, new_col) = match (side(&l), side(&r)) {
                        ((true, false), (false, true)) => (l, r),
                        ((false, true), (true, false)) => (r, l),
                        ((true, false), (true, false)) => {
                            return Err(SqlError::bind(
                                conjunct.pos,
                                format!(
                                    "both sides of this equality come from tables already \
                                     joined; the condition must relate '{new_binding}' to \
                                     the preceding tables"
                                ),
                            ))
                        }
                        _ => {
                            return Err(SqlError::bind(
                                conjunct.pos,
                                format!(
                                    "both sides of this equality come from '{new_binding}'; \
                                     the condition must relate it to the preceding tables"
                                ),
                            ))
                        }
                    };
                    let old_type = scope.flat.data_type(&old_col).expect("resolved key");
                    let new_type = scope.flat.data_type(&new_col).expect("resolved key");
                    if old_type != new_type {
                        return Err(SqlError::bind(
                            conjunct.pos,
                            format!(
                                "join key type mismatch: '{old_col}' is {old_type} but \
                                 '{new_col}' is {new_type}"
                            ),
                        ));
                    }
                    pairs.push((old_col, new_col));
                    continue;
                }
            }
            // A non-equality conjunct: allowed when it only constrains the
            // table being joined (e.g. Q13's `o_comment NOT LIKE ...`).
            let bound = self.bind_scalar(scope, conjunct)?;
            self.expect_bool(&bound, scope, conjunct.pos, "JOIN ON conjunct")?;
            if bound.references_only(new_flat) {
                new_side.push(bound);
            } else {
                return Err(SqlError::bind(
                    conjunct.pos,
                    format!(
                        "JOIN ON supports conjunctions of column equalities between the two \
                         sides, plus predicates on '{new_binding}' alone; put predicates \
                         spanning both sides in WHERE{}",
                        if kind == JoinKind::Left {
                            " (for LEFT JOIN, a WHERE filter applies after default-filling)"
                        } else {
                            ""
                        }
                    ),
                ));
            }
        }
        if pairs.is_empty() {
            return Err(SqlError::bind(
                on.pos,
                format!(
                    "JOIN ON must contain at least one column equality relating \
                     '{new_binding}' to the preceding tables"
                ),
            ));
        }
        Ok((pairs, new_side))
    }

    /// SELECT list without aggregates → optional Project.
    fn bind_plain_select(
        &self,
        stmt: &SelectStatement,
        plan: LogicalPlan,
        scope: &Scope<'_>,
    ) -> Result<LogicalPlan, SqlError> {
        if stmt.items.len() == 1 && stmt.items[0] == SelectItem::Wildcard {
            return Ok(plan);
        }
        let mut exprs = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let (expr, alias) = match item {
                SelectItem::Wildcard => {
                    return Err(SqlError::bind(
                        Pos::new(1, 1),
                        "'*' must be the only item in the SELECT list",
                    ))
                }
                SelectItem::Expr { expr, alias } => (expr, alias),
            };
            let bound = self.bind_scalar(scope, expr)?;
            self.type_of(&bound, &scope.flat, expr.pos)?;
            exprs.push((bound, output_name(expr, alias.as_deref(), i)));
        }
        check_unique_names(&exprs)?;
        Ok(LogicalPlan::Project { input: Box::new(plan), exprs })
    }

    /// SELECT with GROUP BY / aggregates → Aggregate [+ Filter] [+ Project].
    fn bind_aggregate_query(
        &self,
        stmt: &SelectStatement,
        plan: LogicalPlan,
        scope: &Scope<'_>,
    ) -> Result<LogicalPlan, SqlError> {
        // Every user-visible output name; synthesized group/aggregate
        // column names must avoid these, or name-based resolution over the
        // aggregate's output would silently pick the wrong column.
        let reserved: std::collections::BTreeSet<String> = stmt
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                SelectItem::Expr { expr, alias } => Some(output_name(expr, alias.as_deref(), i)),
                SelectItem::Wildcard => None,
            })
            .collect();

        // 1. Bind the GROUP BY keys against the pre-aggregate scope.
        let mut groups: Vec<(Expr, String)> = Vec::new();
        for (i, g) in stmt.group_by.iter().enumerate() {
            let (bound, name) = self.bind_group_key(stmt, scope, g, i, &reserved, &groups)?;
            // `GROUP BY a, a` (or `GROUP BY a, 1` naming the same column)
            // is legal SQL; repeated keys add nothing to the grouping.
            if !groups.iter().any(|(existing, _)| *existing == bound) {
                groups.push((bound, name));
            }
        }

        // 2. Extract aggregate calls from SELECT and HAVING, rewriting both
        //    into expressions over the aggregate's output columns.
        let mut extraction = Extraction { aggs: Vec::new(), hidden: 0, reserved };
        let mut rewritten_items: Vec<(SqlExpr, String)> = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let (expr, alias) = match item {
                SelectItem::Wildcard => {
                    return Err(SqlError::bind(
                        Pos::new(1, 1),
                        "SELECT * cannot be combined with GROUP BY or aggregates",
                    ))
                }
                SelectItem::Expr { expr, alias } => (expr, alias),
            };
            let name = output_name(expr, alias.as_deref(), i);
            let top_level_alias = if matches!(expr.kind, ExprKind::Function { .. }) {
                Some(name.as_str())
            } else {
                None
            };
            let rewritten = self.rewrite_over_aggregate(
                scope,
                &groups,
                &mut extraction,
                expr,
                top_level_alias,
            )?;
            rewritten_items.push((rewritten, name));
        }
        let rewritten_having = match &stmt.having {
            Some(having) => {
                Some(self.rewrite_over_aggregate(scope, &groups, &mut extraction, having, None)?)
            }
            None => None,
        };
        if extraction.aggs.is_empty() && groups.is_empty() {
            return Err(SqlError::bind(
                Pos::new(1, 1),
                "internal: aggregate query without aggregates",
            ));
        }

        // 3. Build the Aggregate node and a scope over its output. Its
        //    column namespace must be duplicate-free: resolution by name
        //    would otherwise silently read the first occurrence.
        let mut seen = std::collections::BTreeSet::new();
        for name in groups.iter().map(|(_, n)| n).chain(extraction.aggs.iter().map(|a| &a.alias)) {
            if !seen.insert(name.clone()) {
                return Err(SqlError::bind(
                    Pos::new(1, 1),
                    format!(
                        "duplicate column '{name}' in the aggregate output \
                         (a GROUP BY key and an aggregate share the name); \
                         disambiguate with AS aliases"
                    ),
                ));
            }
        }
        let plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: groups.clone(),
            aggregates: extraction.aggs.clone(),
        };
        let agg_schema = self.schema_of(&plan)?;
        let agg_scope = Scope::anonymous(agg_schema.clone(), scope.parent);

        // 4. HAVING → Filter over the aggregate output. Subqueries are
        //    allowed here (e.g. Q11's global-threshold comparison) and bind
        //    with this aggregate's output as their enclosing scope.
        let mut plan = plan;
        if let Some(rewritten) = &rewritten_having {
            let predicate = self.bind_predicate(&agg_scope, rewritten)?;
            self.expect_bool(&predicate, &agg_scope, rewritten.pos, "HAVING predicate")?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }

        // 5. Final projection to the SELECT order/names, dropping hidden
        //    aggregate columns — skipped when it would be an exact identity.
        let mut exprs = Vec::new();
        for (rewritten, name) in &rewritten_items {
            let bound = self.bind_scalar(&agg_scope, rewritten)?;
            self.type_of(&bound, &agg_scope.flat, rewritten.pos)?;
            exprs.push((bound, name.clone()));
        }
        check_unique_names(&exprs)?;
        let identity = exprs.len() == agg_schema.len()
            && exprs
                .iter()
                .zip(agg_schema.column_names())
                .all(|((e, name), field)| name == field && *e == Expr::Column(field.to_string()));
        if !identity {
            plan = LogicalPlan::Project { input: Box::new(plan), exprs };
        }
        Ok(plan)
    }

    /// One GROUP BY key: a column, a SELECT alias, or an expression that
    /// also appears in the SELECT list (which then names the key).
    fn bind_group_key(
        &self,
        stmt: &SelectStatement,
        scope: &Scope<'_>,
        g: &SqlExpr,
        index: usize,
        reserved: &std::collections::BTreeSet<String>,
        taken: &[(Expr, String)],
    ) -> Result<(Expr, String), SqlError> {
        if contains_aggregate(g) {
            return Err(SqlError::bind(g.pos, "GROUP BY cannot contain aggregate functions"));
        }
        // `GROUP BY 1` — 1-based position in the SELECT list. Other
        // literals would silently group the whole input into one bucket, so
        // they are rejected.
        if let ExprKind::Int(n) = g.kind {
            let item = usize::try_from(n)
                .ok()
                .filter(|i| (1..=stmt.items.len()).contains(i))
                .map(|i| (&stmt.items[i - 1], i - 1));
            let (expr, alias, i) = match item {
                Some((SelectItem::Expr { expr, alias }, i)) => (expr, alias, i),
                _ => {
                    return Err(SqlError::bind(
                        g.pos,
                        format!(
                            "GROUP BY position {n} is not in the select list \
                             (it has {} items)",
                            stmt.items.len()
                        ),
                    ))
                }
            };
            if contains_aggregate(expr) {
                return Err(SqlError::bind(
                    g.pos,
                    format!("GROUP BY position {n} refers to an aggregate"),
                ));
            }
            let bound = self.bind_scalar(scope, expr)?;
            return Ok((bound, output_name(expr, alias.as_deref(), i)));
        }
        if literal_scalar(g).is_some() {
            return Err(SqlError::bind(
                g.pos,
                "GROUP BY requires a column, alias, position, or expression, not a literal",
            ));
        }
        // A bare identifier that is not a column may name a SELECT alias
        // (e.g. `SELECT extract(year from d) AS y ... GROUP BY y`).
        if let ExprKind::Column { qualifier: None, name } = &g.kind {
            let is_column = scope.tables.iter().any(|t| t.lookup(name).is_some());
            if !is_column {
                if let Some(expr) = find_alias(stmt, name) {
                    if contains_aggregate(expr) {
                        return Err(SqlError::bind(
                            g.pos,
                            format!("GROUP BY alias '{name}' refers to an aggregate"),
                        ));
                    }
                    let bound = self.bind_scalar(scope, expr)?;
                    return Ok((bound, name.clone()));
                }
            }
        }
        let bound = self.bind_scalar(scope, g)?;
        // Name the key after the column, the matching SELECT alias, or a
        // synthesized fallback.
        let name = match &g.kind {
            ExprKind::Column { name, .. } => name.clone(),
            _ => stmt
                .items
                .iter()
                .enumerate()
                .find_map(|(i, item)| match item {
                    SelectItem::Expr { expr, alias } if !contains_aggregate(expr) => {
                        let candidate = self.bind_scalar(scope, expr).ok()?;
                        (candidate == bound).then(|| output_name(expr, alias.as_deref(), i))
                    }
                    _ => None,
                })
                .unwrap_or_else(|| {
                    // Synthesized fallback; skip past user aliases and
                    // earlier keys so the name cannot shadow (or be
                    // shadowed by) another output column.
                    let mut n = index;
                    loop {
                        let candidate = format!("group_{n}");
                        if !reserved.contains(&candidate)
                            && !taken.iter().any(|(_, name)| *name == candidate)
                        {
                            break candidate;
                        }
                        n += 1;
                    }
                }),
        };
        Ok((bound, name))
    }

    /// Rewrite a SELECT/HAVING expression into one over the aggregate's
    /// output: aggregate calls become references to (possibly new) aggregate
    /// columns, group expressions become references to their key columns.
    fn rewrite_over_aggregate(
        &self,
        scope: &Scope<'_>,
        groups: &[(Expr, String)],
        extraction: &mut Extraction,
        e: &SqlExpr,
        top_level_alias: Option<&str>,
    ) -> Result<SqlExpr, SqlError> {
        // Subquery expressions pass through untouched: their aggregates are
        // their own, and they are bound later against the aggregate's
        // output scope (the HAVING scope).
        if matches!(
            &e.kind,
            ExprKind::Subquery(_) | ExprKind::Exists(_) | ExprKind::InSubquery { .. }
        ) {
            return Ok(e.clone());
        }
        // An aggregate call: extract it.
        if let ExprKind::Function { name, distinct, star, args } = &e.kind {
            if let Some(func) = agg_func_of(name, *distinct, e.pos)? {
                let input = if *star {
                    if func != AggFunc::Count {
                        return Err(SqlError::bind(
                            e.pos,
                            format!("'*' argument is only valid for COUNT, not {name}"),
                        ));
                    }
                    Expr::Literal(ScalarValue::Int64(1))
                } else {
                    if args.len() != 1 {
                        return Err(SqlError::bind(
                            e.pos,
                            format!("{name} takes exactly one argument, got {}", args.len()),
                        ));
                    }
                    if contains_aggregate(&args[0]) {
                        return Err(SqlError::bind(
                            args[0].pos,
                            "aggregate calls cannot be nested",
                        ));
                    }
                    let bound = self.bind_scalar(scope, &args[0])?;
                    let input_type = self.type_of(&bound, &scope.flat, args[0].pos)?;
                    if matches!(func, AggFunc::Sum | AggFunc::Avg) && !input_type.is_numeric() {
                        return Err(SqlError::bind(
                            args[0].pos,
                            format!(
                                "{} requires a numeric argument, got {input_type}",
                                name.to_uppercase()
                            ),
                        ));
                    }
                    bound
                };
                let alias = extraction.intern(func, input, top_level_alias);
                return Ok(SqlExpr::new(ExprKind::Column { qualifier: None, name: alias }, e.pos));
            }
        }

        // No aggregate inside: either it is a group key (replace with its
        // output column) or we keep descending.
        if !contains_aggregate(e) {
            if literal_scalar(e).is_some() {
                return Ok(e.clone());
            }
            let bound = self.bind_scalar(scope, e)?;
            if let Some((_, name)) = groups.iter().find(|(expr, _)| *expr == bound) {
                return Ok(SqlExpr::new(
                    ExprKind::Column { qualifier: None, name: name.clone() },
                    e.pos,
                ));
            }
            if let ExprKind::Column { name, .. } = &e.kind {
                return Err(SqlError::bind(
                    e.pos,
                    format!("column '{name}' must appear in GROUP BY or be used in an aggregate"),
                ));
            }
        }

        // Composite node: rewrite children.
        let kind = match &e.kind {
            ExprKind::Binary { op, left, right } => ExprKind::Binary {
                op: *op,
                left: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, left, None)?),
                right: Box::new(
                    self.rewrite_over_aggregate(scope, groups, extraction, right, None)?,
                ),
            },
            ExprKind::Not(inner) => ExprKind::Not(Box::new(
                self.rewrite_over_aggregate(scope, groups, extraction, inner, None)?,
            )),
            ExprKind::Like { expr, pattern, negated } => ExprKind::Like {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            ExprKind::InList { expr, items, negated } => ExprKind::InList {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                items: items.clone(),
                negated: *negated,
            },
            ExprKind::Between { expr, low, high, negated } => ExprKind::Between {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                low: low.clone(),
                high: high.clone(),
                negated: *negated,
            },
            ExprKind::Case { branches, else_expr } => {
                let mut rewritten = Vec::new();
                for (cond, value) in branches {
                    rewritten.push((
                        self.rewrite_over_aggregate(scope, groups, extraction, cond, None)?,
                        self.rewrite_over_aggregate(scope, groups, extraction, value, None)?,
                    ));
                }
                ExprKind::Case {
                    branches: rewritten,
                    else_expr: Box::new(
                        self.rewrite_over_aggregate(scope, groups, extraction, else_expr, None)?,
                    ),
                }
            }
            ExprKind::ExtractYear(inner) => ExprKind::ExtractYear(Box::new(
                self.rewrite_over_aggregate(scope, groups, extraction, inner, None)?,
            )),
            ExprKind::Substring { expr, start, len } => ExprKind::Substring {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                start: *start,
                len: *len,
            },
            ExprKind::Cast { expr, to } => ExprKind::Cast {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                to: *to,
            },
            // Literals were returned above; a bare column either matched a
            // group key or errored; functions were handled first.
            other => other.clone(),
        };
        Ok(SqlExpr::new(kind, e.pos))
    }

    // -- scalar expression binding -----------------------------------------

    fn type_of(&self, e: &Expr, schema: &Schema, pos: Pos) -> Result<DataType, SqlError> {
        e.data_type(schema).map_err(|err| SqlError::bind(pos, err.to_string()))
    }

    fn expect_bool(
        &self,
        e: &Expr,
        scope: &Scope<'_>,
        pos: Pos,
        what: &str,
    ) -> Result<(), SqlError> {
        let t = self.type_of(e, &scope.flat, pos)?;
        if t != DataType::Bool {
            return Err(SqlError::bind(pos, format!("{what} has type {t}, expected Bool")));
        }
        Ok(())
    }

    /// Bind a scalar (aggregate-free) expression against `scope`,
    /// rejecting subqueries — use [`bind_predicate`](Self::bind_predicate)
    /// for WHERE/HAVING, the only places subqueries may appear.
    fn bind_scalar(&self, scope: &Scope<'_>, e: &SqlExpr) -> Result<Expr, SqlError> {
        self.bind_expr(scope, e, false)
    }

    /// Bind a WHERE/HAVING predicate: like [`bind_scalar`](Self::bind_scalar)
    /// but subquery expressions (`EXISTS`, `IN (SELECT ...)`, scalar
    /// subqueries) are allowed and lower to the plan layer's subquery
    /// expressions, which the optimizer decorrelates into joins.
    fn bind_predicate(&self, scope: &Scope<'_>, e: &SqlExpr) -> Result<Expr, SqlError> {
        self.bind_expr(scope, e, true)
    }

    fn bind_expr(
        &self,
        scope: &Scope<'_>,
        e: &SqlExpr,
        allow_subqueries: bool,
    ) -> Result<Expr, SqlError> {
        match &e.kind {
            ExprKind::Column { qualifier, name } => {
                match scope.resolve(qualifier.as_deref(), name, e.pos)? {
                    Resolved::Column(flat) => Ok(Expr::Column(flat)),
                    Resolved::Outer { name, dtype } => Ok(Expr::OuterRef { name, dtype }),
                }
            }
            ExprKind::Int(v) => Ok(Expr::Literal(ScalarValue::Int64(*v))),
            ExprKind::Float(v) => Ok(Expr::Literal(ScalarValue::Float64(*v))),
            ExprKind::Str(s) => Ok(Expr::Literal(ScalarValue::Utf8(s.clone()))),
            ExprKind::Bool(b) => Ok(Expr::Literal(ScalarValue::Bool(*b))),
            ExprKind::Date(d) => Ok(Expr::Literal(ScalarValue::Date(*d))),
            ExprKind::Binary { op, left, right } => {
                self.bind_binary(scope, e, *op, left, right, allow_subqueries)
            }
            ExprKind::Not(inner) => {
                let bound = self.bind_expr(scope, inner, allow_subqueries)?;
                self.expect_bool(&bound, scope, inner.pos, "NOT operand")?;
                // Normalize `NOT EXISTS` / `NOT (x IN sq)` into the negated
                // subquery forms the decorrelator rewrites directly.
                Ok(match bound {
                    Expr::Exists { plan, negated } => Expr::Exists { plan, negated: !negated },
                    Expr::InSubquery { expr, plan, negated } => {
                        Expr::InSubquery { expr, plan, negated: !negated }
                    }
                    other => Expr::Not(Box::new(other)),
                })
            }
            ExprKind::Subquery(statement) => {
                self.expect_subqueries_allowed(allow_subqueries, e.pos)?;
                let plan = self.bind_scalar_subquery(scope, statement, e.pos)?;
                Ok(Expr::ScalarSubquery(Box::new(plan)))
            }
            ExprKind::Exists(statement) => {
                self.expect_subqueries_allowed(allow_subqueries, e.pos)?;
                let plan = self.bind_exists_subquery(scope, statement)?;
                Ok(Expr::Exists { plan: Box::new(plan), negated: false })
            }
            ExprKind::InSubquery { expr, statement, negated } => {
                self.expect_subqueries_allowed(allow_subqueries, e.pos)?;
                let bound = self.bind_expr(scope, expr, allow_subqueries)?;
                if !matches!(bound, Expr::Column(_)) {
                    return Err(SqlError::bind(
                        expr.pos,
                        "IN (SELECT ...) is only supported on a plain column of this query",
                    ));
                }
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                let plan = self.bind_in_subquery(scope, statement, e.pos, t)?;
                Ok(Expr::InSubquery {
                    expr: Box::new(bound),
                    plan: Box::new(plan),
                    negated: *negated,
                })
            }
            ExprKind::Like { expr, pattern, negated } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                if t != DataType::Utf8 {
                    return Err(SqlError::bind(
                        expr.pos,
                        format!("LIKE requires a string expression, got {t}"),
                    ));
                }
                Ok(Expr::Like {
                    expr: Box::new(bound),
                    pattern: pattern.clone(),
                    negated: *negated,
                })
            }
            ExprKind::InList { expr, items, negated } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                let mut list = Vec::new();
                for item in items {
                    let value = literal_scalar(item).ok_or_else(|| {
                        SqlError::bind(item.pos, "IN list items must be literals")
                    })?;
                    list.push(coerce_literal(value, t, item.pos)?);
                }
                Ok(Expr::InList { expr: Box::new(bound), list, negated: *negated })
            }
            ExprKind::Between { expr, low, high, negated } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                let low_value = literal_scalar(low)
                    .ok_or_else(|| SqlError::bind(low.pos, "BETWEEN bounds must be literals"))?;
                let high_value = literal_scalar(high)
                    .ok_or_else(|| SqlError::bind(high.pos, "BETWEEN bounds must be literals"))?;
                let between = Expr::Between {
                    expr: Box::new(bound),
                    low: coerce_literal(low_value, t, low.pos)?,
                    high: coerce_literal(high_value, t, high.pos)?,
                };
                Ok(if *negated { Expr::Not(Box::new(between)) } else { between })
            }
            ExprKind::Case { branches, else_expr } => {
                let mut bound_branches = Vec::new();
                let mut branch_types = Vec::new();
                for (cond, value) in branches {
                    let bound_cond = self.bind_scalar(scope, cond)?;
                    self.expect_bool(&bound_cond, scope, cond.pos, "CASE WHEN condition")?;
                    let bound_value = self.bind_scalar(scope, value)?;
                    branch_types
                        .push((self.type_of(&bound_value, &scope.flat, value.pos)?, value.pos));
                    bound_branches.push((bound_cond, bound_value));
                }
                let bound_else = self.bind_scalar(scope, else_expr)?;
                branch_types
                    .push((self.type_of(&bound_else, &scope.flat, else_expr.pos)?, else_expr.pos));
                let (first, _) = branch_types[0];
                for (t, pos) in &branch_types[1..] {
                    let compatible = *t == first || (t.is_numeric() && first.is_numeric());
                    if !compatible {
                        return Err(SqlError::bind(
                            *pos,
                            format!("CASE branches have incompatible types {first} and {t}"),
                        ));
                    }
                }
                Ok(Expr::Case { branches: bound_branches, otherwise: Box::new(bound_else) })
            }
            ExprKind::Function { name, .. } => {
                if agg_func_of(name, false, e.pos)?.is_some() {
                    return Err(SqlError::bind(
                        e.pos,
                        format!("aggregate function '{name}' is not allowed here"),
                    ));
                }
                Err(SqlError::bind(
                    e.pos,
                    format!(
                        "unknown function '{name}' (supported: sum, avg, min, max, count, \
                         substr, extract(year from ...), cast)"
                    ),
                ))
            }
            ExprKind::ExtractYear(inner) => {
                let bound = self.bind_scalar(scope, inner)?;
                let t = self.type_of(&bound, &scope.flat, inner.pos)?;
                if t != DataType::Date {
                    return Err(SqlError::bind(
                        inner.pos,
                        format!("EXTRACT(YEAR FROM ...) requires a Date expression, got {t}"),
                    ));
                }
                Ok(Expr::Year(Box::new(bound)))
            }
            ExprKind::Substring { expr, start, len } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                if t != DataType::Utf8 {
                    return Err(SqlError::bind(
                        expr.pos,
                        format!("SUBSTRING requires a string expression, got {t}"),
                    ));
                }
                Ok(Expr::Substr { expr: Box::new(bound), start: *start, len: *len })
            }
            ExprKind::Cast { expr, to } => {
                let bound = self.bind_scalar(scope, expr)?;
                let from = self.type_of(&bound, &scope.flat, expr.pos)?;
                // Mirror the combinations compute::cast implements, so an
                // infeasible cast is a positioned bind error instead of a
                // runtime failure.
                let castable = from == *to
                    || matches!(
                        (from, *to),
                        (DataType::Int64, DataType::Float64)
                            | (DataType::Float64, DataType::Int64)
                            | (DataType::Date, DataType::Int64)
                            | (DataType::Int64, DataType::Date)
                    );
                if !castable {
                    return Err(SqlError::bind(
                        e.pos,
                        format!(
                            "unsupported cast {from} -> {to} \
                             (supported: BIGINT <-> DOUBLE, DATE <-> BIGINT)"
                        ),
                    ));
                }
                Ok(Expr::Cast { expr: Box::new(bound), to: *to })
            }
        }
    }

    fn bind_binary(
        &self,
        scope: &Scope<'_>,
        e: &SqlExpr,
        op: BinOp,
        left: &SqlExpr,
        right: &SqlExpr,
        allow_subqueries: bool,
    ) -> Result<Expr, SqlError> {
        match op {
            BinOp::And | BinOp::Or => {
                let l = self.bind_expr(scope, left, allow_subqueries)?;
                let r = self.bind_expr(scope, right, allow_subqueries)?;
                let side = if op == BinOp::And { "AND" } else { "OR" };
                self.expect_bool(&l, scope, left.pos, side)?;
                self.expect_bool(&r, scope, right.pos, side)?;
                Ok(if op == BinOp::And {
                    Expr::And(Box::new(l), Box::new(r))
                } else {
                    Expr::Or(Box::new(l), Box::new(r))
                })
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = self.bind_expr(scope, left, allow_subqueries)?;
                let r = self.bind_expr(scope, right, allow_subqueries)?;
                let lt = self.type_of(&l, &scope.flat, left.pos)?;
                let rt = self.type_of(&r, &scope.flat, right.pos)?;
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(SqlError::bind(
                        e.pos,
                        format!("arithmetic requires numeric operands, got {lt} and {rt}"),
                    ));
                }
                let kind = match op {
                    BinOp::Add => ArithOpKind::Add,
                    BinOp::Sub => ArithOpKind::Sub,
                    BinOp::Mul => ArithOpKind::Mul,
                    _ => ArithOpKind::Div,
                };
                Ok(Expr::Arith { op: kind, left: Box::new(l), right: Box::new(r) })
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let l = self.bind_expr(scope, left, allow_subqueries)?;
                let r = self.bind_expr(scope, right, allow_subqueries)?;
                let lt = self.type_of(&l, &scope.flat, left.pos)?;
                let rt = self.type_of(&r, &scope.flat, right.pos)?;
                // A date column compared against a string literal: re-read
                // the literal as a date.
                let (l, lt) = coerce_cmp_side(l, lt, rt, left.pos)?;
                let (r, rt) = coerce_cmp_side(r, rt, lt, right.pos)?;
                let comparable = lt == rt || (lt.is_numeric() && rt.is_numeric());
                if !comparable {
                    return Err(SqlError::bind(e.pos, format!("cannot compare {lt} with {rt}")));
                }
                let kind = match op {
                    BinOp::Eq => CmpOpKind::Eq,
                    BinOp::NotEq => CmpOpKind::NotEq,
                    BinOp::Lt => CmpOpKind::Lt,
                    BinOp::LtEq => CmpOpKind::LtEq,
                    BinOp::Gt => CmpOpKind::Gt,
                    _ => CmpOpKind::GtEq,
                };
                Ok(Expr::Cmp { op: kind, left: Box::new(l), right: Box::new(r) })
            }
        }
    }

    // -- subquery binding ----------------------------------------------------

    fn expect_subqueries_allowed(&self, allowed: bool, pos: Pos) -> Result<(), SqlError> {
        if allowed {
            Ok(())
        } else {
            Err(SqlError::bind(
                pos,
                "subqueries are only supported in WHERE and HAVING \
                 (not in SELECT, GROUP BY, ORDER BY, or JOIN ON)",
            ))
        }
    }

    /// Bind a scalar subquery: a single-item aggregate SELECT with no
    /// GROUP BY — the only shape whose per-outer-row value the optimizer
    /// can decorrelate (uncorrelated → constant-key join; correlated →
    /// group-by + join). Anything else is rejected with a position.
    fn bind_scalar_subquery(
        &self,
        scope: &Scope<'_>,
        stmt: &SelectStatement,
        pos: Pos,
    ) -> Result<LogicalPlan, SqlError> {
        if stmt.items.len() != 1 || stmt.items[0] == SelectItem::Wildcard {
            return Err(SqlError::bind(
                pos,
                "a scalar subquery must select exactly one expression",
            ));
        }
        let SelectItem::Expr { expr, .. } = &stmt.items[0] else { unreachable!("checked above") };
        if !contains_aggregate(expr) {
            return Err(SqlError::bind(
                pos,
                "a scalar subquery must compute an aggregate (e.g. min, avg, sum) so it \
                 yields one value per outer row",
            ));
        }
        if !stmt.group_by.is_empty() {
            return Err(SqlError::bind(
                pos,
                "a scalar subquery cannot have GROUP BY (it must yield a single value); \
                 correlate it with an equality in its WHERE clause instead",
            ));
        }
        if stmt.having.is_some() || !stmt.order_by.is_empty() || stmt.limit.is_some() {
            return Err(SqlError::bind(
                pos,
                "a scalar subquery supports only SELECT <aggregate> FROM ... WHERE ... \
                 (no HAVING, ORDER BY, or LIMIT)",
            ));
        }
        if stmt.distinct {
            return Err(SqlError::bind(pos, "a scalar subquery cannot use SELECT DISTINCT"));
        }
        let plan = self.bind_select(stmt, Some(scope))?;
        let schema = self.schema_of(&plan)?;
        if schema.len() != 1 {
            return Err(SqlError::bind(
                pos,
                format!("a scalar subquery must produce one column, got {}", schema.len()),
            ));
        }
        Ok(plan)
    }

    /// Bind an `EXISTS (...)` subquery. The select list is irrelevant to
    /// EXISTS semantics, so for plain (non-aggregate) subqueries it is bound
    /// as `*` — which also keeps every column visible for the decorrelating
    /// semi/anti join's correlation keys.
    fn bind_exists_subquery(
        &self,
        scope: &Scope<'_>,
        stmt: &SelectStatement,
    ) -> Result<LogicalPlan, SqlError> {
        let has_aggregates = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                SelectItem::Wildcard => false,
            });
        if has_aggregates || stmt.distinct {
            return self.bind_select(stmt, Some(scope));
        }
        let mut forced = stmt.clone();
        forced.items = vec![SelectItem::Wildcard];
        // Ordering can never change whether the subquery is empty, and the
        // ORDER BY keys may name select aliases `*` no longer produces —
        // drop it. LIMIT is kept: `EXISTS (... LIMIT 0)` must be false
        // (the decorrelator rejects limits in *correlated* subqueries,
        // where a global limit would not match per-row semantics).
        forced.order_by.clear();
        self.bind_select(&forced, Some(scope))
    }

    /// Bind an `IN (SELECT ...)` subquery: one output column whose type
    /// must match the tested expression's.
    fn bind_in_subquery(
        &self,
        scope: &Scope<'_>,
        stmt: &SelectStatement,
        pos: Pos,
        expected: DataType,
    ) -> Result<LogicalPlan, SqlError> {
        let plan = self.bind_select(stmt, Some(scope))?;
        let schema = self.schema_of(&plan)?;
        if schema.len() != 1 {
            return Err(SqlError::bind(
                pos,
                format!(
                    "an IN subquery must produce exactly one column, got {} ({})",
                    schema.len(),
                    schema.column_names().join(", ")
                ),
            ));
        }
        let got = schema.field(0).data_type;
        if got != expected {
            return Err(SqlError::bind(
                pos,
                format!(
                    "IN subquery type mismatch: the tested column is {expected} but the \
                     subquery produces {got}"
                ),
            ));
        }
        Ok(plan)
    }
}

/// Literal-side coercion for comparisons: a Utf8 literal facing a Date
/// expression becomes a Date literal.
fn coerce_cmp_side(
    e: Expr,
    t: DataType,
    other: DataType,
    pos: Pos,
) -> Result<(Expr, DataType), SqlError> {
    if t == DataType::Utf8 && other == DataType::Date {
        if let Expr::Literal(ScalarValue::Utf8(s)) = &e {
            return match validate_date(s) {
                Some(days) => Ok((Expr::Literal(ScalarValue::Date(days)), DataType::Date)),
                None => Err(SqlError::bind(
                    pos,
                    format!("'{s}' is not a valid date literal (expected 'YYYY-MM-DD')"),
                )),
            };
        }
    }
    Ok((e, t))
}

/// The aggregate columns collected while rewriting SELECT/HAVING.
struct Extraction {
    aggs: Vec<AggExpr>,
    hidden: usize,
    /// User-visible output names the synthesized `__agg_N` aliases must
    /// avoid (a collision would make name-based resolution over the
    /// aggregate output silently read the wrong column).
    reserved: std::collections::BTreeSet<String>,
}

impl Extraction {
    /// Reuse an existing aggregate column for `(func, input)` or create one.
    /// `preferred_alias` is the SELECT alias when the aggregate call is a
    /// whole select item; hidden aggregates get `__agg_N` names and are
    /// projected away at the end.
    fn intern(&mut self, func: AggFunc, input: Expr, preferred_alias: Option<&str>) -> String {
        if let Some(existing) = self.aggs.iter().find(|a| a.func == func && a.expr == input) {
            return existing.alias.clone();
        }
        let alias = match preferred_alias {
            Some(a) => a.to_string(),
            None => loop {
                let candidate = format!("__agg_{}", self.hidden);
                self.hidden += 1;
                if !self.reserved.contains(&candidate) {
                    break candidate;
                }
            },
        };
        self.aggs.push(AggExpr::new(func, input, alias.clone()));
        alias
    }
}

/// `expr AND expr AND ...` → flat conjunct list.
fn collect_conjuncts<'e>(e: &'e SqlExpr, out: &mut Vec<&'e SqlExpr>) {
    match &e.kind {
        ExprKind::Binary { op: BinOp::And, left, right } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        _ => out.push(e),
    }
}

/// The SELECT expression behind `alias`, if any item carries that alias.
fn find_alias<'s>(stmt: &'s SelectStatement, alias: &str) -> Option<&'s SqlExpr> {
    stmt.items.iter().find_map(|item| match item {
        SelectItem::Expr { expr, alias: Some(a) } if a == alias => Some(expr),
        _ => None,
    })
}

/// Output column name for a select item: the alias, the column's own name,
/// or a positional fallback.
fn output_name(expr: &SqlExpr, alias: Option<&str>, index: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match &expr.kind {
        ExprKind::Column { name, .. } => name.clone(),
        ExprKind::Function { name, .. } => name.clone(),
        _ => format!("col_{index}"),
    }
}

fn check_unique_names(exprs: &[(Expr, String)]) -> Result<(), SqlError> {
    for (i, (_, name)) in exprs.iter().enumerate() {
        if exprs[..i].iter().any(|(_, n)| n == name) {
            return Err(SqlError::bind(
                Pos::new(1, 1),
                format!("duplicate output column '{name}'; disambiguate with AS aliases"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use quokka_batch::{Batch, Column};
    use quokka_plan::catalog::MemoryCatalog;
    use quokka_plan::reference::ReferenceExecutor;

    /// Two small joined tables: orders(o_id, o_cust, o_total, o_date) and
    /// customers(c_id, c_name, c_balance).
    fn catalog() -> MemoryCatalog {
        use quokka_batch::datatype::parse_date;
        let catalog = MemoryCatalog::new();
        let orders = Schema::from_pairs(&[
            ("o_id", DataType::Int64),
            ("o_cust", DataType::Int64),
            ("o_total", DataType::Float64),
            ("o_date", DataType::Date),
        ]);
        catalog.register(
            "orders",
            orders.clone(),
            vec![Batch::try_new(
                orders,
                vec![
                    Column::Int64(vec![1, 2, 3, 4]),
                    Column::Int64(vec![10, 10, 20, 30]),
                    Column::Float64(vec![5.0, 7.5, 20.0, 1.0]),
                    Column::Date(vec![
                        parse_date("1994-01-05"),
                        parse_date("1994-06-01"),
                        parse_date("1995-02-01"),
                        parse_date("1995-12-31"),
                    ]),
                ],
            )
            .unwrap()],
        );
        let customers = Schema::from_pairs(&[
            ("c_id", DataType::Int64),
            ("c_name", DataType::Utf8),
            ("c_balance", DataType::Float64),
        ]);
        catalog.register(
            "customers",
            customers.clone(),
            vec![Batch::try_new(
                customers,
                vec![
                    Column::Int64(vec![10, 20, 30]),
                    Column::Utf8(vec!["alice".into(), "bob".into(), "carol".into()]),
                    Column::Float64(vec![100.0, 200.0, 300.0]),
                ],
            )
            .unwrap()],
        );
        catalog
    }

    fn plan(sql: &str) -> Result<LogicalPlan, SqlError> {
        bind_statement(&parse(sql).unwrap(), &catalog())
    }

    fn run(sql: &str) -> Batch {
        let catalog = catalog();
        let plan = bind_statement(&parse(sql).unwrap(), &catalog).unwrap();
        ReferenceExecutor::new(&catalog).execute(&plan).unwrap()
    }

    #[test]
    fn select_star_is_a_bare_scan() {
        let p = plan("SELECT * FROM orders").unwrap();
        assert_eq!(p.name(), "Scan");
        assert_eq!(p.schema().unwrap().len(), 4);
    }

    #[test]
    fn filter_project_pipeline() {
        let p =
            plan("SELECT o_id, o_total * 2 AS double_total FROM orders WHERE o_total > 6").unwrap();
        assert_eq!(p.name(), "Project");
        let schema = p.schema().unwrap();
        assert_eq!(schema.column_names(), vec!["o_id", "double_total"]);
        assert_eq!(schema.data_type("double_total").unwrap(), DataType::Float64);
        let batch = run("SELECT o_id, o_total * 2 AS double_total FROM orders WHERE o_total > 6");
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn join_produces_equi_join_pairs() {
        let p = plan("SELECT c_name, o_total FROM customers JOIN orders ON c_id = o_cust").unwrap();
        // Project over Join(build=customers scan, probe=orders scan).
        match &p {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Join { on, join_type, .. } => {
                    assert_eq!(on, &vec![("c_id".to_string(), "o_cust".to_string())]);
                    assert_eq!(*join_type, JoinType::Inner);
                }
                other => panic!("expected Join, got {}", other.name()),
            },
            other => panic!("expected Project, got {}", other.name()),
        }
        let batch = run("SELECT c_name, o_total FROM customers JOIN orders ON c_id = o_cust");
        assert_eq!(batch.num_rows(), 4);
    }

    #[test]
    fn join_on_reversed_sides_and_qualifiers() {
        // Equality written probe-first, with table qualifiers.
        let p = plan("SELECT c_name FROM customers JOIN orders ON orders.o_cust = customers.c_id")
            .unwrap();
        match &p {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Join { on, .. } => {
                    assert_eq!(on, &vec![("c_id".to_string(), "o_cust".to_string())]);
                }
                other => panic!("expected Join, got {}", other.name()),
            },
            _ => panic!("expected Project"),
        }
    }

    #[test]
    fn group_by_with_having_and_hidden_aggregate() {
        let sql = "SELECT c_name, sum(o_total) AS spend FROM customers \
                   JOIN orders ON c_id = o_cust \
                   GROUP BY c_name HAVING count(*) > 1 ORDER BY spend DESC";
        let batch = run(sql);
        // Only alice has two orders: 5.0 + 7.5.
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("alice".into()));
        assert_eq!(batch.value(0, 1), ScalarValue::Float64(12.5));
        // The hidden count(*) column is projected away.
        let p = plan(sql).unwrap();
        assert_eq!(p.schema().unwrap().column_names(), vec!["c_name", "spend"]);
    }

    #[test]
    fn arithmetic_over_aggregates() {
        let batch =
            run("SELECT sum(o_total) / count(*) AS avg_total, avg(o_total) AS direct FROM orders");
        assert_eq!(batch.num_rows(), 1);
        let a = batch.value(0, 0).as_f64().unwrap();
        let b = batch.value(0, 1).as_f64().unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn group_key_can_be_a_select_alias_expression() {
        let batch = run("SELECT extract(year from o_date) AS year, count(*) AS n \
             FROM orders GROUP BY year ORDER BY year");
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(1994));
        assert_eq!(batch.value(0, 1), ScalarValue::Int64(2));
        assert_eq!(batch.value(1, 0), ScalarValue::Int64(1995));
    }

    #[test]
    fn identity_aggregate_output_skips_the_projection() {
        let p = plan(
            "SELECT c_name, sum(o_total) AS spend FROM customers \
                      JOIN orders ON c_id = o_cust GROUP BY c_name",
        )
        .unwrap();
        assert_eq!(p.name(), "Aggregate");
    }

    #[test]
    fn where_dates_coerce_and_between_in_like_work() {
        let batch = run("SELECT o_id FROM orders WHERE o_date >= DATE '1994-01-01' \
             AND o_date < '1995-01-01' AND o_total BETWEEN 1 AND 10");
        assert_eq!(batch.num_rows(), 2);
        let batch = run("SELECT c_id FROM customers WHERE c_name LIKE '%li%'");
        assert_eq!(batch.num_rows(), 1);
        let batch = run("SELECT c_id FROM customers WHERE c_name IN ('alice', 'carol')");
        assert_eq!(batch.num_rows(), 2);
        let batch = run("SELECT o_id FROM orders WHERE o_cust NOT IN (10)");
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn case_and_cast_and_substring() {
        let batch = run("SELECT CASE WHEN o_total > 6 THEN 'big' ELSE 'small' END AS size, \
                    CAST(o_id AS DOUBLE) AS idf, substr(c_name, 1, 2) AS prefix \
             FROM customers JOIN orders ON c_id = o_cust ORDER BY idf");
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("small".into()));
        assert_eq!(batch.value(0, 1), ScalarValue::Float64(1.0));
        assert_eq!(batch.value(0, 2), ScalarValue::Utf8("al".into()));
    }

    #[test]
    fn limit_and_sort_limit() {
        let p = plan("SELECT o_id FROM orders ORDER BY o_id DESC LIMIT 2").unwrap();
        match &p {
            LogicalPlan::Sort { limit, keys, .. } => {
                assert_eq!(*limit, Some(2));
                assert_eq!(keys, &vec![("o_id".to_string(), false)]);
            }
            other => panic!("expected Sort, got {}", other.name()),
        }
        let p = plan("SELECT o_id FROM orders LIMIT 3").unwrap();
        assert_eq!(p.name(), "Limit");
    }

    #[test]
    fn unknown_names_error_with_positions_and_suggestions() {
        let err = plan("SELECT o_id FROM oders").unwrap_err();
        assert_eq!(err.kind, crate::error::SqlErrorKind::Bind);
        assert!(err.to_string().contains("unknown table 'oders'"), "{err}");
        assert!(err.to_string().contains("did you mean 'orders'"), "{err}");
        assert_eq!(err.pos, Pos::new(1, 18));

        let err = plan("SELECT o_idd FROM orders").unwrap_err();
        assert!(err.to_string().contains("unknown column 'o_idd'"), "{err}");
        assert!(err.to_string().contains("did you mean 'o_id'"), "{err}");
        assert_eq!(err.pos, Pos::new(1, 8));

        let err = plan("SELECT orders.c_name FROM orders").unwrap_err();
        assert!(err.to_string().contains("has no column"), "{err}");

        let err = plan("SELECT x.o_id FROM orders").unwrap_err();
        assert!(err.to_string().contains("unknown table or alias 'x'"), "{err}");
    }

    #[test]
    fn type_mismatches_are_bind_errors() {
        let err = plan("SELECT o_id FROM orders WHERE c_name_missing > 1");
        assert!(err.is_err());

        let err = plan("SELECT o_total + c_name FROM orders JOIN customers ON o_cust = c_id")
            .unwrap_err();
        assert!(err.to_string().contains("arithmetic requires numeric operands"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE o_total > 'abc'").unwrap_err();
        assert!(err.to_string().contains("cannot compare"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE o_date > 'not-a-date'").unwrap_err();
        assert!(err.to_string().contains("not a valid date"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE o_total").unwrap_err();
        assert!(err.to_string().contains("expected Bool"), "{err}");

        let err = plan("SELECT sum(c_name) FROM customers").unwrap_err();
        assert!(err.to_string().contains("SUM requires a numeric argument"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE sum(o_total) > 1").unwrap_err();
        assert!(err.to_string().contains("not allowed in WHERE"), "{err}");

        let err = plan("SELECT o_id, count(*) FROM orders").unwrap_err();
        assert!(err.to_string().contains("must appear in GROUP BY"), "{err}");

        let err = plan("SELECT extract(year from c_name) FROM customers").unwrap_err();
        assert!(err.to_string().contains("requires a Date"), "{err}");
    }

    #[test]
    fn join_condition_errors() {
        let err = plan("SELECT c_name FROM customers JOIN orders ON c_id > o_cust").unwrap_err();
        assert!(err.to_string().contains("column equalities"), "{err}");

        let err = plan("SELECT c_name FROM customers JOIN orders ON o_id = o_cust").unwrap_err();
        assert!(err.to_string().contains("both sides"), "{err}");

        let err = plan("SELECT c_name FROM customers JOIN orders ON c_name = o_cust").unwrap_err();
        assert!(err.to_string().contains("join key type mismatch"), "{err}");

        let err = plan("SELECT 1 AS one FROM orders JOIN orders ON o_id = o_id").unwrap_err();
        assert!(err.to_string().contains("duplicate table"), "{err}");
    }

    #[test]
    fn order_by_must_reference_output_columns() {
        let err = plan("SELECT o_id FROM orders ORDER BY o_total").unwrap_err();
        assert!(err.to_string().contains("not in the output"), "{err}");

        let err = plan("SELECT o_id FROM orders ORDER BY sum(o_id)").unwrap_err();
        assert!(err.to_string().contains("cannot introduce new aggregates"), "{err}");
    }

    #[test]
    fn order_by_expressions_sort_through_hidden_keys() {
        // `ORDER BY o_id + 1 DESC` == `ORDER BY o_id DESC`, and the hidden
        // sort key must not appear in the output.
        let batch = run("SELECT o_id FROM orders ORDER BY 0 - o_id");
        assert_eq!(batch.schema().column_names(), vec!["o_id"]);
        assert_eq!(batch.column(0), &Column::Int64(vec![4, 3, 2, 1]));

        // Expressions over aggregate aliases work too.
        let batch = run("SELECT o_cust, sum(o_total) AS total FROM orders \
             GROUP BY o_cust ORDER BY 0.0 - total LIMIT 2");
        assert_eq!(batch.num_rows(), 2);
        let totals = batch.as_f64s("total").unwrap().to_vec();
        assert!(totals[0] >= totals[1], "{totals:?}");

        // CASE expressions as sort keys.
        let batch = run("SELECT o_id FROM orders \
             ORDER BY CASE WHEN o_id = 3 THEN 0 ELSE 1 END, o_id");
        assert_eq!(batch.column(0), &Column::Int64(vec![3, 1, 2, 4]));
    }

    #[test]
    fn having_without_aggregates_is_rejected() {
        let err = plan("SELECT o_id FROM orders HAVING o_id > 1").unwrap_err();
        assert!(err.to_string().contains("HAVING requires GROUP BY"), "{err}");
    }

    #[test]
    fn duplicate_output_names_are_rejected() {
        let err = plan("SELECT o_id, o_id + 1 AS o_id FROM orders").unwrap_err();
        assert!(err.to_string().contains("duplicate output column"), "{err}");
    }

    #[test]
    fn select_distinct_lowers_to_an_aggregate() {
        let p = plan("SELECT DISTINCT o_cust FROM orders").unwrap();
        match &p {
            LogicalPlan::Aggregate { group_by, aggregates, .. } => {
                assert_eq!(group_by.len(), 1);
                assert!(aggregates.is_empty());
            }
            other => panic!("expected Aggregate, got {}", other.name()),
        }
        let batch = run("SELECT DISTINCT o_cust FROM orders ORDER BY o_cust");
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(10));

        // DISTINCT over several columns, and over expressions.
        let batch = run("SELECT DISTINCT o_cust, o_total > 6 AS big FROM orders");
        assert_eq!(batch.num_rows(), 4);

        // DISTINCT * works too (all table columns).
        let batch = run("SELECT DISTINCT * FROM customers");
        assert_eq!(batch.num_rows(), 3);
    }

    #[test]
    fn comma_from_lists_bind_to_cross_joins() {
        let p = plan("SELECT c_name, o_total FROM customers, orders WHERE c_id = o_cust").unwrap();
        // Project over Filter over keyless Join: the binder stays naive and
        // leaves equi-join recovery to the optimizer.
        fn find_join(plan: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(plan, LogicalPlan::Join { .. }) {
                return Some(plan);
            }
            plan.children().iter().find_map(|c| find_join(c))
        }
        match find_join(&p).expect("join present") {
            LogicalPlan::Join { on, join_type, .. } => {
                assert!(on.is_empty(), "binder must not invent join keys");
                assert_eq!(*join_type, JoinType::Inner);
            }
            _ => unreachable!(),
        }
        // And the cross join executes correctly on the reference executor.
        let batch = run("SELECT c_name, o_total FROM customers, orders WHERE c_id = o_cust");
        assert_eq!(batch.num_rows(), 4);
        let unconstrained = run("SELECT c_name, o_total FROM customers, orders");
        assert_eq!(unconstrained.num_rows(), 12); // 3 customers x 4 orders

        // Duplicate-column and duplicate-binding guards still apply.
        let err = plan("SELECT o_id FROM orders, orders").unwrap_err();
        assert!(err.to_string().contains("duplicate table"), "{err}");
    }

    #[test]
    fn count_distinct_binds() {
        let batch = run("SELECT count(DISTINCT o_cust) AS customers FROM orders");
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(3));
        let err = plan("SELECT sum(DISTINCT o_total) FROM orders").unwrap_err();
        assert!(err.to_string().contains("only supported with COUNT"), "{err}");
    }

    #[test]
    fn group_by_and_order_by_ordinals() {
        let batch = run("SELECT o_cust, count(*) AS n FROM orders GROUP BY 1 ORDER BY 2 DESC");
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.value(0, 1), ScalarValue::Int64(2)); // customer 10

        let err = plan("SELECT o_cust FROM orders GROUP BY 3").unwrap_err();
        assert!(err.to_string().contains("position 3 is not in the select list"), "{err}");

        let err = plan("SELECT o_cust, count(*) AS n FROM orders GROUP BY 2").unwrap_err();
        assert!(err.to_string().contains("refers to an aggregate"), "{err}");

        let err = plan("SELECT o_cust, count(*) AS n FROM orders GROUP BY 'x'").unwrap_err();
        assert!(err.to_string().contains("not a literal"), "{err}");

        let err = plan("SELECT o_cust FROM orders ORDER BY 2").unwrap_err();
        assert!(err.to_string().contains("position 2 is not in the select list"), "{err}");
    }

    #[test]
    fn infeasible_casts_are_bind_errors() {
        // Identity and numeric/date casts bind.
        assert!(plan("SELECT CAST(c_name AS VARCHAR) AS s FROM customers").is_ok());
        assert!(plan("SELECT CAST(o_date AS BIGINT) AS d FROM orders").is_ok());
        // Casts compute::cast cannot execute are rejected with a position.
        let err = plan("SELECT CAST(o_id AS VARCHAR) AS s FROM orders").unwrap_err();
        assert!(err.to_string().contains("unsupported cast Int64 -> Utf8"), "{err}");
        let err = plan("SELECT CAST(c_name AS BOOLEAN) AS b FROM customers").unwrap_err();
        assert!(err.to_string().contains("unsupported cast"), "{err}");
    }

    #[test]
    fn synthesized_names_avoid_user_aliases() {
        // A user alias equal to a hidden-aggregate name must not capture
        // the hidden column: x is sum + 1, not min + 1.
        let batch =
            run("SELECT min(o_total) AS __agg_0, sum(o_total) + 1 AS x, count(*) AS group_0 \
             FROM orders GROUP BY o_cust ORDER BY x");
        assert_eq!(batch.value(0, 0), ScalarValue::Float64(1.0)); // min for cust 30
        assert_eq!(batch.value(0, 1), ScalarValue::Float64(2.0)); // sum + 1
        assert_eq!(batch.value(0, 2), ScalarValue::Int64(1));

        // An unnamed expression key must not collide with a user alias
        // either: group_0 is the count, not the key values.
        let batch = run("SELECT count(*) AS group_0 FROM orders GROUP BY o_id + o_cust");
        assert_eq!(batch.num_rows(), 4);
        for row in 0..4 {
            assert_eq!(batch.value(row, 0), ScalarValue::Int64(1), "row {row}");
        }

        // A genuine collision between a key name and an aggregate alias is
        // an error, not a silent first-match resolution.
        let err =
            plan("SELECT o_cust, sum(o_total) AS o_cust FROM orders GROUP BY o_cust").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");

        // Repeated group keys are deduplicated, not rejected.
        let batch = run("SELECT o_cust, count(*) AS n FROM orders GROUP BY o_cust, o_cust, 1");
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.schema().column_names(), vec!["o_cust", "n"]);
    }

    #[test]
    fn joins_with_duplicate_column_names_need_an_alias() {
        let catalog = catalog();
        let t = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Float64)]);
        let u = Schema::from_pairs(&[("k", DataType::Int64), ("w", DataType::Float64)]);
        catalog.register("t", t, vec![]);
        catalog.register("u", u, vec![]);
        let err = bind_statement(&parse("SELECT * FROM t JOIN u ON t.k = u.k").unwrap(), &catalog)
            .unwrap_err();
        assert!(err.to_string().contains("duplicate column 'k'"), "{err}");
        assert!(err.to_string().contains("alias"), "{err}");
        // With an alias the colliding table is renamed apart and the join
        // binds.
        let plan =
            bind_statement(&parse("SELECT v, w FROM t JOIN u b ON t.k = b.k").unwrap(), &catalog)
                .unwrap();
        assert_eq!(plan.schema().unwrap().column_names(), vec!["v", "w"]);
    }

    #[test]
    fn self_joins_rename_aliased_tables_apart() {
        // orders o2 collides with orders and is renamed to o2_*; qualified
        // references address the renamed columns transparently (unqualified
        // ones are ambiguous, as in standard SQL).
        let batch = run("SELECT orders.o_id AS o_id, o2.o_id AS other_id \
             FROM orders JOIN orders o2 ON orders.o_cust = o2.o_cust \
             WHERE orders.o_id < o2.o_id ORDER BY o_id, other_id");
        // Customer 10 has orders 1 and 2: the only pair with o_id < o2.o_id.
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(1));
        assert_eq!(batch.value(0, 1), ScalarValue::Int64(2));

        // Unqualified references to a column present in both occurrences
        // are ambiguous.
        let err =
            plan("SELECT o_total FROM orders JOIN orders o2 ON o_cust = o2.o_cust").unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");

        // Without an alias there is nothing to rename by.
        let err = plan("SELECT o_id FROM orders, orders").unwrap_err();
        assert!(err.to_string().contains("duplicate table"), "{err}");
    }

    #[test]
    fn derived_tables_bind_and_execute() {
        let batch = run("SELECT spend FROM \
               (SELECT o_cust, sum(o_total) AS spend FROM orders GROUP BY o_cust) totals \
             WHERE spend > 10 ORDER BY spend");
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.value(0, 0), ScalarValue::Float64(12.5));
        assert_eq!(batch.value(1, 0), ScalarValue::Float64(20.0));

        // Derived tables join like base tables.
        let batch = run("SELECT c_name, spend FROM customers \
             JOIN (SELECT o_cust, sum(o_total) AS spend FROM orders GROUP BY o_cust) totals \
               ON c_id = o_cust \
             ORDER BY spend DESC LIMIT 1");
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("bob".into()));
    }

    #[test]
    fn left_join_preserves_left_rows_with_defaults() {
        // carol (c_id 30) has no order with o_total > 6; the left join keeps
        // her with default-filled order columns (o_id = 0).
        let batch = run("SELECT c_name, o_id FROM customers \
             LEFT JOIN orders ON c_id = o_cust AND o_total > 6 \
             ORDER BY c_name, o_id");
        // alice: order 2 (7.5), bob: order 3 (20.0), carol: default row,
        // alice's order 1 (5.0) is filtered out by the ON predicate.
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.value(2, 0), ScalarValue::Utf8("carol".into()));
        assert_eq!(batch.value(2, 1), ScalarValue::Int64(0));

        // A cross-side predicate cannot live in a LEFT JOIN's ON.
        let err =
            plan("SELECT c_name FROM customers LEFT JOIN orders ON c_id = o_cust AND c_id > o_id")
                .unwrap_err();
        assert!(err.to_string().contains("column equalities"), "{err}");
    }

    #[test]
    fn correlated_exists_binds_and_decorrelates() {
        // Customers with at least one order over 6.
        let batch = run("SELECT c_name FROM customers \
             WHERE EXISTS (SELECT * FROM orders WHERE o_cust = c_id AND o_total > 6) \
             ORDER BY c_name");
        assert_eq!(batch.num_rows(), 2); // alice (7.5), bob (20.0)

        // NOT EXISTS: customers with no order over 6.
        let batch = run("SELECT c_name FROM customers \
             WHERE NOT EXISTS (SELECT * FROM orders WHERE o_cust = c_id AND o_total > 6)");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("carol".into()));
    }

    #[test]
    fn in_subqueries_bind_and_decorrelate() {
        let batch = run("SELECT c_name FROM customers \
             WHERE c_id IN (SELECT o_cust FROM orders WHERE o_total > 6) ORDER BY c_name");
        assert_eq!(batch.num_rows(), 2);
        let batch = run("SELECT c_name FROM customers \
             WHERE c_id NOT IN (SELECT o_cust FROM orders WHERE o_total > 6)");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("carol".into()));
    }

    #[test]
    fn scalar_subqueries_bind_correlated_and_uncorrelated() {
        // Uncorrelated: orders above the global average (global avg = 10.625).
        let batch = run("SELECT o_id FROM orders \
             WHERE o_total > (SELECT avg(o_total) FROM orders) ORDER BY o_id");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(3));

        // Correlated: each customer's orders above that customer's average.
        // The outer column must be qualified — an unqualified `o_cust`
        // resolves to the subquery's own table first, as in standard SQL.
        let batch = run("SELECT o_id FROM orders \
             WHERE o_total > (SELECT avg(o_total) FROM orders o2 \
                              WHERE o2.o_cust = orders.o_cust) \
             ORDER BY o_id");
        // customer 10: avg 6.25 -> order 2 (7.5); others equal their avg.
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(2));
    }

    #[test]
    fn subquery_misuse_is_a_positioned_bind_error() {
        for (sql, needle) in [
            (
                "SELECT (SELECT max(o_total) FROM orders) AS m FROM customers",
                "only supported in WHERE and HAVING",
            ),
            (
                "SELECT count(*) AS n FROM orders GROUP BY (SELECT max(o_id) FROM orders)",
                "only supported in WHERE and HAVING",
            ),
            (
                "SELECT o_id FROM orders ORDER BY (SELECT max(o_id) FROM orders)",
                "only supported in WHERE and HAVING",
            ),
            (
                "SELECT o_id FROM orders WHERE o_total > (SELECT o_total FROM orders)",
                "must compute an aggregate",
            ),
            (
                "SELECT o_id FROM orders \
                 WHERE o_total > (SELECT sum(o_total) FROM orders GROUP BY o_cust)",
                "cannot have GROUP BY",
            ),
            (
                "SELECT o_id FROM orders WHERE o_id IN (SELECT o_id, o_cust FROM orders)",
                "exactly one column",
            ),
            (
                "SELECT o_id FROM orders WHERE o_id IN (SELECT c_name FROM customers)",
                "type mismatch",
            ),
            ("SELECT o_id FROM orders WHERE o_id + 1 IN (SELECT o_id FROM orders)", "plain column"),
        ] {
            let err = plan(sql).expect_err(sql);
            assert!(err.to_string().contains(needle), "{sql}: {err}");
            assert_eq!(err.kind, crate::error::SqlErrorKind::Bind, "{sql}");
        }
    }

    #[test]
    fn exists_respects_uncorrelated_limits_and_rejects_unsound_shapes() {
        // LIMIT 0 empties the subquery: EXISTS is false for every row.
        let batch = run("SELECT c_name FROM customers \
             WHERE EXISTS (SELECT * FROM orders LIMIT 0)");
        assert_eq!(batch.num_rows(), 0);
        // ... and NOT EXISTS keeps everything.
        let batch = run("SELECT c_name FROM customers \
             WHERE NOT EXISTS (SELECT * FROM orders LIMIT 0)");
        assert_eq!(batch.num_rows(), 3);

        // A LIMIT in a *correlated* subquery cannot decorrelate soundly
        // (it would apply globally, not per outer row) — loud error, not a
        // wrong answer.
        let catalog = catalog();
        let p = bind_statement(
            &parse(
                "SELECT c_name FROM customers \
                 WHERE EXISTS (SELECT * FROM orders WHERE o_cust = c_id LIMIT 1)",
            )
            .unwrap(),
            &catalog,
        )
        .unwrap();
        let err = ReferenceExecutor::new(&catalog).execute(&p).unwrap_err();
        assert!(err.to_string().contains("LIMIT inside a correlated"), "{err}");

        // A scalar subquery under OR would drop rows the other disjunct
        // keeps — also a loud error.
        let p = bind_statement(
            &parse(
                "SELECT o_id FROM orders \
                 WHERE o_id > 100 OR o_total > (SELECT avg(o_total) FROM orders)",
            )
            .unwrap(),
            &catalog,
        )
        .unwrap();
        let err = ReferenceExecutor::new(&catalog).execute(&p).unwrap_err();
        assert!(err.to_string().contains("under OR"), "{err}");
    }

    #[test]
    fn having_accepts_uncorrelated_scalar_subqueries() {
        // Customers whose spend is above half the total spend.
        let batch = run("SELECT o_cust, sum(o_total) AS spend FROM orders GROUP BY o_cust \
             HAVING sum(o_total) > (SELECT sum(o_total) * 0.4 FROM orders) \
             ORDER BY spend DESC");
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(20));
    }
}
