/root/repo/target/debug/deps/kernels-6f27193cff6c717c.d: crates/bench/src/bin/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-6f27193cff6c717c.rmeta: crates/bench/src/bin/kernels.rs Cargo.toml

crates/bench/src/bin/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
