/root/repo/target/debug/deps/ablation_checkpoint-638aa4176c034c34.d: crates/bench/src/bin/ablation_checkpoint.rs

/root/repo/target/debug/deps/ablation_checkpoint-638aa4176c034c34: crates/bench/src/bin/ablation_checkpoint.rs

crates/bench/src/bin/ablation_checkpoint.rs:
