/root/repo/target/release/deps/quokka_plan-e8756f32d7bd371a.d: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

/root/repo/target/release/deps/libquokka_plan-e8756f32d7bd371a.rlib: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

/root/repo/target/release/deps/libquokka_plan-e8756f32d7bd371a.rmeta: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

crates/plan/src/lib.rs:
crates/plan/src/aggregate.rs:
crates/plan/src/catalog.rs:
crates/plan/src/expr.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
crates/plan/src/reference.rs:
crates/plan/src/stage.rs:
