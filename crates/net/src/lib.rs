//! The data plane.
//!
//! In the paper's implementation every worker machine runs an Apache Arrow
//! Flight server; producer tasks push their output slices directly to the
//! flight servers of all downstream consumer channels (§IV-A). This crate
//! reproduces that push-based shuffle behind a pluggable transport:
//!
//! * [`flight::FlightServer`] — one worker's inbox of pushed partition
//!   slices, keyed by the consuming channel and the producing task. Killing
//!   a worker drops its inbox (those cached slices are part of what recovery
//!   must reconstruct — Fig. 5's pink boxes).
//! * [`plane::DataPlane`] — the cluster-wide registry of flight servers plus
//!   the network cost model: pushes between different workers are charged to
//!   the network path and to the `shuffle_bytes` metric. Delivery is routed
//!   through a [`transport::Transport`] backend.
//! * [`transport`] — the [`transport::Transport`] trait and the default
//!   in-process backend ([`transport::InprocTransport`]).
//! * [`tcp`] — the socket backend ([`tcp::TcpTransport`]): length-prefixed
//!   frames encoded into pooled byte slabs, one send thread and a bounded
//!   queue per peer (backpressure), a recv loop per connection. Also the
//!   substrate for multi-process workers.
//! * [`slab`] — the reusable byte-slab pool the TCP send path draws from,
//!   so steady-state shuffle traffic allocates nothing per push.

pub mod flight;
pub mod plane;
pub mod slab;
pub mod tcp;
pub mod transport;

pub use flight::{FlightServer, SliceKey};
pub use plane::DataPlane;
pub use slab::SlabPool;
pub use tcp::{DeliverFn, TcpTransport};
pub use transport::{InprocTransport, Transport};
