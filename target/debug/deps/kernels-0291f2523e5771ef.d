/root/repo/target/debug/deps/kernels-0291f2523e5771ef.d: crates/bench/src/bin/kernels.rs

/root/repo/target/debug/deps/kernels-0291f2523e5771ef: crates/bench/src/bin/kernels.rs

crates/bench/src/bin/kernels.rs:
