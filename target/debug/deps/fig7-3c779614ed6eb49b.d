/root/repo/target/debug/deps/fig7-3c779614ed6eb49b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-3c779614ed6eb49b.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
