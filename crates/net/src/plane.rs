//! The cluster-wide data plane: routing pushes between workers.

use crate::flight::FlightServer;
use quokka_batch::Batch;
use quokka_common::ids::{ChannelAddr, PartitionName, WorkerId};
use quokka_common::metrics::MetricsRegistry;
use quokka_common::{QuokkaError, Result};
use quokka_storage::CostModel;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-destination chaos injection state: the next `drops` pushes to a
/// destination fail with a transient error, and the next `delays` pushes
/// sleep `delay_micros` before delivering.
#[derive(Debug, Default)]
struct InjectedFaults {
    drops: AtomicU32,
    delays: AtomicU32,
    delay_micros: AtomicU64,
}

impl InjectedFaults {
    fn take(counter: &AtomicU32) -> bool {
        counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok()
    }
}

/// Registry of every worker's flight server plus the network cost model.
#[derive(Debug)]
pub struct DataPlane {
    servers: Vec<Arc<FlightServer>>,
    faults: Vec<InjectedFaults>,
    cost: CostModel,
    metrics: Arc<MetricsRegistry>,
}

impl DataPlane {
    /// Create a data plane for `workers` workers.
    pub fn new(workers: u32, cost: CostModel, metrics: Arc<MetricsRegistry>) -> Self {
        DataPlane {
            servers: (0..workers).map(|w| Arc::new(FlightServer::new(w))).collect(),
            faults: (0..workers).map(|_| InjectedFaults::default()).collect(),
            cost,
            metrics,
        }
    }

    /// Chaos injection: make the next `count` pushes towards `destination`
    /// fail with a retryable [`QuokkaError::Transient`] error.
    pub fn inject_drop_pushes(&self, destination: WorkerId, count: u32) {
        if let Some(f) = self.faults.get(destination as usize) {
            f.drops.fetch_add(count, Ordering::SeqCst);
        }
    }

    /// Chaos injection: delay the next `count` pushes towards `destination`
    /// by `delay` before delivering them.
    pub fn inject_delay_pushes(&self, destination: WorkerId, count: u32, delay: Duration) {
        if let Some(f) = self.faults.get(destination as usize) {
            f.delay_micros.store(delay.as_micros() as u64, Ordering::SeqCst);
            f.delays.fetch_add(count, Ordering::SeqCst);
        }
    }

    pub fn num_workers(&self) -> u32 {
        self.servers.len() as u32
    }

    /// The flight server of one worker.
    pub fn server(&self, worker: WorkerId) -> Result<&Arc<FlightServer>> {
        self.servers
            .get(worker as usize)
            .ok_or_else(|| QuokkaError::NotFound(format!("worker {worker}")))
    }

    /// Push a slice from `source` worker to the worker hosting the consumer
    /// channel. Cross-worker pushes are charged to the network cost model
    /// and counted as shuffle bytes; local pushes are free, like the paper's
    /// same-machine flight transfers.
    pub fn push(
        &self,
        source: WorkerId,
        destination: WorkerId,
        consumer: ChannelAddr,
        producer: PartitionName,
        batches: Vec<Batch>,
    ) -> Result<()> {
        let server = self.server(destination)?;
        if server.is_failed() {
            return Err(QuokkaError::WorkerFailed(destination));
        }
        let faults = &self.faults[destination as usize];
        if InjectedFaults::take(&faults.delays) {
            std::thread::sleep(Duration::from_micros(faults.delay_micros.load(Ordering::SeqCst)));
        }
        if InjectedFaults::take(&faults.drops) {
            return Err(QuokkaError::Transient(format!(
                "injected push drop towards worker {destination}"
            )));
        }
        if source != destination {
            let bytes: u64 = batches.iter().map(|b| b.byte_size() as u64).sum();
            self.cost.charge_network(bytes);
            self.metrics.add_shuffle_bytes(bytes);
            self.metrics.add_shuffle_edge(producer.stage, consumer.stage, bytes);
        }
        server.push(consumer, producer, batches)
    }

    /// Kill a worker: its flight server rejects all traffic and loses its
    /// inbox.
    pub fn fail_worker(&self, worker: WorkerId) -> Result<()> {
        self.server(worker)?.fail();
        Ok(())
    }

    /// Whether a worker's flight server is still alive.
    pub fn is_worker_alive(&self, worker: WorkerId) -> bool {
        self.server(worker).map(|s| !s.is_failed()).unwrap_or(false)
    }

    /// Workers whose flight servers are still alive.
    pub fn live_workers(&self) -> Vec<WorkerId> {
        self.servers.iter().filter(|s| !s.is_failed()).map(|s| s.worker()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{Column, DataType, Schema};
    use quokka_common::ids::TaskName;

    fn plane() -> DataPlane {
        DataPlane::new(3, CostModel::free(), MetricsRegistry::new())
    }

    fn batch() -> Batch {
        Batch::try_new(
            Schema::from_pairs(&[("x", DataType::Int64)]),
            vec![Column::Int64(vec![1, 2, 3])],
        )
        .unwrap()
    }

    #[test]
    fn push_routes_to_destination_server() {
        let p = plane();
        let consumer = ChannelAddr::new(1, 2);
        let producer = TaskName::new(0, 0, 0);
        p.push(0, 2, consumer, producer, vec![batch()]).unwrap();
        assert!(p.server(2).unwrap().has_slice(consumer, producer));
        assert!(!p.server(0).unwrap().has_slice(consumer, producer));
        assert!(p.server(9).is_err());
    }

    #[test]
    fn cross_worker_pushes_count_as_shuffle_bytes() {
        let metrics = MetricsRegistry::new();
        let p = DataPlane::new(2, CostModel::free(), Arc::clone(&metrics));
        let consumer = ChannelAddr::new(1, 0);
        p.push(0, 0, consumer, TaskName::new(0, 0, 0), vec![batch()]).unwrap();
        let local_only = metrics.snapshot(std::time::Duration::ZERO).shuffle_bytes;
        assert_eq!(local_only, 0, "local pushes are not shuffled over the network");
        p.push(0, 1, consumer, TaskName::new(0, 0, 1), vec![batch()]).unwrap();
        let after = metrics.snapshot(std::time::Duration::ZERO).shuffle_bytes;
        assert_eq!(after, batch().byte_size() as u64);
    }

    #[test]
    fn injected_drops_and_delays_are_consumed_then_clear() {
        let p = plane();
        let consumer = ChannelAddr::new(1, 0);
        p.inject_drop_pushes(2, 2);
        for _ in 0..2 {
            let err = p.push(0, 2, consumer, TaskName::new(0, 0, 0), vec![batch()]);
            assert!(matches!(err, Err(QuokkaError::Transient(_))));
            assert!(err.unwrap_err().is_retryable());
        }
        // Budget consumed: pushes flow again, and other destinations were
        // never affected.
        p.push(0, 2, consumer, TaskName::new(0, 0, 0), vec![batch()]).unwrap();
        p.push(0, 1, consumer, TaskName::new(0, 0, 1), vec![batch()]).unwrap();

        p.inject_delay_pushes(1, 1, Duration::from_micros(50));
        let start = std::time::Instant::now();
        p.push(0, 1, consumer, TaskName::new(0, 0, 2), vec![batch()]).unwrap();
        assert!(start.elapsed() >= Duration::from_micros(50));
    }

    #[test]
    fn failed_worker_rejects_pushes_and_leaves_cluster() {
        let p = plane();
        assert_eq!(p.live_workers(), vec![0, 1, 2]);
        p.fail_worker(1).unwrap();
        assert!(!p.is_worker_alive(1));
        assert!(p.is_worker_alive(0));
        assert_eq!(p.live_workers(), vec![0, 2]);
        let err = p.push(0, 1, ChannelAddr::new(1, 0), TaskName::new(0, 0, 0), vec![]);
        assert!(matches!(err, Err(QuokkaError::WorkerFailed(1))));
        assert_eq!(p.num_workers(), 3);
    }
}
