//! End-to-end tests for the SQL frontend through the session facade:
//! SQL text → parse → bind → logical plan → distributed execution on the
//! simulated cluster, verified against the reference executor and against
//! the hand-built TPC-H plans.

use quokka::{same_result, QuokkaSession, SqlError};

/// A small TPC-H session; each test generates its own (SF 0.002 is cheap).
fn tpch_session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).unwrap()
}

#[test]
fn sql_tpch_queries_run_distributed_and_match_hand_built_plans() {
    let session = tpch_session();
    // Aggregation, multi-join, and the new decorrelated shapes: EXISTS →
    // semi (Q4), LEFT JOIN + NOT LIKE (Q13), correlated scalar (Q17), and
    // the derived-table self-join pipeline (Q21). The full 22-query parity
    // sweep runs on the reference executor in quokka-tpch's unit tests and
    // in `all_22_sql_queries_parse_bind_optimize_and_match_reference`.
    for q in [1, 6, 3, 4, 13, 17, 21] {
        let sql = quokka::tpch::queries::sql::sql_text(q).unwrap();
        let handle = session.sql(sql).unwrap();
        let outcome = handle.collect().unwrap_or_else(|e| panic!("Q{q} failed: {e}"));
        let hand = session.run_reference(&quokka::tpch::query(q).unwrap()).unwrap();
        assert!(
            same_result(&outcome.batch, &hand),
            "Q{q}: distributed SQL result diverges from the hand-built plan"
        );
        assert!(outcome.metrics.tasks_executed > 0);
    }
}

/// The CI gate for the 22/22 SQL surface: every TPC-H query parses, binds,
/// optimizes (decorrelation included — no subquery node survives), and
/// matches its hand-built `PlanBuilder` twin on the reference executor,
/// both before and after optimization.
#[test]
fn all_22_sql_queries_parse_bind_optimize_and_match_reference() {
    let session = tpch_session();
    assert_eq!(quokka::tpch::queries::sql::SQL_QUERIES.len(), 22);
    for q in quokka::tpch::queries::sql::SQL_QUERIES {
        let sql = quokka::tpch::queries::sql::sql_text(q).unwrap();
        let handle = session.sql(sql).unwrap_or_else(|e| panic!("Q{q} failed to plan: {e}"));
        let optimized = session
            .optimize(handle.plan())
            .unwrap_or_else(|e| panic!("Q{q} failed to optimize: {e}"));
        assert!(
            !quokka::plan::optimizer::contains_subqueries(&optimized),
            "Q{q}: a subquery expression survived optimization"
        );
        let hand = session.run_reference(&quokka::tpch::query(q).unwrap()).unwrap();
        let bound = handle
            .collect_reference()
            .unwrap_or_else(|e| panic!("Q{q} failed on the reference executor: {e}"));
        assert!(same_result(&bound, &hand), "Q{q}: bound SQL plan diverges from the hand plan");
        let optimized_result = session.run_reference(&optimized).unwrap();
        assert!(
            same_result(&optimized_result, &hand),
            "Q{q}: optimized SQL plan diverges from the hand plan"
        );
    }
}

/// The newly decorrelated queries also recover from injected worker
/// failures (the satellite fault-injection requirement: Q4, Q21, Q22).
#[test]
fn decorrelated_sql_queries_survive_fault_injection() {
    use quokka::{EngineConfig, FailureSpec};

    let session = tpch_session();
    for q in [4usize, 21, 22] {
        let handle = session.sql(quokka::tpch::queries::sql::sql_text(q).unwrap()).unwrap();
        let expected = handle.collect_reference().unwrap();
        let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));
        let outcome = handle
            .collect_with(&config)
            .unwrap_or_else(|e| panic!("Q{q} failed under fault injection: {e}"));
        assert!(
            same_result(&outcome.batch, &expected),
            "Q{q}: result diverged after worker failure"
        );
        assert_eq!(outcome.metrics.failures, 1, "Q{q}: the failure must have been injected");
    }
}

/// LEFT JOIN preserves left rows with type-default fill, and an ON
/// predicate on the joined table filters before the join (spec Q13 shape).
#[test]
fn left_join_runs_distributed_with_on_filters() {
    let session = tpch_session();
    let handle = session
        .sql(
            "SELECT c_custkey, sum(CASE WHEN o_orderkey > 0 THEN 1 ELSE 0 END) AS n \
             FROM customer LEFT JOIN orders \
               ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%' \
             GROUP BY c_custkey ORDER BY n DESC, c_custkey LIMIT 5",
        )
        .unwrap();
    let reference = handle.collect_reference().unwrap();
    let distributed = handle.collect().unwrap();
    assert!(same_result(&reference, &distributed.batch));
    assert_eq!(reference.num_rows(), 5);
}

#[test]
fn query_handle_exposes_plan_and_reference_execution() {
    let session = tpch_session();
    let handle = session
        .sql(
            "SELECT l_shipmode, count(*) AS n FROM lineitem \
             GROUP BY l_shipmode ORDER BY l_shipmode",
        )
        .unwrap();
    assert!(handle.explain().contains("Aggregate"));
    assert_eq!(handle.plan().schema().unwrap().column_names(), vec!["l_shipmode", "n"]);
    let reference = handle.collect_reference().unwrap();
    let distributed = handle.collect().unwrap();
    assert!(same_result(&reference, &distributed.batch));
    assert!(reference.num_rows() > 0);
}

#[test]
fn malformed_sql_returns_positioned_errors_not_panics() {
    let session = tpch_session();
    // (sql, expected substring) — parse and bind failures, all positioned.
    for (sql, needle) in [
        ("SELEC l_orderkey FROM lineitem", "expected SELECT"),
        ("SELECT l_orderkey FROM", "expected a table name"),
        ("SELECT l_orderkey FROM lineitem WHERE", "expected an expression"),
        ("SELECT l_orderkey FROM lineitems", "did you mean 'lineitem'"),
        ("SELECT l_orderkeyy FROM lineitem", "did you mean 'l_orderkey'"),
        ("SELECT l_orderkey FROM lineitem WHERE l_shipdate > 'nope'", "not a valid date"),
        ("SELECT sum(l_comment) AS s FROM lineitem", "numeric"),
        ("SELECT l_orderkey FROM lineitem ORDER BY missing_col", "not in the output"),
        ("SELECT * FROM lineitem RIGHT JOIN orders ON a = b", "RIGHT and FULL"),
        ("SELECT (SELECT max(o_totalprice) FROM orders) AS m FROM orders", "WHERE and HAVING"),
        (
            "SELECT o_orderkey FROM orders GROUP BY (SELECT max(o_orderkey) FROM orders)",
            "WHERE and HAVING",
        ),
        (
            "SELECT o_orderkey FROM orders WHERE o_totalprice > (SELECT o_totalprice FROM orders)",
            "must compute an aggregate",
        ),
        ("SELECT o_orderkey FROM orders WHERE EXISTS (l_quantity > 5)", "EXISTS requires"),
        ("SELECT o_orderkey FROM (SELECT o_orderkey FROM orders)", "requires an alias"),
    ] {
        let err = session.sql(sql).expect_err(sql);
        let message = err.to_string();
        assert!(message.contains(needle), "{sql}: {message}");
        assert!(message.contains("line "), "{sql}: no position in: {message}");
    }
}

#[test]
fn sql_error_type_carries_structured_position() {
    let session = tpch_session();
    let err = quokka::sql::plan_query("SELECT nope FROM lineitem", session.catalog())
        .expect_err("should not bind");
    assert_eq!(err.kind, quokka::sql::SqlErrorKind::Bind);
    assert_eq!((err.pos.line, err.pos.column), (1, 8));
    let _: SqlError = err; // the structured type is part of the facade API
}

#[test]
fn select_distinct_deduplicates_on_the_cluster() {
    let session = tpch_session();
    let handle =
        session.sql("SELECT DISTINCT l_shipmode FROM lineitem ORDER BY l_shipmode").unwrap();
    let distributed = handle.collect().unwrap();
    let reference = handle.collect_reference().unwrap();
    assert!(same_result(&distributed.batch, &reference));
    // TPC-H has exactly 7 ship modes; DISTINCT must collapse to them.
    assert_eq!(reference.num_rows(), 7);
}

#[test]
fn comma_from_lists_match_their_join_twins() {
    let session = tpch_session();
    let comma = session
        .sql(
            "SELECT n_name, count(*) AS suppliers FROM nation, supplier \
             WHERE n_nationkey = s_nationkey GROUP BY n_name ORDER BY n_name",
        )
        .unwrap();
    let joined = session
        .sql(
            "SELECT n_name, count(*) AS suppliers FROM nation \
             JOIN supplier ON n_nationkey = s_nationkey GROUP BY n_name ORDER BY n_name",
        )
        .unwrap();
    let comma_result = comma.collect().unwrap();
    let join_result = joined.collect().unwrap();
    assert!(same_result(&comma_result.batch, &join_result.batch));
    assert!(comma_result.batch.num_rows() > 0);
    // The optimizer's filter-to-join rule must also make the comma form run
    // as cheaply: with optimization disabled the cross join shuffles the
    // cartesian product through a single channel.
    let naive = comma.collect_with(&quokka::EngineConfig::quokka(3).with_optimize(false)).unwrap();
    assert!(same_result(&naive.batch, &comma_result.batch));
}

#[test]
fn explain_prints_plans_instead_of_executing() {
    let session = tpch_session();
    // Session-level explain: before and after optimization.
    let text = session
        .explain(
            "SELECT l_orderkey, o_orderdate FROM orders \
             JOIN lineitem ON o_orderkey = l_orderkey WHERE l_quantity > 30",
        )
        .unwrap();
    assert!(text.contains("== Logical plan =="), "{text}");
    assert!(text.contains("== Optimized plan =="), "{text}");
    // The optimized rendering must show the narrowed lineitem scan.
    let optimized_section = text.split("== Optimized plan ==").nth(1).unwrap();
    assert!(
        !optimized_section.contains("l_comment"),
        "projection pruning should drop l_comment from the scan:\n{text}"
    );

    // An EXPLAIN-prefixed statement collects as a plan-text batch.
    let handle = session.sql("EXPLAIN SELECT count(*) AS n FROM orders").unwrap();
    assert!(handle.is_explain());
    let outcome = handle.collect().unwrap();
    assert_eq!(outcome.batch.schema().column_names(), vec!["plan"]);
    assert!(outcome.batch.num_rows() > 2);
    assert_eq!(outcome.metrics.tasks_executed, 0, "EXPLAIN must not execute");
}

#[test]
fn sql_runs_under_fault_injection() {
    use quokka::{EngineConfig, FailureSpec};

    let session = tpch_session();
    let handle = session.sql(quokka::tpch::queries::sql::sql_text(6).unwrap()).unwrap();
    let expected = handle.collect_reference().unwrap();
    // Kill a worker mid-query; recovery must still produce the right rows.
    let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));
    let outcome = handle.collect_with(&config).unwrap();
    assert!(same_result(&outcome.batch, &expected));
}
