/root/repo/target/debug/deps/fig11-5dce4c32a17219e0.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-5dce4c32a17219e0: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
