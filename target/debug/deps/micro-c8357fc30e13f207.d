/root/repo/target/debug/deps/micro-c8357fc30e13f207.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/libmicro-c8357fc30e13f207.rmeta: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
