/root/repo/target/debug/deps/serde_derive-3b4a64a32440c919.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-3b4a64a32440c919: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
