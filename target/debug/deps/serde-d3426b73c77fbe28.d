/root/repo/target/debug/deps/serde-d3426b73c77fbe28.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d3426b73c77fbe28.rlib: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d3426b73c77fbe28.rmeta: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
