//! Storage substrates for the Quokka engine.
//!
//! The paper distinguishes three data paths with very different costs
//! (§II-B2):
//!
//! * **Upstream backup** to instance-attached NVMe: cheap, but the contents
//!   are lost when the worker fails. Spark and Quokka use this.
//! * **Spooling** to a durable service (HDFS/S3): survives worker failures
//!   but consumes precious network bandwidth during normal execution. Trino
//!   uses this; it is the main source of the overhead measured in Fig. 9.
//! * **Checkpointing** operator state to the durable service: even more
//!   expensive for query operators whose state grows (hash joins).
//!
//! This crate models those paths:
//!
//! * [`cost::CostModel`] converts byte counts into (scaled) wall-clock
//!   delays according to [`CostModelConfig`](quokka_common::CostModelConfig).
//! * [`backup::LocalBackupStore`] is one worker's local disk. Calling
//!   [`fail`](backup::LocalBackupStore::fail) drops everything, exactly like
//!   losing the instance.
//! * [`durable::DurableObjectStore`] is the S3/HDFS stand-in shared by the
//!   whole cluster; its contents survive worker failures.

pub mod backup;
pub mod cost;
pub mod durable;

pub use backup::LocalBackupStore;
pub use cost::CostModel;
pub use durable::{DurableObjectStore, ObjectStore};
