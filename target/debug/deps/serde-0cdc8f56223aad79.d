/root/repo/target/debug/deps/serde-0cdc8f56223aad79.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-0cdc8f56223aad79: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
