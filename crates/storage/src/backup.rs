//! Per-worker local-disk upstream backup.

use crate::cost::CostModel;
use bytes::Bytes;
use parking_lot::RwLock;
use quokka_common::ids::{ChannelAddr, PartitionName, WorkerId};
use quokka_common::metrics::MetricsRegistry;
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Key of one backed-up slice: the producer task plus the downstream channel
/// the slice is destined for.
pub type BackupKey = (PartitionName, ChannelAddr);

/// One worker's instance-attached disk used for upstream backup.
///
/// A task's output is hash-partitioned into one slice per downstream
/// channel; every slice is written here before the task's lineage commits
/// (Algorithm 1: "Store results locally on disk"). The store is *unreliable*:
/// [`fail`](LocalBackupStore::fail) wipes it, modelling the loss of the
/// instance and its NVMe drive.
#[derive(Debug)]
pub struct LocalBackupStore {
    worker: WorkerId,
    slices: RwLock<BTreeMap<BackupKey, Bytes>>,
    failed: AtomicBool,
    cost: CostModel,
    metrics: Arc<MetricsRegistry>,
}

impl LocalBackupStore {
    pub fn new(worker: WorkerId, cost: CostModel, metrics: Arc<MetricsRegistry>) -> Self {
        LocalBackupStore {
            worker,
            slices: RwLock::new(BTreeMap::new()),
            failed: AtomicBool::new(false),
            cost,
            metrics,
        }
    }

    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// Write one slice. Charges the local-disk cost model and fails if the
    /// worker has already been killed.
    pub fn put(
        &self,
        partition: PartitionName,
        consumer: ChannelAddr,
        payload: Bytes,
    ) -> Result<()> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(QuokkaError::WorkerFailed(self.worker));
        }
        self.cost.charge_local_disk(payload.len() as u64);
        self.metrics.add_backup_bytes(payload.len() as u64);
        self.slices.write().insert((partition, consumer), payload);
        Ok(())
    }

    /// Read one slice back (used to replay a partition during recovery).
    pub fn get(&self, partition: PartitionName, consumer: ChannelAddr) -> Result<Bytes> {
        if self.failed.load(Ordering::SeqCst) {
            return Err(QuokkaError::WorkerFailed(self.worker));
        }
        self.slices
            .read()
            .get(&(partition, consumer))
            .cloned()
            .ok_or_else(|| QuokkaError::NotFound(format!("backup slice {partition}->{consumer}")))
    }

    /// Whether a slice exists (and the worker is alive).
    pub fn contains(&self, partition: PartitionName, consumer: ChannelAddr) -> bool {
        !self.failed.load(Ordering::SeqCst)
            && self.slices.read().contains_key(&(partition, consumer))
    }

    /// All slices currently held for a given producer partition.
    pub fn slices_of(&self, partition: PartitionName) -> Vec<(ChannelAddr, Bytes)> {
        if self.failed.load(Ordering::SeqCst) {
            return Vec::new();
        }
        self.slices
            .read()
            .iter()
            .filter(|((p, _), _)| *p == partition)
            .map(|((_, c), v)| (*c, v.clone()))
            .collect()
    }

    /// Number of slices held.
    pub fn len(&self) -> usize {
        self.slices.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.slices.read().is_empty()
    }

    /// Total bytes held.
    pub fn byte_size(&self) -> u64 {
        self.slices.read().values().map(|v| v.len() as u64).sum()
    }

    /// Simulate the loss of this worker: every backed-up slice disappears
    /// and all future operations fail.
    pub fn fail(&self) {
        self.failed.store(true, Ordering::SeqCst);
        self.slices.write().clear();
    }

    /// Chaos injection: silently wipe every backed-up slice while the worker
    /// itself stays alive. Subsequent replay reads hit `NotFound`, forcing
    /// the lost-partition repair path (deeper lineage replay) instead of a
    /// simple backup re-push.
    pub fn lose_contents(&self) {
        self.slices.write().clear();
    }

    /// Whether the worker holding this store has been killed.
    pub fn is_failed(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_common::ids::TaskName;

    fn store() -> LocalBackupStore {
        LocalBackupStore::new(0, CostModel::free(), MetricsRegistry::new())
    }

    #[test]
    fn put_get_contains() {
        let s = store();
        let part = TaskName::new(0, 1, 2);
        let consumer = ChannelAddr::new(1, 0);
        assert!(!s.contains(part, consumer));
        s.put(part, consumer, Bytes::from_static(b"abc")).unwrap();
        assert!(s.contains(part, consumer));
        assert_eq!(s.get(part, consumer).unwrap(), Bytes::from_static(b"abc"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.byte_size(), 3);
        assert!(s.get(part, ChannelAddr::new(1, 1)).is_err());
    }

    #[test]
    fn slices_of_returns_all_consumers() {
        let s = store();
        let part = TaskName::new(0, 0, 0);
        s.put(part, ChannelAddr::new(1, 0), Bytes::from_static(b"a")).unwrap();
        s.put(part, ChannelAddr::new(1, 1), Bytes::from_static(b"b")).unwrap();
        s.put(TaskName::new(0, 0, 1), ChannelAddr::new(1, 0), Bytes::from_static(b"c")).unwrap();
        let slices = s.slices_of(part);
        assert_eq!(slices.len(), 2);
    }

    #[test]
    fn failure_wipes_contents_and_rejects_operations() {
        let s = store();
        let part = TaskName::new(0, 1, 2);
        let consumer = ChannelAddr::new(1, 0);
        s.put(part, consumer, Bytes::from_static(b"abc")).unwrap();
        s.fail();
        assert!(s.is_failed());
        assert!(s.is_empty());
        assert!(!s.contains(part, consumer));
        assert!(matches!(s.get(part, consumer), Err(QuokkaError::WorkerFailed(0))));
        assert!(matches!(
            s.put(part, consumer, Bytes::from_static(b"x")),
            Err(QuokkaError::WorkerFailed(0))
        ));
        assert!(s.slices_of(part).is_empty());
    }

    #[test]
    fn losing_contents_keeps_the_store_alive() {
        let s = store();
        let part = TaskName::new(0, 1, 2);
        let consumer = ChannelAddr::new(1, 0);
        s.put(part, consumer, Bytes::from_static(b"abc")).unwrap();
        s.lose_contents();
        assert!(!s.is_failed());
        assert!(s.is_empty());
        // Reads fail with NotFound (retry/repair), not WorkerFailed.
        assert!(matches!(s.get(part, consumer), Err(QuokkaError::NotFound(_))));
        // The store still accepts new writes.
        s.put(part, consumer, Bytes::from_static(b"xyz")).unwrap();
        assert_eq!(s.get(part, consumer).unwrap(), Bytes::from_static(b"xyz"));
    }

    #[test]
    fn metrics_count_backup_bytes() {
        let metrics = MetricsRegistry::new();
        let s = LocalBackupStore::new(3, CostModel::free(), Arc::clone(&metrics));
        s.put(TaskName::new(0, 0, 0), ChannelAddr::new(1, 0), Bytes::from(vec![0u8; 100])).unwrap();
        s.put(TaskName::new(0, 0, 1), ChannelAddr::new(1, 0), Bytes::from(vec![0u8; 50])).unwrap();
        let snap = metrics.snapshot(std::time::Duration::ZERO);
        assert_eq!(snap.backup_bytes, 150);
        assert_eq!(s.worker(), 3);
    }
}
