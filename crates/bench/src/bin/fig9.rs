//! Fig. 9: normal-execution fault-tolerance overhead — Trino-like spooling,
//! Quokka spooling, and write-ahead lineage — relative to running with no
//! fault tolerance at all.

use quokka::FaultStrategy;
use quokka_bench::{geomean, print_header, print_row, queries_from_env, workers_from_env, Harness};

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let queries = queries_from_env(&quokka::tpch::REPRESENTATIVE);
    let workers = workers_from_env(&[4, 16]);

    for &w in &workers {
        print_header(
            &format!("Fig. 9 — fault-tolerance overhead on {w} workers (1.0 = no overhead)"),
            &["trino spool", "quokka spool", "write-ahead lineage", "spool MB", "lineage KB"],
        );
        let mut spool_overheads = Vec::new();
        let mut wal_overheads = Vec::new();
        for &q in &queries {
            // Baselines with fault tolerance disabled.
            let trino_base = harness.run(
                "trino-noft",
                q,
                &harness.trino_config(w).with_fault(FaultStrategy::None),
            )?;
            let quokka_base = harness.run(
                "quokka-noft",
                q,
                &harness.quokka_config(w).with_fault(FaultStrategy::None),
            )?;
            // With their respective fault-tolerance mechanisms on.
            let trino_ft = harness.run("trino-ft", q, &harness.trino_config(w))?;
            let quokka_spool = harness.run(
                "quokka-spool",
                q,
                &harness.quokka_config(w).with_fault(FaultStrategy::Spooling),
            )?;
            let quokka_wal = harness.run("quokka-wal", q, &harness.quokka_config(w))?;

            let trino_overhead = trino_ft.seconds / trino_base.seconds.max(1e-9);
            let spool_overhead = quokka_spool.seconds / quokka_base.seconds.max(1e-9);
            let wal_overhead = quokka_wal.seconds / quokka_base.seconds.max(1e-9);
            spool_overheads.push(spool_overhead);
            wal_overheads.push(wal_overhead);
            print_row(
                q,
                &[
                    trino_overhead,
                    spool_overhead,
                    wal_overhead,
                    quokka_spool.metrics.durable_bytes as f64 / 1e6,
                    quokka_wal.metrics.lineage_bytes as f64 / 1e3,
                ],
            );
        }
        println!(
            "paper shape: spooling costs 1.5-2.7x, write-ahead lineage 1.06-1.15x; measured geomeans {:.2}x vs {:.2}x",
            geomean(&spool_overheads),
            geomean(&wal_overheads)
        );
    }
    Ok(())
}
