//! TPC-H table schemas.
//!
//! Decimal columns are represented as `Float64` and dates as days since the
//! Unix epoch (the engine's `Date` type); fixed-width `CHAR(n)` columns are
//! plain UTF-8 strings.

use quokka_batch::{DataType, Schema};

/// Schema of the `region` table (5 rows).
pub fn region() -> Schema {
    Schema::from_pairs(&[
        ("r_regionkey", DataType::Int64),
        ("r_name", DataType::Utf8),
        ("r_comment", DataType::Utf8),
    ])
}

/// Schema of the `nation` table (25 rows).
pub fn nation() -> Schema {
    Schema::from_pairs(&[
        ("n_nationkey", DataType::Int64),
        ("n_name", DataType::Utf8),
        ("n_regionkey", DataType::Int64),
        ("n_comment", DataType::Utf8),
    ])
}

/// Schema of the `supplier` table (SF x 10,000 rows).
pub fn supplier() -> Schema {
    Schema::from_pairs(&[
        ("s_suppkey", DataType::Int64),
        ("s_name", DataType::Utf8),
        ("s_address", DataType::Utf8),
        ("s_nationkey", DataType::Int64),
        ("s_phone", DataType::Utf8),
        ("s_acctbal", DataType::Float64),
        ("s_comment", DataType::Utf8),
    ])
}

/// Schema of the `customer` table (SF x 150,000 rows).
pub fn customer() -> Schema {
    Schema::from_pairs(&[
        ("c_custkey", DataType::Int64),
        ("c_name", DataType::Utf8),
        ("c_address", DataType::Utf8),
        ("c_nationkey", DataType::Int64),
        ("c_phone", DataType::Utf8),
        ("c_acctbal", DataType::Float64),
        ("c_mktsegment", DataType::Utf8),
        ("c_comment", DataType::Utf8),
    ])
}

/// Schema of the `part` table (SF x 200,000 rows).
pub fn part() -> Schema {
    Schema::from_pairs(&[
        ("p_partkey", DataType::Int64),
        ("p_name", DataType::Utf8),
        ("p_mfgr", DataType::Utf8),
        ("p_brand", DataType::Utf8),
        ("p_type", DataType::Utf8),
        ("p_size", DataType::Int64),
        ("p_container", DataType::Utf8),
        ("p_retailprice", DataType::Float64),
        ("p_comment", DataType::Utf8),
    ])
}

/// Schema of the `partsupp` table (SF x 800,000 rows).
pub fn partsupp() -> Schema {
    Schema::from_pairs(&[
        ("ps_partkey", DataType::Int64),
        ("ps_suppkey", DataType::Int64),
        ("ps_availqty", DataType::Int64),
        ("ps_supplycost", DataType::Float64),
        ("ps_comment", DataType::Utf8),
    ])
}

/// Schema of the `orders` table (SF x 1,500,000 rows).
pub fn orders() -> Schema {
    Schema::from_pairs(&[
        ("o_orderkey", DataType::Int64),
        ("o_custkey", DataType::Int64),
        ("o_orderstatus", DataType::Utf8),
        ("o_totalprice", DataType::Float64),
        ("o_orderdate", DataType::Date),
        ("o_orderpriority", DataType::Utf8),
        ("o_clerk", DataType::Utf8),
        ("o_shippriority", DataType::Int64),
        ("o_comment", DataType::Utf8),
    ])
}

/// Schema of the `lineitem` table (about SF x 6,000,000 rows).
pub fn lineitem() -> Schema {
    Schema::from_pairs(&[
        ("l_orderkey", DataType::Int64),
        ("l_partkey", DataType::Int64),
        ("l_suppkey", DataType::Int64),
        ("l_linenumber", DataType::Int64),
        ("l_quantity", DataType::Float64),
        ("l_extendedprice", DataType::Float64),
        ("l_discount", DataType::Float64),
        ("l_tax", DataType::Float64),
        ("l_returnflag", DataType::Utf8),
        ("l_linestatus", DataType::Utf8),
        ("l_shipdate", DataType::Date),
        ("l_commitdate", DataType::Date),
        ("l_receiptdate", DataType::Date),
        ("l_shipinstruct", DataType::Utf8),
        ("l_shipmode", DataType::Utf8),
        ("l_comment", DataType::Utf8),
    ])
}

/// Names of every TPC-H table, in generation order.
pub const TABLE_NAMES: [&str; 8] =
    ["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"];

/// Look up a table schema by name.
pub fn table_schema(name: &str) -> Option<Schema> {
    match name {
        "region" => Some(region()),
        "nation" => Some(nation()),
        "supplier" => Some(supplier()),
        "customer" => Some(customer()),
        "part" => Some(part()),
        "partsupp" => Some(partsupp()),
        "orders" => Some(orders()),
        "lineitem" => Some(lineitem()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tables_have_schemas() {
        for name in TABLE_NAMES {
            let schema = table_schema(name).unwrap();
            assert!(!schema.is_empty(), "{name} schema should not be empty");
        }
        assert!(table_schema("not_a_table").is_none());
        assert_eq!(lineitem().len(), 16);
        assert_eq!(orders().len(), 9);
        assert_eq!(part().index_of("p_type").unwrap(), 4);
    }
}
