/root/repo/target/debug/deps/quokka_tpch-0989c1564115b74c.d: crates/tpch/src/lib.rs crates/tpch/src/generator.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01_q11.rs crates/tpch/src/queries/q12_q22.rs crates/tpch/src/schema.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_tpch-0989c1564115b74c.rmeta: crates/tpch/src/lib.rs crates/tpch/src/generator.rs crates/tpch/src/queries/mod.rs crates/tpch/src/queries/q01_q11.rs crates/tpch/src/queries/q12_q22.rs crates/tpch/src/schema.rs Cargo.toml

crates/tpch/src/lib.rs:
crates/tpch/src/generator.rs:
crates/tpch/src/queries/mod.rs:
crates/tpch/src/queries/q01_q11.rs:
crates/tpch/src/queries/q12_q22.rs:
crates/tpch/src/schema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
