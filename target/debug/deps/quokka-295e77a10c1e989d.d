/root/repo/target/debug/deps/quokka-295e77a10c1e989d.d: crates/quokka/src/lib.rs

/root/repo/target/debug/deps/quokka-295e77a10c1e989d: crates/quokka/src/lib.rs

crates/quokka/src/lib.rs:
