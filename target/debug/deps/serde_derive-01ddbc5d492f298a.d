/root/repo/target/debug/deps/serde_derive-01ddbc5d492f298a.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-01ddbc5d492f298a.rmeta: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
