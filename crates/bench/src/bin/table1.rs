//! Table I: fault-tolerance design choices in data processing systems.
//!
//! The rows for Trino, SparkSQL, Kafka Streams, Flink and StreamScope are
//! the paper's qualitative characterisation; the Quokka column (and the
//! strategy rows beneath) are derived from this repository's
//! `FaultStrategy` capability flags, so the table stays in sync with the
//! implementation.

use quokka::FaultStrategy;

fn main() {
    println!("Table I: fault tolerance design choices (paper, qualitative)");
    println!("{:<16}{:>10}{:>18}{:>10}", "system", "spooling", "state checkpoint", "lineage");
    for (system, spool, ckpt, lineage) in [
        ("Trino", true, false, true),
        ("SparkSQL", false, false, true),
        ("Kafka Streams", true, true, true),
        ("Flink", false, true, false),
        ("StreamScope", false, true, true),
        ("Quokka", false, false, true),
    ] {
        println!("{:<16}{:>10}{:>18}{:>10}", system, mark(spool), mark(ckpt), mark(lineage));
    }

    println!("\nStrategies implemented in this repository (capability flags):");
    println!(
        "{:<34}{:>10}{:>18}{:>10}{:>18}",
        "FaultStrategy", "spooling", "state checkpoint", "lineage", "upstream backup"
    );
    for (name, strategy) in [
        ("None (restart)", FaultStrategy::None),
        ("WriteAheadLineage (Quokka)", FaultStrategy::WriteAheadLineage),
        ("Spooling (Trino-like)", FaultStrategy::Spooling),
        ("Checkpointing{interval=8}", FaultStrategy::Checkpointing { interval_tasks: 8 }),
    ] {
        println!(
            "{:<34}{:>10}{:>18}{:>10}{:>18}",
            name,
            mark(strategy.spools()),
            mark(strategy.checkpoints_state()),
            mark(strategy.tracks_lineage()),
            mark(strategy.upstream_backup()),
        );
    }
}

fn mark(yes: bool) -> &'static str {
    if yes {
        "yes"
    } else {
        "no"
    }
}
