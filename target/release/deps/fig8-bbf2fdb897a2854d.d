/root/repo/target/release/deps/fig8-bbf2fdb897a2854d.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-bbf2fdb897a2854d: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
