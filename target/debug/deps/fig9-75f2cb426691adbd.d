/root/repo/target/debug/deps/fig9-75f2cb426691adbd.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/libfig9-75f2cb426691adbd.rmeta: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
