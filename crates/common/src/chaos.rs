//! Deterministic chaos plans: reproducible schedules of injectable faults.
//!
//! [`crate::config::FailureSpec`] describes exactly one fault shape — "kill
//! worker W once a fraction of the input has been consumed". The chaos
//! vocabulary here generalises that into a [`ChaosPlan`]: an ordered set of
//! [`ChaosInjection`]s, each pairing a counter-based [`ChaosTrigger`] with a
//! [`ChaosEvent`]. Triggers fire on *engine counters* (input progress, task
//! commits, recovery tasks) rather than wall-clock time, so a plan injects
//! the same faults at the same logical points on every run — and a failing
//! randomized plan can be reproduced from nothing but its seed.

use crate::config::FailureSpec;
use crate::ids::WorkerId;
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// When an injection fires. All triggers are monotone counters maintained by
/// the engine, so "at" means "the first time the counter reaches the
/// threshold" — never twice, never on a clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChaosTrigger {
    /// Fire once this fraction of the query's source splits has been
    /// consumed (0.0 ..= 1.0). The trigger `FailureSpec` uses.
    Progress(f64),
    /// Fire once the engine has committed this many tasks in total. This is
    /// the "kill at a task-commit boundary" trigger: sweeping the threshold
    /// over `1..=total_tasks` crashes the engine at every boundary.
    TaskCommits(u64),
    /// Fire once this many *recovery* tasks (replays + rewinds) have
    /// executed — i.e. while recovery from an earlier fault is still in
    /// flight. Used to inject a second failure mid-recovery.
    RecoveryTasks(u64),
}

/// What happens when a trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChaosEvent {
    /// Kill a worker: flight server, backup disk and task threads all die.
    /// Exactly what `FailureSpec` injects today.
    KillWorker { worker: WorkerId },
    /// Suppress a worker's heartbeats without killing it. The failure
    /// detector must eventually suspect the worker and reconcile its
    /// channels away — and the query must still answer correctly even
    /// though the "failed" worker is alive and mid-task.
    SuspectWorker { worker: WorkerId },
    /// Wipe a worker's local backup store without killing the worker. The
    /// GCS still believes those partitions are backed up, so a later replay
    /// request fails at read time and recovery must fall back to deeper
    /// lineage replay (rewinding the producer).
    LoseBackups { worker: WorkerId },
    /// Make the next `count` data-plane pushes *to* `destination` fail with
    /// a retryable transport error, exercising the push retry path.
    DropPushes { destination: WorkerId, count: u32 },
    /// Delay the next `count` data-plane pushes *to* `destination` by
    /// `delay` each (a slow network path / transient congestion).
    DelayPushes { destination: WorkerId, count: u32, delay: Duration },
    /// Make the next `count` tasks executed *by* `worker` each take at
    /// least `delay` longer (a straggler node). Stresses the failure
    /// detector's ability to distinguish slow from dead.
    Straggler { worker: WorkerId, count: u32, delay: Duration },
}

impl ChaosEvent {
    /// Short human label used in logs and panic messages.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosEvent::KillWorker { .. } => "kill-worker",
            ChaosEvent::SuspectWorker { .. } => "suspect-worker",
            ChaosEvent::LoseBackups { .. } => "lose-backups",
            ChaosEvent::DropPushes { .. } => "drop-pushes",
            ChaosEvent::DelayPushes { .. } => "delay-pushes",
            ChaosEvent::Straggler { .. } => "straggler",
        }
    }
}

/// One scheduled fault: fire `event` when `at` triggers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosInjection {
    pub at: ChaosTrigger,
    pub event: ChaosEvent,
}

/// A reproducible schedule of faults for one query run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChaosPlan {
    pub injections: Vec<ChaosInjection>,
}

impl ChaosPlan {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// Builder: add one injection.
    pub fn with(mut self, at: ChaosTrigger, event: ChaosEvent) -> Self {
        self.injections.push(ChaosInjection { at, event });
        self
    }

    /// Kill `worker` once `commits` tasks have committed — the sweep
    /// primitive ("crash at the k-th task-commit boundary").
    pub fn kill_at_commits(worker: WorkerId, commits: u64) -> Self {
        Self::new().with(ChaosTrigger::TaskCommits(commits), ChaosEvent::KillWorker { worker })
    }

    /// Kill `worker` at an input-progress fraction (the `FailureSpec` shape).
    pub fn kill_at_progress(worker: WorkerId, fraction: f64) -> Self {
        Self::new().with(ChaosTrigger::Progress(fraction), ChaosEvent::KillWorker { worker })
    }

    /// Fold legacy `FailureSpec`s into chaos injections so the engine has a
    /// single injection path.
    pub fn from_failures(failures: &[FailureSpec]) -> Self {
        let mut plan = Self::new();
        for f in failures {
            plan = plan.with(
                ChaosTrigger::Progress(f.at_progress),
                ChaosEvent::KillWorker { worker: f.worker },
            );
        }
        plan
    }

    /// Whether any injection kills a worker (as opposed to only degrading
    /// the run). Kill events are the ones that demand a recovery strategy.
    pub fn kills_workers(&self) -> bool {
        self.injections.iter().any(|i| matches!(i.event, ChaosEvent::KillWorker { .. }))
    }

    /// A randomized-but-reproducible plan: the same `(seed, workers)` pair
    /// always yields the same plan, so a failing run is reproduced from its
    /// printed seed alone.
    ///
    /// The generated plan is always *survivable* for a strategy with
    /// intra-query recovery: at most `workers - 1` distinct workers are
    /// killed (at least one survivor keeps the query schedulable), delays
    /// are bounded to tens of milliseconds, and drop counts are small enough
    /// that bounded retries clear them.
    pub fn randomized(seed: u64, workers: u32) -> Self {
        assert!(workers >= 2, "randomized chaos needs at least 2 workers");
        let mut rng = DetRng::derive(seed, 0xC4A0_5EED);
        let mut plan = Self::new();
        let events = 1 + rng.next_below(3); // 1..=3 injections
        let mut kills: Vec<WorkerId> = Vec::new();
        for _ in 0..events {
            let worker = rng.next_below(workers as u64) as WorkerId;
            let trigger = match rng.next_below(3) {
                0 => ChaosTrigger::Progress(rng.range_f64(0.1, 0.9)),
                1 => ChaosTrigger::TaskCommits(1 + rng.next_below(64)),
                _ => ChaosTrigger::RecoveryTasks(1 + rng.next_below(4)),
            };
            let event = match rng.next_below(7) {
                0 | 1 if (kills.len() as u32) < workers - 1 && !kills.contains(&worker) => {
                    kills.push(worker);
                    ChaosEvent::KillWorker { worker }
                }
                2 => ChaosEvent::SuspectWorker { worker },
                3 => ChaosEvent::LoseBackups { worker },
                4 => ChaosEvent::DropPushes {
                    destination: worker,
                    count: 1 + rng.next_below(8) as u32,
                },
                5 => ChaosEvent::DelayPushes {
                    destination: worker,
                    count: 1 + rng.next_below(8) as u32,
                    delay: Duration::from_millis(1 + rng.next_below(10)),
                },
                // 6, or a kill roll whose guard failed (dead / too many kills).
                _ => ChaosEvent::Straggler {
                    worker,
                    count: 1 + rng.next_below(6) as u32,
                    delay: Duration::from_millis(1 + rng.next_below(15)),
                },
            };
            plan = plan.with(trigger, event);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_failures_preserves_order_and_shape() {
        let plan = ChaosPlan::from_failures(&[FailureSpec::halfway(1), FailureSpec::new(2, 0.8)]);
        assert_eq!(plan.injections.len(), 2);
        assert!(plan.kills_workers());
        assert_eq!(
            plan.injections[0],
            ChaosInjection {
                at: ChaosTrigger::Progress(0.5),
                event: ChaosEvent::KillWorker { worker: 1 },
            }
        );
    }

    #[test]
    fn randomized_plans_are_reproducible_from_the_seed() {
        for seed in 0..64 {
            let a = ChaosPlan::randomized(seed, 4);
            let b = ChaosPlan::randomized(seed, 4);
            assert_eq!(a, b, "seed {seed} must reproduce the same plan");
            assert!(!a.is_empty());
            assert!(a.injections.len() <= 3);
        }
        assert_ne!(ChaosPlan::randomized(1, 4), ChaosPlan::randomized(2, 4));
    }

    #[test]
    fn randomized_plans_leave_a_survivor() {
        for seed in 0..256 {
            let plan = ChaosPlan::randomized(seed, 3);
            let killed: Vec<_> = plan
                .injections
                .iter()
                .filter_map(|i| match i.event {
                    ChaosEvent::KillWorker { worker } => Some(worker),
                    _ => None,
                })
                .collect();
            assert!(killed.len() <= 2, "seed {seed} kills too many workers: {killed:?}");
            let mut unique = killed.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), killed.len(), "seed {seed} kills a worker twice");
        }
    }

    #[test]
    fn builders_compose() {
        let plan = ChaosPlan::kill_at_commits(0, 7)
            .with(ChaosTrigger::RecoveryTasks(2), ChaosEvent::KillWorker { worker: 1 })
            .with(ChaosTrigger::Progress(0.3), ChaosEvent::DropPushes { destination: 2, count: 4 });
        assert_eq!(plan.injections.len(), 3);
        assert_eq!(plan.injections[0].at, ChaosTrigger::TaskCommits(7));
        assert_eq!(plan.injections[1].event.label(), "kill-worker");
        assert_eq!(plan.injections[2].event.label(), "drop-pushes");
    }
}
