//! Property tests for the compressed column encodings.
//!
//! Each encoding (dictionary strings, bit-packed integers/dates, XOR floats)
//! must survive three independent journeys without changing logical content:
//! in-memory encode -> decode, the transport wire format, and the durable
//! backup codec. Edge shapes — empty columns, single values, all-equal
//! columns — are covered both by dedicated tests and by the random
//! generators (which are biased towards runs and repeats so the encodings
//! actually engage).

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use quokka::batch::codec::{decode_partition, encode_batch, encode_partition};
use quokka::batch::wire::{decode_batch as wire_decode, encode_batch_into};
use quokka::batch::{
    Batch, Column, DictColumn, Field, PackedIntColumn, PackedLogical, Schema, XorFloatColumn,
};

/// Wrap one column into a single-column batch.
fn batch_of(name: &str, col: Column) -> Batch {
    let field = Field::new(name, col.data_type());
    Batch::try_new(Schema::new(vec![field]), vec![col]).unwrap()
}

/// Assert one column survives the wire format and the durable codec with
/// its logical content intact, and that re-encoding the wire decode is
/// byte-exact (replayed partitions must be indistinguishable from the
/// originals).
fn assert_roundtrips(col: &Column) {
    let plain = col.decoded().into_owned();
    assert_eq!(col, &plain, "decode must preserve logical content");

    let b = batch_of("c", col.clone());
    let mut frame = Vec::new();
    encode_batch_into(&b, &mut frame);
    let from_wire = wire_decode(&frame).unwrap();
    assert_eq!(from_wire, b, "wire round-trip changed the column");
    let mut again = Vec::new();
    encode_batch_into(&from_wire, &mut again);
    assert_eq!(frame, again, "wire re-encode must be byte-exact");

    let payload = encode_partition(std::slice::from_ref(&b));
    let from_codec = decode_partition(&payload).unwrap();
    assert_eq!(from_codec.len(), 1);
    assert_eq!(from_codec[0], b, "codec round-trip changed the column");
    assert_eq!(
        encode_batch(&from_codec[0]),
        encode_batch(&b),
        "codec re-encode must be byte-exact"
    );
}

fn random_dict(rng: &mut TestRng, rows: usize) -> Column {
    const POOL: [&str; 7] =
        ["", "TRUCK", "AIR", "RAIL", "unicode ✓ß", "a longer repeated string", "MAIL"];
    let strings: Vec<String> =
        (0..rows).map(|_| POOL[rng.below(POOL.len() as u64) as usize].to_string()).collect();
    Column::Dict(DictColumn::from_plain(&strings))
}

fn random_packed(rng: &mut TestRng, rows: usize, logical: PackedLogical) -> Column {
    // Narrow ranges around a random (possibly negative) base so bit-packing
    // engages with widths from 0 to ~17 bits.
    let base = match logical {
        PackedLogical::Int64 => rng.next_u64() as i64 / 4,
        PackedLogical::Date => (rng.next_u64() as i32 / 4) as i64,
    };
    let span = 1 + rng.below(100_000);
    let values: Vec<i64> = (0..rows).map(|_| base + rng.below(span) as i64).collect();
    Column::Packed(PackedIntColumn::from_values(logical, &values))
}

fn random_xor(rng: &mut TestRng, rows: usize) -> Column {
    // Runs of repeated values with occasional jumps: the shape XOR
    // compression is built for.
    let mut values = Vec::with_capacity(rows);
    let mut current = (rng.below(1000) as f64) * 0.25;
    for _ in 0..rows {
        if rng.below(8) == 0 {
            current = (rng.below(1000) as f64) * 0.25;
        }
        values.push(current);
    }
    Column::Xor(XorFloatColumn::from_values(&values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dict_columns_roundtrip(rows in 0usize..300, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        assert_roundtrips(&random_dict(&mut rng, rows));
    }

    #[test]
    fn packed_int_columns_roundtrip(rows in 0usize..300, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        assert_roundtrips(&random_packed(&mut rng, rows, PackedLogical::Int64));
    }

    #[test]
    fn packed_date_columns_roundtrip(rows in 0usize..300, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        assert_roundtrips(&random_packed(&mut rng, rows, PackedLogical::Date));
    }

    #[test]
    fn xor_float_columns_roundtrip(rows in 0usize..300, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        assert_roundtrips(&random_xor(&mut rng, rows));
    }

    /// `encode_auto` output — whatever representation it picks — always
    /// round-trips and stays logically equal to its plain source.
    #[test]
    fn encode_auto_roundtrips(rows in 0usize..200, seed in any::<i64>()) {
        let mut rng = TestRng::for_case(seed as u64);
        for col in [
            random_dict(&mut rng, rows).decoded().into_owned(),
            random_packed(&mut rng, rows, PackedLogical::Int64).decoded().into_owned(),
            random_xor(&mut rng, rows).decoded().into_owned(),
        ] {
            let encoded = col.encode_auto();
            assert_eq!(encoded, col);
            assert_roundtrips(&encoded);
            prop_assert!(encoded.memory_bytes() <= col.memory_bytes());
        }
    }
}

#[test]
fn empty_columns_roundtrip() {
    assert_roundtrips(&Column::Dict(DictColumn::from_plain(&[])));
    assert_roundtrips(&Column::Packed(PackedIntColumn::from_values(PackedLogical::Int64, &[])));
    assert_roundtrips(&Column::Packed(PackedIntColumn::from_values(PackedLogical::Date, &[])));
    assert_roundtrips(&Column::Xor(XorFloatColumn::from_values(&[])));
}

#[test]
fn single_value_columns_roundtrip() {
    assert_roundtrips(&Column::Dict(DictColumn::from_plain(&["only".to_string()])));
    assert_roundtrips(&Column::Packed(PackedIntColumn::from_values(
        PackedLogical::Int64,
        &[i64::MIN],
    )));
    assert_roundtrips(&Column::Packed(PackedIntColumn::from_values(
        PackedLogical::Date,
        &[i32::MAX as i64],
    )));
    assert_roundtrips(&Column::Xor(XorFloatColumn::from_values(&[-0.0])));
}

#[test]
fn all_equal_columns_roundtrip_at_width_zero() {
    let dict = DictColumn::from_plain(&vec!["same".to_string(); 1000]);
    assert_eq!(dict.code_width(), 0, "one dictionary entry needs zero bits per code");
    assert_roundtrips(&Column::Dict(dict));

    let packed = PackedIntColumn::from_values(PackedLogical::Int64, &vec![-42; 1000]);
    assert_eq!(packed.width, 0, "all-equal integers pack at width zero");
    assert_roundtrips(&Column::Packed(packed));

    let xor = XorFloatColumn::from_values(&vec![3.25; 1000]);
    assert!(
        xor.memory_bytes() < 1000,
        "all-equal floats compress to ~1 bit/value, got {} bytes",
        xor.memory_bytes()
    );
    assert_roundtrips(&Column::Xor(xor));
}

#[test]
fn extreme_integer_ranges_roundtrip() {
    // i64::MIN..=i64::MAX spans more than u64 can hold in one delta; the
    // packer must fall back to width 64 without overflow.
    let col = Column::Packed(PackedIntColumn::from_values(
        PackedLogical::Int64,
        &[i64::MIN, 0, i64::MAX, -1, 1],
    ));
    assert_roundtrips(&col);

    let dates = Column::Packed(PackedIntColumn::from_values(
        PackedLogical::Date,
        &[i32::MIN as i64, i32::MAX as i64, 0],
    ));
    assert_roundtrips(&dates);
}

#[test]
fn nonfinite_floats_roundtrip_through_xor() {
    let col = Column::Xor(XorFloatColumn::from_values(&[
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        -0.0,
        0.0,
        f64::MIN_POSITIVE,
    ]));
    // NaN != NaN under logical comparison, so check bits instead.
    let decoded = match col.decoded().into_owned() {
        Column::Float64(v) => v,
        other => panic!("expected plain floats, got {other:?}"),
    };
    assert_eq!(decoded.len(), 6);
    assert!(decoded[2].is_nan());
    assert_eq!(decoded[0], f64::INFINITY);
    assert_eq!(decoded[3].to_bits(), (-0.0f64).to_bits());

    let b = batch_of("f", col);
    let mut frame = Vec::new();
    encode_batch_into(&b, &mut frame);
    let back = wire_decode(&frame).unwrap();
    let mut again = Vec::new();
    encode_batch_into(&back, &mut again);
    assert_eq!(frame, again);
}

/// Dictionary-encoded and plain string columns that hold the same values
/// must group/join identically: their row keys and hashes agree.
#[test]
fn dict_and_plain_agree_on_hashes_and_keys() {
    let strings: Vec<String> = (0..64).map(|i| ["x", "yy", "zzz"][i % 3].to_string()).collect();
    let plain = Column::Utf8(strings.clone());
    let dict = Column::Dict(DictColumn::from_plain(&strings));
    assert_eq!(plain, dict);

    let mut h_plain = vec![0u64; 64];
    let mut h_dict = vec![0u64; 64];
    plain.hash_into(&mut h_plain);
    dict.hash_into(&mut h_dict);
    assert_eq!(h_plain, h_dict, "hash partitioning must not depend on representation");
}
