/root/repo/target/debug/deps/micro-abdf45ffc9b471d8.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-abdf45ffc9b471d8.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
