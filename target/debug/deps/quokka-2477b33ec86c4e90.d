/root/repo/target/debug/deps/quokka-2477b33ec86c4e90.d: crates/quokka/src/lib.rs

/root/repo/target/debug/deps/libquokka-2477b33ec86c4e90.rmeta: crates/quokka/src/lib.rs

crates/quokka/src/lib.rs:
