//! Name resolution, type checking, and lowering to [`LogicalPlan`].
//!
//! The binder walks a parsed [`SelectStatement`] and produces the same
//! `LogicalPlan` shapes the hand-written TPC-H plans use:
//!
//! * `FROM a JOIN b ON ...` becomes a left-deep chain of inner hash joins,
//!   with the accumulated side as the build input (matching the
//!   `PlanBuilder::join` convention).
//! * `WHERE` becomes a `Filter` above the join tree.
//! * Aggregate calls in the SELECT list and `HAVING` are extracted into an
//!   `Aggregate` node; arithmetic over aggregates (e.g. `sum(a) / sum(b)`)
//!   is rewritten to a projection over the aggregate's output, and hidden
//!   aggregate columns (named `__agg_N`) are projected away again.
//! * `ORDER BY` + `LIMIT` become `Sort { limit }` (top-k); `LIMIT` alone
//!   becomes `Limit`.
//!
//! All errors are positioned [`SqlError`]s; unknown names include a
//! "did you mean" suggestion when a close match exists.

use crate::ast::*;
use crate::error::{Pos, SqlError};
use crate::parser::validate_date;
use crate::resolve::suggest;
use quokka_batch::datatype::{DataType, ScalarValue};
use quokka_batch::Schema;
use quokka_plan::aggregate::{AggExpr, AggFunc};
use quokka_plan::catalog::Catalog;
use quokka_plan::expr::{ArithOpKind, CmpOpKind, Expr};
use quokka_plan::logical::{JoinType, LogicalPlan};

/// Bind `stmt` against `catalog` and lower it to a logical plan.
pub fn bind_statement(
    stmt: &SelectStatement,
    catalog: &dyn Catalog,
) -> Result<LogicalPlan, SqlError> {
    Binder { catalog }.bind(stmt)
}

struct Binder<'a> {
    catalog: &'a dyn Catalog,
}

/// The tables visible to expression binding, in join order.
struct Scope {
    /// `(binding name, table schema)` — the binding name is the alias if one
    /// was given, else the table name.
    tables: Vec<(String, Schema)>,
    /// The flattened row schema (all table schemas concatenated).
    flat: Schema,
}

impl Scope {
    fn new(binding: String, schema: Schema) -> Self {
        Scope { flat: schema.clone(), tables: vec![(binding, schema)] }
    }

    /// A scope over an intermediate result (e.g. an aggregate's output),
    /// where columns have no table qualifier.
    fn anonymous(schema: Schema) -> Self {
        Scope { flat: schema.clone(), tables: vec![(String::new(), schema)] }
    }

    fn push(&mut self, binding: String, schema: Schema) {
        self.flat = self.flat.join(&schema);
        self.tables.push((binding, schema));
    }

    /// All column names in scope (for suggestions).
    fn all_columns(&self) -> Vec<String> {
        self.flat.column_names().iter().map(|s| s.to_string()).collect()
    }

    /// Validate a column reference; on success the flat column name is the
    /// SQL name itself (the engine's namespace is flat).
    ///
    /// The ambiguity branches below are currently unreachable — `bind_from`
    /// rejects joins that would duplicate a column name — but they are the
    /// resolution rules self-join/alias support will need when that guard
    /// is relaxed (see ROADMAP open items), so they stay.
    fn resolve(&self, qualifier: Option<&str>, name: &str, pos: Pos) -> Result<String, SqlError> {
        let occurrences =
            self.tables.iter().filter(|(_, schema)| schema.index_of(name).is_ok()).count();
        match qualifier {
            Some(q) => {
                let (_, schema) = self.tables.iter().find(|(b, _)| b == q).ok_or_else(|| {
                    let known: Vec<&str> = self.tables.iter().map(|(b, _)| b.as_str()).collect();
                    SqlError::bind(
                        pos,
                        format!("unknown table or alias '{q}' (in scope: {})", known.join(", ")),
                    )
                })?;
                if schema.index_of(name).is_err() {
                    return Err(SqlError::bind(
                        pos,
                        format!(
                            "table '{q}' has no column '{name}'{}",
                            suggest(name, schema.column_names())
                        ),
                    ));
                }
                if occurrences > 1 {
                    return Err(SqlError::bind(
                        pos,
                        format!(
                            "column '{name}' exists in more than one table; the engine's \
                             namespace is flat, so duplicated names cannot be disambiguated"
                        ),
                    ));
                }
                Ok(name.to_string())
            }
            None => match occurrences {
                0 => Err(SqlError::bind(
                    pos,
                    format!("unknown column '{name}'{}", suggest(name, self.flat.column_names())),
                )),
                1 => Ok(name.to_string()),
                _ => {
                    let tables: Vec<&str> = self
                        .tables
                        .iter()
                        .filter(|(_, s)| s.index_of(name).is_ok())
                        .map(|(b, _)| b.as_str())
                        .collect();
                    Err(SqlError::bind(
                        pos,
                        format!("column '{name}' is ambiguous (in {})", tables.join(" and ")),
                    ))
                }
            },
        }
    }
}

/// The aggregate function named by a call, if it is one.
fn agg_func_of(name: &str, distinct: bool, pos: Pos) -> Result<Option<AggFunc>, SqlError> {
    let func = match name {
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "count" => {
            if distinct {
                return Ok(Some(AggFunc::CountDistinct));
            }
            AggFunc::Count
        }
        _ => return Ok(None),
    };
    if distinct {
        return Err(SqlError::bind(pos, "DISTINCT is only supported with COUNT"));
    }
    Ok(Some(func))
}

/// Does this expression contain an aggregate function call?
fn contains_aggregate(e: &SqlExpr) -> bool {
    match &e.kind {
        ExprKind::Function { name, .. } => {
            matches!(name.as_str(), "sum" | "avg" | "min" | "max" | "count")
        }
        ExprKind::Column { .. }
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Date(_) => false,
        ExprKind::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        ExprKind::Not(inner) => contains_aggregate(inner),
        ExprKind::Like { expr, .. } => contains_aggregate(expr),
        ExprKind::InList { expr, items, .. } => {
            contains_aggregate(expr) || items.iter().any(contains_aggregate)
        }
        ExprKind::Between { expr, low, high, .. } => {
            contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high)
        }
        ExprKind::Case { branches, else_expr } => {
            branches.iter().any(|(c, v)| contains_aggregate(c) || contains_aggregate(v))
                || contains_aggregate(else_expr)
        }
        ExprKind::ExtractYear(inner) => contains_aggregate(inner),
        ExprKind::Substring { expr, .. } => contains_aggregate(expr),
        ExprKind::Cast { expr, .. } => contains_aggregate(expr),
    }
}

/// The scalar value of a literal expression, if it is one.
fn literal_scalar(e: &SqlExpr) -> Option<ScalarValue> {
    match &e.kind {
        ExprKind::Int(v) => Some(ScalarValue::Int64(*v)),
        ExprKind::Float(v) => Some(ScalarValue::Float64(*v)),
        ExprKind::Str(s) => Some(ScalarValue::Utf8(s.clone())),
        ExprKind::Bool(b) => Some(ScalarValue::Bool(*b)),
        ExprKind::Date(d) => Some(ScalarValue::Date(*d)),
        _ => None,
    }
}

/// Coerce a literal toward the type of the expression it is compared with:
/// integers widen to floats, and date-formatted strings become dates.
fn coerce_literal(value: ScalarValue, target: DataType, pos: Pos) -> Result<ScalarValue, SqlError> {
    let got = value.data_type();
    if got == target {
        return Ok(value);
    }
    match (&value, target) {
        (ScalarValue::Int64(v), DataType::Float64) => Ok(ScalarValue::Float64(*v as f64)),
        (ScalarValue::Float64(_), DataType::Int64) => Ok(value), // kernels compare via f64
        (ScalarValue::Utf8(s), DataType::Date) => match validate_date(s) {
            Some(days) => Ok(ScalarValue::Date(days)),
            None => Err(SqlError::bind(
                pos,
                format!("'{s}' is not a valid date literal (expected 'YYYY-MM-DD')"),
            )),
        },
        _ => Err(SqlError::bind(
            pos,
            format!("type mismatch: {got} literal used where {target} is expected"),
        )),
    }
}

impl Binder<'_> {
    fn bind(&self, stmt: &SelectStatement) -> Result<LogicalPlan, SqlError> {
        let (mut plan, scope) = self.bind_from(stmt)?;

        // WHERE
        if let Some(selection) = &stmt.selection {
            if contains_aggregate(selection) {
                return Err(SqlError::bind(
                    selection.pos,
                    "aggregate functions are not allowed in WHERE; use HAVING",
                ));
            }
            let predicate = self.bind_scalar(&scope, selection)?;
            self.expect_bool(&predicate, &scope, selection.pos, "WHERE predicate")?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }

        let has_aggregates = !stmt.group_by.is_empty()
            || stmt.items.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => contains_aggregate(expr),
                SelectItem::Wildcard => false,
            })
            || stmt.having.as_ref().is_some_and(contains_aggregate);

        let mut plan = if has_aggregates {
            self.bind_aggregate_query(stmt, plan, &scope)?
        } else {
            if let Some(having) = &stmt.having {
                return Err(SqlError::bind(
                    having.pos,
                    "HAVING requires GROUP BY or an aggregate in the SELECT list",
                ));
            }
            self.bind_plain_select(stmt, plan, &scope)?
        };

        // SELECT DISTINCT: an aggregation over every output column with no
        // aggregate calls (the engine's hash-aggregate deduplicates).
        if stmt.distinct {
            let output = self.schema_of(&plan)?;
            let group_by = output
                .column_names()
                .iter()
                .map(|n| (Expr::Column(n.to_string()), n.to_string()))
                .collect();
            plan = LogicalPlan::Aggregate { input: Box::new(plan), group_by, aggregates: vec![] };
        }

        // ORDER BY / LIMIT. Keys are bound against the statement's *output*
        // columns (select aliases included) and may be arbitrary scalar
        // expressions over them — computed keys lower through the same
        // hidden-sort-column path the DataFrame `sort()` uses
        // ([`quokka_plan::logical::sort_by_exprs`]).
        let output = self.schema_of(&plan)?;
        if !stmt.order_by.is_empty() {
            let output_scope = Scope::anonymous(output.clone());
            let mut keys: Vec<(Expr, bool)> = Vec::new();
            for item in &stmt.order_by {
                let key = match &item.expr.kind {
                    ExprKind::Column { qualifier: None, name } => {
                        if output.index_of(name).is_err() {
                            return Err(SqlError::bind(
                                item.expr.pos,
                                format!(
                                    "ORDER BY column '{name}' is not in the output{}",
                                    suggest(name, output.column_names())
                                ),
                            ));
                        }
                        Expr::Column(name.clone())
                    }
                    ExprKind::Column { qualifier: Some(q), .. } => {
                        return Err(SqlError::bind(
                            item.expr.pos,
                            format!(
                                "ORDER BY references output columns; drop the '{q}.' qualifier"
                            ),
                        ))
                    }
                    // `ORDER BY 2` — 1-based position in the output.
                    ExprKind::Int(n) => {
                        match usize::try_from(*n).ok().filter(|i| (1..=output.len()).contains(i)) {
                            Some(i) => Expr::Column(output.column_names()[i - 1].to_string()),
                            None => {
                                return Err(SqlError::bind(
                                    item.expr.pos,
                                    format!(
                                        "ORDER BY position {n} is not in the select list \
                                     (it has {} columns)",
                                        output.len()
                                    ),
                                ))
                            }
                        }
                    }
                    _ => {
                        if contains_aggregate(&item.expr) {
                            return Err(SqlError::bind(
                                item.expr.pos,
                                "ORDER BY cannot introduce new aggregates; give the \
                                 aggregate an alias in the SELECT list and sort by that",
                            ));
                        }
                        let bound = self.bind_scalar(&output_scope, &item.expr)?;
                        self.type_of(&bound, &output_scope.flat, item.expr.pos)?;
                        bound
                    }
                };
                keys.push((key, item.ascending));
            }
            plan = quokka_plan::logical::sort_by_exprs(plan, keys, stmt.limit)
                .map_err(|e| SqlError::bind(Pos::new(1, 1), format!("invalid ORDER BY: {e}")))?;
        } else if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit { input: Box::new(plan), n };
        }

        // Belt and braces: the plan must type-check end to end.
        self.schema_of(&plan)?;
        Ok(plan)
    }

    fn schema_of(&self, plan: &LogicalPlan) -> Result<Schema, SqlError> {
        plan.schema().map_err(|e| SqlError::bind(Pos::new(1, 1), format!("invalid plan: {e}")))
    }

    /// FROM + JOINs → left-deep inner-join tree and the resulting scope.
    fn bind_from(&self, stmt: &SelectStatement) -> Result<(LogicalPlan, Scope), SqlError> {
        let schema = self.table_schema(&stmt.from)?;
        let mut scope = Scope::new(stmt.from.binding_name().to_string(), schema.clone());
        let mut plan = LogicalPlan::Scan { table: stmt.from.name.clone(), schema };

        for join in &stmt.joins {
            let binding = join.table.binding_name().to_string();
            if scope.tables.iter().any(|(b, _)| *b == binding) {
                return Err(SqlError::bind(
                    join.table.pos,
                    format!(
                        "duplicate table name or alias '{binding}'; self-joins need distinct \
                         aliases, which this frontend does not support yet"
                    ),
                ));
            }
            let schema = self.table_schema(&join.table)?;
            // The engine's join output namespace is flat; a duplicated
            // column name would make every later name-based lookup silently
            // resolve to the first occurrence.
            if let Some(dup) =
                schema.column_names().into_iter().find(|n| scope.flat.index_of(n).is_ok())
            {
                return Err(SqlError::bind(
                    join.table.pos,
                    format!(
                        "joining '{binding}' would duplicate column '{dup}'; the engine's \
                         namespace is flat, so joined tables must have distinct column names"
                    ),
                ));
            }
            // A comma-FROM entry or CROSS JOIN has no ON condition and
            // lowers to a keyless cross join; the optimizer's filter-to-join
            // rule recovers equi-join keys from WHERE equalities.
            let on = match &join.on {
                Some(condition) => self.bind_join_on(&scope, &binding, &schema, condition)?,
                None => Vec::new(),
            };
            plan = LogicalPlan::Join {
                build: Box::new(plan),
                probe: Box::new(LogicalPlan::Scan {
                    table: join.table.name.clone(),
                    schema: schema.clone(),
                }),
                on,
                join_type: JoinType::Inner,
            };
            scope.push(binding, schema);
        }
        Ok((plan, scope))
    }

    fn table_schema(&self, table: &TableRef) -> Result<Schema, SqlError> {
        self.catalog.table_schema(&table.name).map_err(|_| {
            let names = self.catalog.table_names();
            SqlError::bind(
                table.pos,
                format!(
                    "unknown table '{}'{}",
                    table.name,
                    suggest(&table.name, names.iter().map(String::as_str).collect())
                ),
            )
        })
    }

    /// Lower `ON a = b AND c = d ...` into equi-join key pairs
    /// `(build column, probe column)`.
    fn bind_join_on(
        &self,
        scope: &Scope,
        new_binding: &str,
        new_schema: &Schema,
        on: &SqlExpr,
    ) -> Result<Vec<(String, String)>, SqlError> {
        let mut conjuncts = Vec::new();
        collect_conjuncts(on, &mut conjuncts);
        let mut pairs = Vec::new();
        for conjunct in conjuncts {
            let (left, right) = match &conjunct.kind {
                ExprKind::Binary { op: BinOp::Eq, left, right } => (left, right),
                _ => {
                    return Err(SqlError::bind(
                        conjunct.pos,
                        "JOIN ON supports conjunctions of column equalities \
                         (put other predicates in WHERE)",
                    ))
                }
            };
            let left_side = self.join_side(scope, new_binding, new_schema, left)?;
            let right_side = self.join_side(scope, new_binding, new_schema, right)?;
            let (build, probe) = match (left_side, right_side) {
                (JoinSide::Build(b), JoinSide::Probe(p)) => (b, p),
                (JoinSide::Probe(p), JoinSide::Build(b)) => (b, p),
                (JoinSide::Build(_), JoinSide::Build(_)) => {
                    return Err(SqlError::bind(
                        conjunct.pos,
                        format!(
                            "both sides of this equality come from tables already joined; \
                             the condition must relate '{new_binding}' to the preceding tables"
                        ),
                    ))
                }
                (JoinSide::Probe(_), JoinSide::Probe(_)) => {
                    return Err(SqlError::bind(
                        conjunct.pos,
                        format!(
                            "both sides of this equality come from '{new_binding}'; \
                             the condition must relate it to the preceding tables"
                        ),
                    ))
                }
            };
            let build_type = scope.flat.data_type(&build).expect("resolved build key");
            let probe_type = new_schema.data_type(&probe).expect("resolved probe key");
            if build_type != probe_type {
                return Err(SqlError::bind(
                    conjunct.pos,
                    format!(
                        "join key type mismatch: '{build}' is {build_type} but \
                         '{probe}' is {probe_type}"
                    ),
                ));
            }
            pairs.push((build, probe));
        }
        Ok(pairs)
    }

    /// Which side of the join a column reference belongs to.
    fn join_side(
        &self,
        scope: &Scope,
        new_binding: &str,
        new_schema: &Schema,
        e: &SqlExpr,
    ) -> Result<JoinSide, SqlError> {
        let (qualifier, name) = match &e.kind {
            ExprKind::Column { qualifier, name } => (qualifier.as_deref(), name),
            _ => {
                return Err(SqlError::bind(e.pos, "JOIN ON equalities must compare plain columns"))
            }
        };
        if let Some(q) = qualifier {
            if q == new_binding {
                if new_schema.index_of(name).is_err() {
                    return Err(SqlError::bind(
                        e.pos,
                        format!(
                            "table '{q}' has no column '{name}'{}",
                            suggest(name, new_schema.column_names())
                        ),
                    ));
                }
                return Ok(JoinSide::Probe(name.clone()));
            }
            scope.resolve(qualifier, name, e.pos)?;
            return Ok(JoinSide::Build(name.clone()));
        }
        let in_new = new_schema.index_of(name).is_ok();
        let in_old = scope.tables.iter().any(|(_, s)| s.index_of(name).is_ok());
        match (in_old, in_new) {
            (true, false) => Ok(JoinSide::Build(name.clone())),
            (false, true) => Ok(JoinSide::Probe(name.clone())),
            (true, true) => Err(SqlError::bind(
                e.pos,
                format!("column '{name}' exists on both sides of the join; qualify it"),
            )),
            (false, false) => {
                let mut all = scope.all_columns();
                all.extend(new_schema.column_names().iter().map(|s| s.to_string()));
                Err(SqlError::bind(
                    e.pos,
                    format!(
                        "unknown column '{name}'{}",
                        suggest(name, all.iter().map(String::as_str).collect())
                    ),
                ))
            }
        }
    }

    /// SELECT list without aggregates → optional Project.
    fn bind_plain_select(
        &self,
        stmt: &SelectStatement,
        plan: LogicalPlan,
        scope: &Scope,
    ) -> Result<LogicalPlan, SqlError> {
        if stmt.items.len() == 1 && stmt.items[0] == SelectItem::Wildcard {
            return Ok(plan);
        }
        let mut exprs = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let (expr, alias) = match item {
                SelectItem::Wildcard => {
                    return Err(SqlError::bind(
                        Pos::new(1, 1),
                        "'*' must be the only item in the SELECT list",
                    ))
                }
                SelectItem::Expr { expr, alias } => (expr, alias),
            };
            let bound = self.bind_scalar(scope, expr)?;
            self.type_of(&bound, &scope.flat, expr.pos)?;
            exprs.push((bound, output_name(expr, alias.as_deref(), i)));
        }
        check_unique_names(&exprs)?;
        Ok(LogicalPlan::Project { input: Box::new(plan), exprs })
    }

    /// SELECT with GROUP BY / aggregates → Aggregate [+ Filter] [+ Project].
    fn bind_aggregate_query(
        &self,
        stmt: &SelectStatement,
        plan: LogicalPlan,
        scope: &Scope,
    ) -> Result<LogicalPlan, SqlError> {
        // Every user-visible output name; synthesized group/aggregate
        // column names must avoid these, or name-based resolution over the
        // aggregate's output would silently pick the wrong column.
        let reserved: std::collections::BTreeSet<String> = stmt
            .items
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                SelectItem::Expr { expr, alias } => Some(output_name(expr, alias.as_deref(), i)),
                SelectItem::Wildcard => None,
            })
            .collect();

        // 1. Bind the GROUP BY keys against the pre-aggregate scope.
        let mut groups: Vec<(Expr, String)> = Vec::new();
        for (i, g) in stmt.group_by.iter().enumerate() {
            let (bound, name) = self.bind_group_key(stmt, scope, g, i, &reserved, &groups)?;
            // `GROUP BY a, a` (or `GROUP BY a, 1` naming the same column)
            // is legal SQL; repeated keys add nothing to the grouping.
            if !groups.iter().any(|(existing, _)| *existing == bound) {
                groups.push((bound, name));
            }
        }

        // 2. Extract aggregate calls from SELECT and HAVING, rewriting both
        //    into expressions over the aggregate's output columns.
        let mut extraction = Extraction { aggs: Vec::new(), hidden: 0, reserved };
        let mut rewritten_items: Vec<(SqlExpr, String)> = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            let (expr, alias) = match item {
                SelectItem::Wildcard => {
                    return Err(SqlError::bind(
                        Pos::new(1, 1),
                        "SELECT * cannot be combined with GROUP BY or aggregates",
                    ))
                }
                SelectItem::Expr { expr, alias } => (expr, alias),
            };
            let name = output_name(expr, alias.as_deref(), i);
            let top_level_alias = if matches!(expr.kind, ExprKind::Function { .. }) {
                Some(name.as_str())
            } else {
                None
            };
            let rewritten = self.rewrite_over_aggregate(
                scope,
                &groups,
                &mut extraction,
                expr,
                top_level_alias,
            )?;
            rewritten_items.push((rewritten, name));
        }
        let rewritten_having = match &stmt.having {
            Some(having) => {
                Some(self.rewrite_over_aggregate(scope, &groups, &mut extraction, having, None)?)
            }
            None => None,
        };
        if extraction.aggs.is_empty() && groups.is_empty() {
            return Err(SqlError::bind(
                Pos::new(1, 1),
                "internal: aggregate query without aggregates",
            ));
        }

        // 3. Build the Aggregate node and a scope over its output. Its
        //    column namespace must be duplicate-free: resolution by name
        //    would otherwise silently read the first occurrence.
        let mut seen = std::collections::BTreeSet::new();
        for name in groups.iter().map(|(_, n)| n).chain(extraction.aggs.iter().map(|a| &a.alias)) {
            if !seen.insert(name.clone()) {
                return Err(SqlError::bind(
                    Pos::new(1, 1),
                    format!(
                        "duplicate column '{name}' in the aggregate output \
                         (a GROUP BY key and an aggregate share the name); \
                         disambiguate with AS aliases"
                    ),
                ));
            }
        }
        let plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: groups.clone(),
            aggregates: extraction.aggs.clone(),
        };
        let agg_schema = self.schema_of(&plan)?;
        let agg_scope = Scope::anonymous(agg_schema.clone());

        // 4. HAVING → Filter over the aggregate output.
        let mut plan = plan;
        if let Some(rewritten) = &rewritten_having {
            let predicate = self.bind_scalar(&agg_scope, rewritten)?;
            self.expect_bool(&predicate, &agg_scope, rewritten.pos, "HAVING predicate")?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate };
        }

        // 5. Final projection to the SELECT order/names, dropping hidden
        //    aggregate columns — skipped when it would be an exact identity.
        let mut exprs = Vec::new();
        for (rewritten, name) in &rewritten_items {
            let bound = self.bind_scalar(&agg_scope, rewritten)?;
            self.type_of(&bound, &agg_scope.flat, rewritten.pos)?;
            exprs.push((bound, name.clone()));
        }
        check_unique_names(&exprs)?;
        let identity = exprs.len() == agg_schema.len()
            && exprs
                .iter()
                .zip(agg_schema.column_names())
                .all(|((e, name), field)| name == field && *e == Expr::Column(field.to_string()));
        if !identity {
            plan = LogicalPlan::Project { input: Box::new(plan), exprs };
        }
        Ok(plan)
    }

    /// One GROUP BY key: a column, a SELECT alias, or an expression that
    /// also appears in the SELECT list (which then names the key).
    fn bind_group_key(
        &self,
        stmt: &SelectStatement,
        scope: &Scope,
        g: &SqlExpr,
        index: usize,
        reserved: &std::collections::BTreeSet<String>,
        taken: &[(Expr, String)],
    ) -> Result<(Expr, String), SqlError> {
        if contains_aggregate(g) {
            return Err(SqlError::bind(g.pos, "GROUP BY cannot contain aggregate functions"));
        }
        // `GROUP BY 1` — 1-based position in the SELECT list. Other
        // literals would silently group the whole input into one bucket, so
        // they are rejected.
        if let ExprKind::Int(n) = g.kind {
            let item = usize::try_from(n)
                .ok()
                .filter(|i| (1..=stmt.items.len()).contains(i))
                .map(|i| (&stmt.items[i - 1], i - 1));
            let (expr, alias, i) = match item {
                Some((SelectItem::Expr { expr, alias }, i)) => (expr, alias, i),
                _ => {
                    return Err(SqlError::bind(
                        g.pos,
                        format!(
                            "GROUP BY position {n} is not in the select list \
                             (it has {} items)",
                            stmt.items.len()
                        ),
                    ))
                }
            };
            if contains_aggregate(expr) {
                return Err(SqlError::bind(
                    g.pos,
                    format!("GROUP BY position {n} refers to an aggregate"),
                ));
            }
            let bound = self.bind_scalar(scope, expr)?;
            return Ok((bound, output_name(expr, alias.as_deref(), i)));
        }
        if literal_scalar(g).is_some() {
            return Err(SqlError::bind(
                g.pos,
                "GROUP BY requires a column, alias, position, or expression, not a literal",
            ));
        }
        // A bare identifier that is not a column may name a SELECT alias
        // (e.g. `SELECT extract(year from d) AS y ... GROUP BY y`).
        if let ExprKind::Column { qualifier: None, name } = &g.kind {
            let is_column = scope.tables.iter().any(|(_, s)| s.index_of(name).is_ok());
            if !is_column {
                if let Some(expr) = find_alias(stmt, name) {
                    if contains_aggregate(expr) {
                        return Err(SqlError::bind(
                            g.pos,
                            format!("GROUP BY alias '{name}' refers to an aggregate"),
                        ));
                    }
                    let bound = self.bind_scalar(scope, expr)?;
                    return Ok((bound, name.clone()));
                }
            }
        }
        let bound = self.bind_scalar(scope, g)?;
        // Name the key after the column, the matching SELECT alias, or a
        // synthesized fallback.
        let name = match &g.kind {
            ExprKind::Column { name, .. } => name.clone(),
            _ => stmt
                .items
                .iter()
                .enumerate()
                .find_map(|(i, item)| match item {
                    SelectItem::Expr { expr, alias } if !contains_aggregate(expr) => {
                        let candidate = self.bind_scalar(scope, expr).ok()?;
                        (candidate == bound).then(|| output_name(expr, alias.as_deref(), i))
                    }
                    _ => None,
                })
                .unwrap_or_else(|| {
                    // Synthesized fallback; skip past user aliases and
                    // earlier keys so the name cannot shadow (or be
                    // shadowed by) another output column.
                    let mut n = index;
                    loop {
                        let candidate = format!("group_{n}");
                        if !reserved.contains(&candidate)
                            && !taken.iter().any(|(_, name)| *name == candidate)
                        {
                            break candidate;
                        }
                        n += 1;
                    }
                }),
        };
        Ok((bound, name))
    }

    /// Rewrite a SELECT/HAVING expression into one over the aggregate's
    /// output: aggregate calls become references to (possibly new) aggregate
    /// columns, group expressions become references to their key columns.
    fn rewrite_over_aggregate(
        &self,
        scope: &Scope,
        groups: &[(Expr, String)],
        extraction: &mut Extraction,
        e: &SqlExpr,
        top_level_alias: Option<&str>,
    ) -> Result<SqlExpr, SqlError> {
        // An aggregate call: extract it.
        if let ExprKind::Function { name, distinct, star, args } = &e.kind {
            if let Some(func) = agg_func_of(name, *distinct, e.pos)? {
                let input = if *star {
                    if func != AggFunc::Count {
                        return Err(SqlError::bind(
                            e.pos,
                            format!("'*' argument is only valid for COUNT, not {name}"),
                        ));
                    }
                    Expr::Literal(ScalarValue::Int64(1))
                } else {
                    if args.len() != 1 {
                        return Err(SqlError::bind(
                            e.pos,
                            format!("{name} takes exactly one argument, got {}", args.len()),
                        ));
                    }
                    if contains_aggregate(&args[0]) {
                        return Err(SqlError::bind(
                            args[0].pos,
                            "aggregate calls cannot be nested",
                        ));
                    }
                    let bound = self.bind_scalar(scope, &args[0])?;
                    let input_type = self.type_of(&bound, &scope.flat, args[0].pos)?;
                    if matches!(func, AggFunc::Sum | AggFunc::Avg) && !input_type.is_numeric() {
                        return Err(SqlError::bind(
                            args[0].pos,
                            format!(
                                "{} requires a numeric argument, got {input_type}",
                                name.to_uppercase()
                            ),
                        ));
                    }
                    bound
                };
                let alias = extraction.intern(func, input, top_level_alias);
                return Ok(SqlExpr::new(ExprKind::Column { qualifier: None, name: alias }, e.pos));
            }
        }

        // No aggregate inside: either it is a group key (replace with its
        // output column) or we keep descending.
        if !contains_aggregate(e) {
            if literal_scalar(e).is_some() {
                return Ok(e.clone());
            }
            let bound = self.bind_scalar(scope, e)?;
            if let Some((_, name)) = groups.iter().find(|(expr, _)| *expr == bound) {
                return Ok(SqlExpr::new(
                    ExprKind::Column { qualifier: None, name: name.clone() },
                    e.pos,
                ));
            }
            if let ExprKind::Column { name, .. } = &e.kind {
                return Err(SqlError::bind(
                    e.pos,
                    format!("column '{name}' must appear in GROUP BY or be used in an aggregate"),
                ));
            }
        }

        // Composite node: rewrite children.
        let kind = match &e.kind {
            ExprKind::Binary { op, left, right } => ExprKind::Binary {
                op: *op,
                left: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, left, None)?),
                right: Box::new(
                    self.rewrite_over_aggregate(scope, groups, extraction, right, None)?,
                ),
            },
            ExprKind::Not(inner) => ExprKind::Not(Box::new(
                self.rewrite_over_aggregate(scope, groups, extraction, inner, None)?,
            )),
            ExprKind::Like { expr, pattern, negated } => ExprKind::Like {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            ExprKind::InList { expr, items, negated } => ExprKind::InList {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                items: items.clone(),
                negated: *negated,
            },
            ExprKind::Between { expr, low, high, negated } => ExprKind::Between {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                low: low.clone(),
                high: high.clone(),
                negated: *negated,
            },
            ExprKind::Case { branches, else_expr } => {
                let mut rewritten = Vec::new();
                for (cond, value) in branches {
                    rewritten.push((
                        self.rewrite_over_aggregate(scope, groups, extraction, cond, None)?,
                        self.rewrite_over_aggregate(scope, groups, extraction, value, None)?,
                    ));
                }
                ExprKind::Case {
                    branches: rewritten,
                    else_expr: Box::new(
                        self.rewrite_over_aggregate(scope, groups, extraction, else_expr, None)?,
                    ),
                }
            }
            ExprKind::ExtractYear(inner) => ExprKind::ExtractYear(Box::new(
                self.rewrite_over_aggregate(scope, groups, extraction, inner, None)?,
            )),
            ExprKind::Substring { expr, start, len } => ExprKind::Substring {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                start: *start,
                len: *len,
            },
            ExprKind::Cast { expr, to } => ExprKind::Cast {
                expr: Box::new(self.rewrite_over_aggregate(scope, groups, extraction, expr, None)?),
                to: *to,
            },
            // Literals were returned above; a bare column either matched a
            // group key or errored; functions were handled first.
            other => other.clone(),
        };
        Ok(SqlExpr::new(kind, e.pos))
    }

    // -- scalar expression binding -----------------------------------------

    fn type_of(&self, e: &Expr, schema: &Schema, pos: Pos) -> Result<DataType, SqlError> {
        e.data_type(schema).map_err(|err| SqlError::bind(pos, err.to_string()))
    }

    fn expect_bool(&self, e: &Expr, scope: &Scope, pos: Pos, what: &str) -> Result<(), SqlError> {
        let t = self.type_of(e, &scope.flat, pos)?;
        if t != DataType::Bool {
            return Err(SqlError::bind(pos, format!("{what} has type {t}, expected Bool")));
        }
        Ok(())
    }

    /// Bind a scalar (aggregate-free) expression against `scope`.
    fn bind_scalar(&self, scope: &Scope, e: &SqlExpr) -> Result<Expr, SqlError> {
        match &e.kind {
            ExprKind::Column { qualifier, name } => {
                let resolved = scope.resolve(qualifier.as_deref(), name, e.pos)?;
                Ok(Expr::Column(resolved))
            }
            ExprKind::Int(v) => Ok(Expr::Literal(ScalarValue::Int64(*v))),
            ExprKind::Float(v) => Ok(Expr::Literal(ScalarValue::Float64(*v))),
            ExprKind::Str(s) => Ok(Expr::Literal(ScalarValue::Utf8(s.clone()))),
            ExprKind::Bool(b) => Ok(Expr::Literal(ScalarValue::Bool(*b))),
            ExprKind::Date(d) => Ok(Expr::Literal(ScalarValue::Date(*d))),
            ExprKind::Binary { op, left, right } => self.bind_binary(scope, e, *op, left, right),
            ExprKind::Not(inner) => {
                let bound = self.bind_scalar(scope, inner)?;
                self.expect_bool(&bound, scope, inner.pos, "NOT operand")?;
                Ok(Expr::Not(Box::new(bound)))
            }
            ExprKind::Like { expr, pattern, negated } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                if t != DataType::Utf8 {
                    return Err(SqlError::bind(
                        expr.pos,
                        format!("LIKE requires a string expression, got {t}"),
                    ));
                }
                Ok(Expr::Like {
                    expr: Box::new(bound),
                    pattern: pattern.clone(),
                    negated: *negated,
                })
            }
            ExprKind::InList { expr, items, negated } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                let mut list = Vec::new();
                for item in items {
                    let value = literal_scalar(item).ok_or_else(|| {
                        SqlError::bind(item.pos, "IN list items must be literals")
                    })?;
                    list.push(coerce_literal(value, t, item.pos)?);
                }
                Ok(Expr::InList { expr: Box::new(bound), list, negated: *negated })
            }
            ExprKind::Between { expr, low, high, negated } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                let low_value = literal_scalar(low)
                    .ok_or_else(|| SqlError::bind(low.pos, "BETWEEN bounds must be literals"))?;
                let high_value = literal_scalar(high)
                    .ok_or_else(|| SqlError::bind(high.pos, "BETWEEN bounds must be literals"))?;
                let between = Expr::Between {
                    expr: Box::new(bound),
                    low: coerce_literal(low_value, t, low.pos)?,
                    high: coerce_literal(high_value, t, high.pos)?,
                };
                Ok(if *negated { Expr::Not(Box::new(between)) } else { between })
            }
            ExprKind::Case { branches, else_expr } => {
                let mut bound_branches = Vec::new();
                let mut branch_types = Vec::new();
                for (cond, value) in branches {
                    let bound_cond = self.bind_scalar(scope, cond)?;
                    self.expect_bool(&bound_cond, scope, cond.pos, "CASE WHEN condition")?;
                    let bound_value = self.bind_scalar(scope, value)?;
                    branch_types
                        .push((self.type_of(&bound_value, &scope.flat, value.pos)?, value.pos));
                    bound_branches.push((bound_cond, bound_value));
                }
                let bound_else = self.bind_scalar(scope, else_expr)?;
                branch_types
                    .push((self.type_of(&bound_else, &scope.flat, else_expr.pos)?, else_expr.pos));
                let (first, _) = branch_types[0];
                for (t, pos) in &branch_types[1..] {
                    let compatible = *t == first || (t.is_numeric() && first.is_numeric());
                    if !compatible {
                        return Err(SqlError::bind(
                            *pos,
                            format!("CASE branches have incompatible types {first} and {t}"),
                        ));
                    }
                }
                Ok(Expr::Case { branches: bound_branches, otherwise: Box::new(bound_else) })
            }
            ExprKind::Function { name, .. } => {
                if agg_func_of(name, false, e.pos)?.is_some() {
                    return Err(SqlError::bind(
                        e.pos,
                        format!("aggregate function '{name}' is not allowed here"),
                    ));
                }
                Err(SqlError::bind(
                    e.pos,
                    format!(
                        "unknown function '{name}' (supported: sum, avg, min, max, count, \
                         substr, extract(year from ...), cast)"
                    ),
                ))
            }
            ExprKind::ExtractYear(inner) => {
                let bound = self.bind_scalar(scope, inner)?;
                let t = self.type_of(&bound, &scope.flat, inner.pos)?;
                if t != DataType::Date {
                    return Err(SqlError::bind(
                        inner.pos,
                        format!("EXTRACT(YEAR FROM ...) requires a Date expression, got {t}"),
                    ));
                }
                Ok(Expr::Year(Box::new(bound)))
            }
            ExprKind::Substring { expr, start, len } => {
                let bound = self.bind_scalar(scope, expr)?;
                let t = self.type_of(&bound, &scope.flat, expr.pos)?;
                if t != DataType::Utf8 {
                    return Err(SqlError::bind(
                        expr.pos,
                        format!("SUBSTRING requires a string expression, got {t}"),
                    ));
                }
                Ok(Expr::Substr { expr: Box::new(bound), start: *start, len: *len })
            }
            ExprKind::Cast { expr, to } => {
                let bound = self.bind_scalar(scope, expr)?;
                let from = self.type_of(&bound, &scope.flat, expr.pos)?;
                // Mirror the combinations compute::cast implements, so an
                // infeasible cast is a positioned bind error instead of a
                // runtime failure.
                let castable = from == *to
                    || matches!(
                        (from, *to),
                        (DataType::Int64, DataType::Float64)
                            | (DataType::Float64, DataType::Int64)
                            | (DataType::Date, DataType::Int64)
                            | (DataType::Int64, DataType::Date)
                    );
                if !castable {
                    return Err(SqlError::bind(
                        e.pos,
                        format!(
                            "unsupported cast {from} -> {to} \
                             (supported: BIGINT <-> DOUBLE, DATE <-> BIGINT)"
                        ),
                    ));
                }
                Ok(Expr::Cast { expr: Box::new(bound), to: *to })
            }
        }
    }

    fn bind_binary(
        &self,
        scope: &Scope,
        e: &SqlExpr,
        op: BinOp,
        left: &SqlExpr,
        right: &SqlExpr,
    ) -> Result<Expr, SqlError> {
        match op {
            BinOp::And | BinOp::Or => {
                let l = self.bind_scalar(scope, left)?;
                let r = self.bind_scalar(scope, right)?;
                let side = if op == BinOp::And { "AND" } else { "OR" };
                self.expect_bool(&l, scope, left.pos, side)?;
                self.expect_bool(&r, scope, right.pos, side)?;
                Ok(if op == BinOp::And {
                    Expr::And(Box::new(l), Box::new(r))
                } else {
                    Expr::Or(Box::new(l), Box::new(r))
                })
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                let l = self.bind_scalar(scope, left)?;
                let r = self.bind_scalar(scope, right)?;
                let lt = self.type_of(&l, &scope.flat, left.pos)?;
                let rt = self.type_of(&r, &scope.flat, right.pos)?;
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(SqlError::bind(
                        e.pos,
                        format!("arithmetic requires numeric operands, got {lt} and {rt}"),
                    ));
                }
                let kind = match op {
                    BinOp::Add => ArithOpKind::Add,
                    BinOp::Sub => ArithOpKind::Sub,
                    BinOp::Mul => ArithOpKind::Mul,
                    _ => ArithOpKind::Div,
                };
                Ok(Expr::Arith { op: kind, left: Box::new(l), right: Box::new(r) })
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let l = self.bind_scalar(scope, left)?;
                let r = self.bind_scalar(scope, right)?;
                let lt = self.type_of(&l, &scope.flat, left.pos)?;
                let rt = self.type_of(&r, &scope.flat, right.pos)?;
                // A date column compared against a string literal: re-read
                // the literal as a date.
                let (l, lt) = coerce_cmp_side(l, lt, rt, left.pos)?;
                let (r, rt) = coerce_cmp_side(r, rt, lt, right.pos)?;
                let comparable = lt == rt || (lt.is_numeric() && rt.is_numeric());
                if !comparable {
                    return Err(SqlError::bind(e.pos, format!("cannot compare {lt} with {rt}")));
                }
                let kind = match op {
                    BinOp::Eq => CmpOpKind::Eq,
                    BinOp::NotEq => CmpOpKind::NotEq,
                    BinOp::Lt => CmpOpKind::Lt,
                    BinOp::LtEq => CmpOpKind::LtEq,
                    BinOp::Gt => CmpOpKind::Gt,
                    _ => CmpOpKind::GtEq,
                };
                Ok(Expr::Cmp { op: kind, left: Box::new(l), right: Box::new(r) })
            }
        }
    }
}

/// Literal-side coercion for comparisons: a Utf8 literal facing a Date
/// expression becomes a Date literal.
fn coerce_cmp_side(
    e: Expr,
    t: DataType,
    other: DataType,
    pos: Pos,
) -> Result<(Expr, DataType), SqlError> {
    if t == DataType::Utf8 && other == DataType::Date {
        if let Expr::Literal(ScalarValue::Utf8(s)) = &e {
            return match validate_date(s) {
                Some(days) => Ok((Expr::Literal(ScalarValue::Date(days)), DataType::Date)),
                None => Err(SqlError::bind(
                    pos,
                    format!("'{s}' is not a valid date literal (expected 'YYYY-MM-DD')"),
                )),
            };
        }
    }
    Ok((e, t))
}

enum JoinSide {
    /// Column of the accumulated (build) side.
    Build(String),
    /// Column of the table being joined in (probe side).
    Probe(String),
}

/// The aggregate columns collected while rewriting SELECT/HAVING.
struct Extraction {
    aggs: Vec<AggExpr>,
    hidden: usize,
    /// User-visible output names the synthesized `__agg_N` aliases must
    /// avoid (a collision would make name-based resolution over the
    /// aggregate output silently read the wrong column).
    reserved: std::collections::BTreeSet<String>,
}

impl Extraction {
    /// Reuse an existing aggregate column for `(func, input)` or create one.
    /// `preferred_alias` is the SELECT alias when the aggregate call is a
    /// whole select item; hidden aggregates get `__agg_N` names and are
    /// projected away at the end.
    fn intern(&mut self, func: AggFunc, input: Expr, preferred_alias: Option<&str>) -> String {
        if let Some(existing) = self.aggs.iter().find(|a| a.func == func && a.expr == input) {
            return existing.alias.clone();
        }
        let alias = match preferred_alias {
            Some(a) => a.to_string(),
            None => loop {
                let candidate = format!("__agg_{}", self.hidden);
                self.hidden += 1;
                if !self.reserved.contains(&candidate) {
                    break candidate;
                }
            },
        };
        self.aggs.push(AggExpr::new(func, input, alias.clone()));
        alias
    }
}

/// `expr AND expr AND ...` → flat conjunct list.
fn collect_conjuncts<'e>(e: &'e SqlExpr, out: &mut Vec<&'e SqlExpr>) {
    match &e.kind {
        ExprKind::Binary { op: BinOp::And, left, right } => {
            collect_conjuncts(left, out);
            collect_conjuncts(right, out);
        }
        _ => out.push(e),
    }
}

/// The SELECT expression behind `alias`, if any item carries that alias.
fn find_alias<'s>(stmt: &'s SelectStatement, alias: &str) -> Option<&'s SqlExpr> {
    stmt.items.iter().find_map(|item| match item {
        SelectItem::Expr { expr, alias: Some(a) } if a == alias => Some(expr),
        _ => None,
    })
}

/// Output column name for a select item: the alias, the column's own name,
/// or a positional fallback.
fn output_name(expr: &SqlExpr, alias: Option<&str>, index: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match &expr.kind {
        ExprKind::Column { name, .. } => name.clone(),
        ExprKind::Function { name, .. } => name.clone(),
        _ => format!("col_{index}"),
    }
}

fn check_unique_names(exprs: &[(Expr, String)]) -> Result<(), SqlError> {
    for (i, (_, name)) in exprs.iter().enumerate() {
        if exprs[..i].iter().any(|(_, n)| n == name) {
            return Err(SqlError::bind(
                Pos::new(1, 1),
                format!("duplicate output column '{name}'; disambiguate with AS aliases"),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use quokka_batch::{Batch, Column};
    use quokka_plan::catalog::MemoryCatalog;
    use quokka_plan::reference::ReferenceExecutor;

    /// Two small joined tables: orders(o_id, o_cust, o_total, o_date) and
    /// customers(c_id, c_name, c_balance).
    fn catalog() -> MemoryCatalog {
        use quokka_batch::datatype::parse_date;
        let catalog = MemoryCatalog::new();
        let orders = Schema::from_pairs(&[
            ("o_id", DataType::Int64),
            ("o_cust", DataType::Int64),
            ("o_total", DataType::Float64),
            ("o_date", DataType::Date),
        ]);
        catalog.register(
            "orders",
            orders.clone(),
            vec![Batch::try_new(
                orders,
                vec![
                    Column::Int64(vec![1, 2, 3, 4]),
                    Column::Int64(vec![10, 10, 20, 30]),
                    Column::Float64(vec![5.0, 7.5, 20.0, 1.0]),
                    Column::Date(vec![
                        parse_date("1994-01-05"),
                        parse_date("1994-06-01"),
                        parse_date("1995-02-01"),
                        parse_date("1995-12-31"),
                    ]),
                ],
            )
            .unwrap()],
        );
        let customers = Schema::from_pairs(&[
            ("c_id", DataType::Int64),
            ("c_name", DataType::Utf8),
            ("c_balance", DataType::Float64),
        ]);
        catalog.register(
            "customers",
            customers.clone(),
            vec![Batch::try_new(
                customers,
                vec![
                    Column::Int64(vec![10, 20, 30]),
                    Column::Utf8(vec!["alice".into(), "bob".into(), "carol".into()]),
                    Column::Float64(vec![100.0, 200.0, 300.0]),
                ],
            )
            .unwrap()],
        );
        catalog
    }

    fn plan(sql: &str) -> Result<LogicalPlan, SqlError> {
        bind_statement(&parse(sql).unwrap(), &catalog())
    }

    fn run(sql: &str) -> Batch {
        let catalog = catalog();
        let plan = bind_statement(&parse(sql).unwrap(), &catalog).unwrap();
        ReferenceExecutor::new(&catalog).execute(&plan).unwrap()
    }

    #[test]
    fn select_star_is_a_bare_scan() {
        let p = plan("SELECT * FROM orders").unwrap();
        assert_eq!(p.name(), "Scan");
        assert_eq!(p.schema().unwrap().len(), 4);
    }

    #[test]
    fn filter_project_pipeline() {
        let p =
            plan("SELECT o_id, o_total * 2 AS double_total FROM orders WHERE o_total > 6").unwrap();
        assert_eq!(p.name(), "Project");
        let schema = p.schema().unwrap();
        assert_eq!(schema.column_names(), vec!["o_id", "double_total"]);
        assert_eq!(schema.data_type("double_total").unwrap(), DataType::Float64);
        let batch = run("SELECT o_id, o_total * 2 AS double_total FROM orders WHERE o_total > 6");
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn join_produces_equi_join_pairs() {
        let p = plan("SELECT c_name, o_total FROM customers JOIN orders ON c_id = o_cust").unwrap();
        // Project over Join(build=customers scan, probe=orders scan).
        match &p {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Join { on, join_type, .. } => {
                    assert_eq!(on, &vec![("c_id".to_string(), "o_cust".to_string())]);
                    assert_eq!(*join_type, JoinType::Inner);
                }
                other => panic!("expected Join, got {}", other.name()),
            },
            other => panic!("expected Project, got {}", other.name()),
        }
        let batch = run("SELECT c_name, o_total FROM customers JOIN orders ON c_id = o_cust");
        assert_eq!(batch.num_rows(), 4);
    }

    #[test]
    fn join_on_reversed_sides_and_qualifiers() {
        // Equality written probe-first, with table qualifiers.
        let p = plan("SELECT c_name FROM customers JOIN orders ON orders.o_cust = customers.c_id")
            .unwrap();
        match &p {
            LogicalPlan::Project { input, .. } => match input.as_ref() {
                LogicalPlan::Join { on, .. } => {
                    assert_eq!(on, &vec![("c_id".to_string(), "o_cust".to_string())]);
                }
                other => panic!("expected Join, got {}", other.name()),
            },
            _ => panic!("expected Project"),
        }
    }

    #[test]
    fn group_by_with_having_and_hidden_aggregate() {
        let sql = "SELECT c_name, sum(o_total) AS spend FROM customers \
                   JOIN orders ON c_id = o_cust \
                   GROUP BY c_name HAVING count(*) > 1 ORDER BY spend DESC";
        let batch = run(sql);
        // Only alice has two orders: 5.0 + 7.5.
        assert_eq!(batch.num_rows(), 1);
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("alice".into()));
        assert_eq!(batch.value(0, 1), ScalarValue::Float64(12.5));
        // The hidden count(*) column is projected away.
        let p = plan(sql).unwrap();
        assert_eq!(p.schema().unwrap().column_names(), vec!["c_name", "spend"]);
    }

    #[test]
    fn arithmetic_over_aggregates() {
        let batch =
            run("SELECT sum(o_total) / count(*) AS avg_total, avg(o_total) AS direct FROM orders");
        assert_eq!(batch.num_rows(), 1);
        let a = batch.value(0, 0).as_f64().unwrap();
        let b = batch.value(0, 1).as_f64().unwrap();
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn group_key_can_be_a_select_alias_expression() {
        let batch = run("SELECT extract(year from o_date) AS year, count(*) AS n \
             FROM orders GROUP BY year ORDER BY year");
        assert_eq!(batch.num_rows(), 2);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(1994));
        assert_eq!(batch.value(0, 1), ScalarValue::Int64(2));
        assert_eq!(batch.value(1, 0), ScalarValue::Int64(1995));
    }

    #[test]
    fn identity_aggregate_output_skips_the_projection() {
        let p = plan(
            "SELECT c_name, sum(o_total) AS spend FROM customers \
                      JOIN orders ON c_id = o_cust GROUP BY c_name",
        )
        .unwrap();
        assert_eq!(p.name(), "Aggregate");
    }

    #[test]
    fn where_dates_coerce_and_between_in_like_work() {
        let batch = run("SELECT o_id FROM orders WHERE o_date >= DATE '1994-01-01' \
             AND o_date < '1995-01-01' AND o_total BETWEEN 1 AND 10");
        assert_eq!(batch.num_rows(), 2);
        let batch = run("SELECT c_id FROM customers WHERE c_name LIKE '%li%'");
        assert_eq!(batch.num_rows(), 1);
        let batch = run("SELECT c_id FROM customers WHERE c_name IN ('alice', 'carol')");
        assert_eq!(batch.num_rows(), 2);
        let batch = run("SELECT o_id FROM orders WHERE o_cust NOT IN (10)");
        assert_eq!(batch.num_rows(), 2);
    }

    #[test]
    fn case_and_cast_and_substring() {
        let batch = run("SELECT CASE WHEN o_total > 6 THEN 'big' ELSE 'small' END AS size, \
                    CAST(o_id AS DOUBLE) AS idf, substr(c_name, 1, 2) AS prefix \
             FROM customers JOIN orders ON c_id = o_cust ORDER BY idf");
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("small".into()));
        assert_eq!(batch.value(0, 1), ScalarValue::Float64(1.0));
        assert_eq!(batch.value(0, 2), ScalarValue::Utf8("al".into()));
    }

    #[test]
    fn limit_and_sort_limit() {
        let p = plan("SELECT o_id FROM orders ORDER BY o_id DESC LIMIT 2").unwrap();
        match &p {
            LogicalPlan::Sort { limit, keys, .. } => {
                assert_eq!(*limit, Some(2));
                assert_eq!(keys, &vec![("o_id".to_string(), false)]);
            }
            other => panic!("expected Sort, got {}", other.name()),
        }
        let p = plan("SELECT o_id FROM orders LIMIT 3").unwrap();
        assert_eq!(p.name(), "Limit");
    }

    #[test]
    fn unknown_names_error_with_positions_and_suggestions() {
        let err = plan("SELECT o_id FROM oders").unwrap_err();
        assert_eq!(err.kind, crate::error::SqlErrorKind::Bind);
        assert!(err.to_string().contains("unknown table 'oders'"), "{err}");
        assert!(err.to_string().contains("did you mean 'orders'"), "{err}");
        assert_eq!(err.pos, Pos::new(1, 18));

        let err = plan("SELECT o_idd FROM orders").unwrap_err();
        assert!(err.to_string().contains("unknown column 'o_idd'"), "{err}");
        assert!(err.to_string().contains("did you mean 'o_id'"), "{err}");
        assert_eq!(err.pos, Pos::new(1, 8));

        let err = plan("SELECT orders.c_name FROM orders").unwrap_err();
        assert!(err.to_string().contains("has no column"), "{err}");

        let err = plan("SELECT x.o_id FROM orders").unwrap_err();
        assert!(err.to_string().contains("unknown table or alias 'x'"), "{err}");
    }

    #[test]
    fn type_mismatches_are_bind_errors() {
        let err = plan("SELECT o_id FROM orders WHERE c_name_missing > 1");
        assert!(err.is_err());

        let err = plan("SELECT o_total + c_name FROM orders JOIN customers ON o_cust = c_id")
            .unwrap_err();
        assert!(err.to_string().contains("arithmetic requires numeric operands"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE o_total > 'abc'").unwrap_err();
        assert!(err.to_string().contains("cannot compare"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE o_date > 'not-a-date'").unwrap_err();
        assert!(err.to_string().contains("not a valid date"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE o_total").unwrap_err();
        assert!(err.to_string().contains("expected Bool"), "{err}");

        let err = plan("SELECT sum(c_name) FROM customers").unwrap_err();
        assert!(err.to_string().contains("SUM requires a numeric argument"), "{err}");

        let err = plan("SELECT o_id FROM orders WHERE sum(o_total) > 1").unwrap_err();
        assert!(err.to_string().contains("not allowed in WHERE"), "{err}");

        let err = plan("SELECT o_id, count(*) FROM orders").unwrap_err();
        assert!(err.to_string().contains("must appear in GROUP BY"), "{err}");

        let err = plan("SELECT extract(year from c_name) FROM customers").unwrap_err();
        assert!(err.to_string().contains("requires a Date"), "{err}");
    }

    #[test]
    fn join_condition_errors() {
        let err = plan("SELECT c_name FROM customers JOIN orders ON c_id > o_cust").unwrap_err();
        assert!(err.to_string().contains("column equalities"), "{err}");

        let err = plan("SELECT c_name FROM customers JOIN orders ON o_id = o_cust").unwrap_err();
        assert!(err.to_string().contains("both sides"), "{err}");

        let err = plan("SELECT c_name FROM customers JOIN orders ON c_name = o_cust").unwrap_err();
        assert!(err.to_string().contains("join key type mismatch"), "{err}");

        let err = plan("SELECT 1 AS one FROM orders JOIN orders ON o_id = o_id").unwrap_err();
        assert!(err.to_string().contains("duplicate table"), "{err}");
    }

    #[test]
    fn order_by_must_reference_output_columns() {
        let err = plan("SELECT o_id FROM orders ORDER BY o_total").unwrap_err();
        assert!(err.to_string().contains("not in the output"), "{err}");

        let err = plan("SELECT o_id FROM orders ORDER BY sum(o_id)").unwrap_err();
        assert!(err.to_string().contains("cannot introduce new aggregates"), "{err}");
    }

    #[test]
    fn order_by_expressions_sort_through_hidden_keys() {
        // `ORDER BY o_id + 1 DESC` == `ORDER BY o_id DESC`, and the hidden
        // sort key must not appear in the output.
        let batch = run("SELECT o_id FROM orders ORDER BY 0 - o_id");
        assert_eq!(batch.schema().column_names(), vec!["o_id"]);
        assert_eq!(batch.column(0), &Column::Int64(vec![4, 3, 2, 1]));

        // Expressions over aggregate aliases work too.
        let batch = run("SELECT o_cust, sum(o_total) AS total FROM orders \
             GROUP BY o_cust ORDER BY 0.0 - total LIMIT 2");
        assert_eq!(batch.num_rows(), 2);
        let totals = batch.as_f64s("total").unwrap().to_vec();
        assert!(totals[0] >= totals[1], "{totals:?}");

        // CASE expressions as sort keys.
        let batch = run("SELECT o_id FROM orders \
             ORDER BY CASE WHEN o_id = 3 THEN 0 ELSE 1 END, o_id");
        assert_eq!(batch.column(0), &Column::Int64(vec![3, 1, 2, 4]));
    }

    #[test]
    fn having_without_aggregates_is_rejected() {
        let err = plan("SELECT o_id FROM orders HAVING o_id > 1").unwrap_err();
        assert!(err.to_string().contains("HAVING requires GROUP BY"), "{err}");
    }

    #[test]
    fn duplicate_output_names_are_rejected() {
        let err = plan("SELECT o_id, o_id + 1 AS o_id FROM orders").unwrap_err();
        assert!(err.to_string().contains("duplicate output column"), "{err}");
    }

    #[test]
    fn select_distinct_lowers_to_an_aggregate() {
        let p = plan("SELECT DISTINCT o_cust FROM orders").unwrap();
        match &p {
            LogicalPlan::Aggregate { group_by, aggregates, .. } => {
                assert_eq!(group_by.len(), 1);
                assert!(aggregates.is_empty());
            }
            other => panic!("expected Aggregate, got {}", other.name()),
        }
        let batch = run("SELECT DISTINCT o_cust FROM orders ORDER BY o_cust");
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(10));

        // DISTINCT over several columns, and over expressions.
        let batch = run("SELECT DISTINCT o_cust, o_total > 6 AS big FROM orders");
        assert_eq!(batch.num_rows(), 4);

        // DISTINCT * works too (all table columns).
        let batch = run("SELECT DISTINCT * FROM customers");
        assert_eq!(batch.num_rows(), 3);
    }

    #[test]
    fn comma_from_lists_bind_to_cross_joins() {
        let p = plan("SELECT c_name, o_total FROM customers, orders WHERE c_id = o_cust").unwrap();
        // Project over Filter over keyless Join: the binder stays naive and
        // leaves equi-join recovery to the optimizer.
        fn find_join(plan: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(plan, LogicalPlan::Join { .. }) {
                return Some(plan);
            }
            plan.children().iter().find_map(|c| find_join(c))
        }
        match find_join(&p).expect("join present") {
            LogicalPlan::Join { on, join_type, .. } => {
                assert!(on.is_empty(), "binder must not invent join keys");
                assert_eq!(*join_type, JoinType::Inner);
            }
            _ => unreachable!(),
        }
        // And the cross join executes correctly on the reference executor.
        let batch = run("SELECT c_name, o_total FROM customers, orders WHERE c_id = o_cust");
        assert_eq!(batch.num_rows(), 4);
        let unconstrained = run("SELECT c_name, o_total FROM customers, orders");
        assert_eq!(unconstrained.num_rows(), 12); // 3 customers x 4 orders

        // Duplicate-column and duplicate-binding guards still apply.
        let err = plan("SELECT o_id FROM orders, orders").unwrap_err();
        assert!(err.to_string().contains("duplicate table"), "{err}");
    }

    #[test]
    fn count_distinct_binds() {
        let batch = run("SELECT count(DISTINCT o_cust) AS customers FROM orders");
        assert_eq!(batch.value(0, 0), ScalarValue::Int64(3));
        let err = plan("SELECT sum(DISTINCT o_total) FROM orders").unwrap_err();
        assert!(err.to_string().contains("only supported with COUNT"), "{err}");
    }

    #[test]
    fn group_by_and_order_by_ordinals() {
        let batch = run("SELECT o_cust, count(*) AS n FROM orders GROUP BY 1 ORDER BY 2 DESC");
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.value(0, 1), ScalarValue::Int64(2)); // customer 10

        let err = plan("SELECT o_cust FROM orders GROUP BY 3").unwrap_err();
        assert!(err.to_string().contains("position 3 is not in the select list"), "{err}");

        let err = plan("SELECT o_cust, count(*) AS n FROM orders GROUP BY 2").unwrap_err();
        assert!(err.to_string().contains("refers to an aggregate"), "{err}");

        let err = plan("SELECT o_cust, count(*) AS n FROM orders GROUP BY 'x'").unwrap_err();
        assert!(err.to_string().contains("not a literal"), "{err}");

        let err = plan("SELECT o_cust FROM orders ORDER BY 2").unwrap_err();
        assert!(err.to_string().contains("position 2 is not in the select list"), "{err}");
    }

    #[test]
    fn infeasible_casts_are_bind_errors() {
        // Identity and numeric/date casts bind.
        assert!(plan("SELECT CAST(c_name AS VARCHAR) AS s FROM customers").is_ok());
        assert!(plan("SELECT CAST(o_date AS BIGINT) AS d FROM orders").is_ok());
        // Casts compute::cast cannot execute are rejected with a position.
        let err = plan("SELECT CAST(o_id AS VARCHAR) AS s FROM orders").unwrap_err();
        assert!(err.to_string().contains("unsupported cast Int64 -> Utf8"), "{err}");
        let err = plan("SELECT CAST(c_name AS BOOLEAN) AS b FROM customers").unwrap_err();
        assert!(err.to_string().contains("unsupported cast"), "{err}");
    }

    #[test]
    fn synthesized_names_avoid_user_aliases() {
        // A user alias equal to a hidden-aggregate name must not capture
        // the hidden column: x is sum + 1, not min + 1.
        let batch =
            run("SELECT min(o_total) AS __agg_0, sum(o_total) + 1 AS x, count(*) AS group_0 \
             FROM orders GROUP BY o_cust ORDER BY x");
        assert_eq!(batch.value(0, 0), ScalarValue::Float64(1.0)); // min for cust 30
        assert_eq!(batch.value(0, 1), ScalarValue::Float64(2.0)); // sum + 1
        assert_eq!(batch.value(0, 2), ScalarValue::Int64(1));

        // An unnamed expression key must not collide with a user alias
        // either: group_0 is the count, not the key values.
        let batch = run("SELECT count(*) AS group_0 FROM orders GROUP BY o_id + o_cust");
        assert_eq!(batch.num_rows(), 4);
        for row in 0..4 {
            assert_eq!(batch.value(row, 0), ScalarValue::Int64(1), "row {row}");
        }

        // A genuine collision between a key name and an aggregate alias is
        // an error, not a silent first-match resolution.
        let err =
            plan("SELECT o_cust, sum(o_total) AS o_cust FROM orders GROUP BY o_cust").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");

        // Repeated group keys are deduplicated, not rejected.
        let batch = run("SELECT o_cust, count(*) AS n FROM orders GROUP BY o_cust, o_cust, 1");
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.schema().column_names(), vec!["o_cust", "n"]);
    }

    #[test]
    fn joins_with_duplicate_column_names_are_rejected() {
        let catalog = catalog();
        let t = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Float64)]);
        let u = Schema::from_pairs(&[("k", DataType::Int64), ("w", DataType::Float64)]);
        catalog.register("t", t, vec![]);
        catalog.register("u", u, vec![]);
        let err = bind_statement(&parse("SELECT * FROM t JOIN u ON t.k = u.k").unwrap(), &catalog)
            .unwrap_err();
        assert!(err.to_string().contains("duplicate column 'k'"), "{err}");
    }
}
