//! Integration tests: the deterministic chaos engine.
//!
//! Where `tests/fault_tolerance.rs` kills a worker at one progress fraction,
//! this suite drives the full [`ChaosPlan`] surface: crash-at-every-boundary
//! sweeps, randomized-but-reproducible multi-event plans, second kills
//! mid-recovery, wiped backups (forcing deeper lineage replay), dropped and
//! delayed pushes, false suspicion, stragglers, per-query deadlines, and
//! quiescence after the consumer walks away. Every surviving run must be
//! batch-for-batch identical to the reference result.

use quokka::{
    same_result, ChaosEvent, ChaosPlan, ChaosTrigger, EngineConfig, QuokkaError, QuokkaSession,
};
use std::time::Duration;

fn session(workers: u32) -> QuokkaSession {
    QuokkaSession::tpch(0.002, workers).expect("generate TPC-H data")
}

/// The tentpole proof: kill worker 1 at every task-commit boundary (sampled
/// with a stride when the query has many tasks) across three differently
/// shaped TPC-H queries. The answer never changes.
#[test]
fn crash_at_every_task_commit_boundary_preserves_parity() {
    let session = session(3);
    for query in [1, 3, 12] {
        let plan = quokka::tpch::query(query).unwrap();
        let expected = session.run_reference(&plan).unwrap();

        // Clean run first: count the task-commit boundaries to sweep.
        let clean = session.run_with(&plan, &EngineConfig::quokka(3)).unwrap();
        assert!(same_result(&expected, &clean.batch), "clean Q{query} diverged");
        let total = clean.metrics.tasks_executed;
        assert!(total > 0, "Q{query} executed no tasks");

        let stride = (total / 8).max(1);
        let mut fired = 0;
        let mut boundary = 1;
        while boundary <= total {
            let config =
                EngineConfig::quokka(3).with_chaos(ChaosPlan::kill_at_commits(1, boundary));
            let outcome = session.run_with(&plan, &config).unwrap_or_else(|e| {
                panic!("Q{query} failed when killed at commit boundary {boundary}: {e}")
            });
            assert!(
                same_result(&expected, &outcome.batch),
                "Q{query} diverged when worker 1 was killed at commit boundary {boundary}/{total}"
            );
            fired += outcome.metrics.chaos_events;
            boundary += stride;
        }
        assert!(fired > 0, "no injection ever fired while sweeping Q{query}");
    }
}

/// Seeded multi-event chaos: the same `(seed, workers)` pair always produces
/// the same plan, so any failure here is reproduced from the seed printed in
/// the panic message alone.
#[test]
fn randomized_chaos_is_survivable_and_reproducible_from_seed() {
    let session = session(4);
    let plan = quokka::tpch::query(3).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    for seed in [1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233] {
        let chaos = ChaosPlan::randomized(seed, 4);
        assert_eq!(
            format!("{chaos:?}"),
            format!("{:?}", ChaosPlan::randomized(seed, 4)),
            "ChaosPlan::randomized({seed}, 4) is not deterministic"
        );
        let config = EngineConfig::quokka(4)
            .with_chaos(chaos)
            .with_suspicion_timeout(Duration::from_millis(50));
        let outcome = session.run_with(&plan, &config).unwrap_or_else(|e| {
            panic!(
                "query failed under randomized chaos; reproduce with \
                 ChaosPlan::randomized({seed}, 4): {e}"
            )
        });
        assert!(
            same_result(&expected, &outcome.batch),
            "diverged under randomized chaos; reproduce with ChaosPlan::randomized({seed}, 4)"
        );
    }
}

/// A second worker dies while the first failure is still being repaired —
/// the paper's pipeline-parallel recovery must absorb both.
#[test]
fn a_second_kill_mid_recovery_still_converges() {
    let session = session(3);
    let plan = quokka::tpch::query(5).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let chaos = ChaosPlan::new()
        .with(ChaosTrigger::Progress(0.4), ChaosEvent::KillWorker { worker: 1 })
        .with(ChaosTrigger::RecoveryTasks(1), ChaosEvent::KillWorker { worker: 2 });
    let outcome = session.run_with(&plan, &EngineConfig::quokka(3).with_chaos(chaos)).unwrap();
    assert!(same_result(&expected, &outcome.batch), "diverged after a kill during recovery");
    assert_eq!(outcome.metrics.failures, 2, "both kills must be detected");
    assert!(outcome.metrics.recovery_tasks > 0);
}

/// Wiping a survivor's local backups before the kill forces recovery to
/// rewind past the missing partitions — a deeper lineage replay than the
/// happy path, with the same answer.
#[test]
fn wiped_backups_force_deeper_replay_and_still_converge() {
    let session = session(3);
    let plan = quokka::tpch::query(3).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let chaos = ChaosPlan::new()
        .with(ChaosTrigger::TaskCommits(2), ChaosEvent::LoseBackups { worker: 0 })
        .with(ChaosTrigger::Progress(0.5), ChaosEvent::KillWorker { worker: 1 });
    let outcome = session.run_with(&plan, &EngineConfig::quokka(3).with_chaos(chaos)).unwrap();
    assert!(same_result(&expected, &outcome.batch), "diverged after backups were wiped");
    assert_eq!(outcome.metrics.failures, 1);
}

/// Dropped pushes surface as transient errors; the bounded-backoff publish
/// loop must absorb them without changing the result.
#[test]
fn dropped_and_delayed_pushes_are_retried_transparently() {
    let session = session(3);
    let plan = quokka::tpch::query(12).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let chaos = ChaosPlan::new()
        .with(ChaosTrigger::TaskCommits(1), ChaosEvent::DropPushes { destination: 1, count: 3 })
        .with(
            ChaosTrigger::TaskCommits(2),
            ChaosEvent::DelayPushes { destination: 2, count: 2, delay: Duration::from_millis(2) },
        );
    let outcome = session.run_with(&plan, &EngineConfig::quokka(3).with_chaos(chaos)).unwrap();
    assert!(same_result(&expected, &outcome.batch), "diverged under push faults");
    assert_eq!(outcome.metrics.failures, 0, "push faults are not worker failures");
    assert!(
        outcome.metrics.push_retries >= 1,
        "dropped pushes must be visible as retries, got {}",
        outcome.metrics.push_retries
    );
}

/// Suppressing a live worker's heartbeats makes the detector suspect it.
/// Suspicion reconciles the worker's channels without killing it; the
/// commit-time channel CAS keeps any in-flight work from double-counting.
#[test]
fn a_false_suspicion_never_corrupts_the_result() {
    let session = session(3);
    let plan = quokka::tpch::query(6).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let chaos = ChaosPlan::new()
        .with(ChaosTrigger::TaskCommits(2), ChaosEvent::SuspectWorker { worker: 1 })
        .with(
            ChaosTrigger::TaskCommits(2),
            ChaosEvent::Straggler { worker: 1, count: 3, delay: Duration::from_millis(30) },
        );
    let config =
        EngineConfig::quokka(3).with_chaos(chaos).with_suspicion_timeout(Duration::from_millis(20));
    let outcome = session.run_with(&plan, &config).unwrap();
    assert!(same_result(&expected, &outcome.batch), "diverged after a false suspicion");
    assert_eq!(outcome.metrics.failures, 0, "a suspected worker must not be declared failed");
    assert!(
        outcome.metrics.suspicions >= 1,
        "the silent worker was never suspected (suspicions = {})",
        outcome.metrics.suspicions
    );
}

/// Stragglers only stretch the runtime; they never change the answer.
#[test]
fn stragglers_only_slow_the_query_down() {
    let session = session(3);
    let plan = quokka::tpch::query(1).unwrap();
    let expected = session.run_reference(&plan).unwrap();
    let chaos = ChaosPlan::new().with(
        ChaosTrigger::TaskCommits(1),
        ChaosEvent::Straggler { worker: 2, count: 4, delay: Duration::from_millis(5) },
    );
    let outcome = session.run_with(&plan, &EngineConfig::quokka(3).with_chaos(chaos)).unwrap();
    assert!(same_result(&expected, &outcome.batch));
    assert!(outcome.metrics.chaos_events >= 1, "the straggler injection never fired");
}

/// A query that cannot finish inside its deadline fails with the typed
/// [`QuokkaError::Timeout`] instead of hanging or panicking.
#[test]
fn a_tight_deadline_fails_with_a_typed_timeout() {
    let session = session(3);
    let plan = quokka::tpch::query(3).unwrap();
    let chaos = ChaosPlan::new().with(
        ChaosTrigger::TaskCommits(1),
        ChaosEvent::Straggler { worker: 0, count: 8, delay: Duration::from_millis(40) },
    );
    let config =
        EngineConfig::quokka(3).with_chaos(chaos).with_query_timeout(Duration::from_millis(1));
    match session.run_with(&plan, &config) {
        Err(QuokkaError::Timeout { elapsed, limit }) => {
            assert_eq!(limit, Duration::from_millis(1));
            assert!(elapsed >= limit, "reported {elapsed:?} elapsed under a {limit:?} limit");
        }
        Err(other) => panic!("expected a typed Timeout, got: {other}"),
        Ok(_) => panic!("a 1ms deadline cannot be met under 320ms of injected straggle"),
    }
}

/// The effective failure-detection settings travel with the metrics, so an
/// operator can see what a run actually used (builder values here; the
/// `QUOKKA_WATCHDOG_SECS` override path is covered in `tests/watchdog_env.rs`).
#[test]
fn effective_failure_detection_settings_are_reported() {
    let session = session(3);
    let plan = quokka::tpch::query(6).unwrap();
    let config = EngineConfig::quokka(3)
        .with_watchdog(Duration::from_secs(77))
        .with_suspicion_timeout(Duration::from_millis(123));
    let outcome = session.run_with(&plan, &config).unwrap();
    assert_eq!(outcome.metrics.effective_watchdog, Duration::from_secs(77));
    assert_eq!(outcome.metrics.effective_suspicion_timeout, Duration::from_millis(123));
}

/// The four decorrelated DataFrame twins (semi/anti-join shapes) survive a
/// combined kill + dropped-push plan with batch-level parity against the
/// reference executor.
#[test]
fn dataframe_twins_survive_a_chaos_plan() {
    let session = session(3);
    let chaos = ChaosPlan::new()
        .with(ChaosTrigger::Progress(0.5), ChaosEvent::KillWorker { worker: 1 })
        .with(ChaosTrigger::TaskCommits(2), ChaosEvent::DropPushes { destination: 2, count: 2 });
    let config = EngineConfig::quokka(3).with_chaos(chaos);
    for q in [4, 16, 18, 22] {
        let df = quokka::dataframe::tpch::query(&session, q).unwrap();
        let expected = df.collect_reference().unwrap();
        let outcome = df
            .collect_with(&config)
            .unwrap_or_else(|e| panic!("DataFrame Q{q} failed under chaos: {e}"));
        assert!(
            same_result(&expected, &outcome.batch),
            "DataFrame Q{q} diverged under the chaos plan"
        );
    }
}

/// Count the live engine threads whose name starts with `prefix`.
///
/// Thread names land in `/proc/self/task/<tid>/comm` (worker threads are
/// named `quokka-w{worker}-s{stage}`); this suite is the only binary using a
/// 5-worker cluster, so `quokka-w4-` threads can only come from the test
/// below.
fn live_threads_with_prefix(prefix: &str) -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else { return 0 };
    tasks
        .filter_map(|entry| entry.ok())
        .filter(|entry| {
            std::fs::read_to_string(entry.path().join("comm"))
                .map(|comm| comm.trim().starts_with(prefix))
                .unwrap_or(false)
        })
        .count()
}

/// Dropping the [`BatchStream`](quokka::BatchStream) while recovery is in
/// flight cancels the query: every worker thread must exit instead of
/// spinning on a result nobody will read.
#[test]
fn dropping_the_stream_mid_recovery_quiesces_the_workers() {
    let session = session(5);
    // Slow the query down so it is still mid-recovery when we walk away.
    let chaos = ChaosPlan::new()
        .with(ChaosTrigger::TaskCommits(1), ChaosEvent::KillWorker { worker: 1 })
        .with(
            ChaosTrigger::TaskCommits(2),
            ChaosEvent::Straggler { worker: 0, count: 16, delay: Duration::from_millis(10) },
        );
    let config = EngineConfig::quokka(5).with_chaos(chaos);
    let handle = session.tpch_query(3).unwrap();
    {
        let stream = handle.stream_with(&config).unwrap();
        // Worker threads spawn asynchronously; wait for the cluster to come
        // up (and keep the stream alive meanwhile) before walking away.
        let startup = std::time::Instant::now() + Duration::from_secs(5);
        while live_threads_with_prefix("quokka-w4-") == 0 && !stream.is_finished() {
            assert!(std::time::Instant::now() < startup, "the 5-worker cluster never started");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(stream);
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while live_threads_with_prefix("quokka-w4-") > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "worker threads still alive 10s after the stream was dropped"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}
