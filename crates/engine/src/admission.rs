//! Admission control: bounded concurrency, bounded queueing, and memory
//! budgeting for concurrent serving.
//!
//! One [`AdmissionController`] guards one serving process (a
//! `QuokkaSession` and all its clones share one). Each query asks for
//! admission *after* planning but *before* any cluster state is built, with
//! a memory estimate derived from catalog statistics
//! ([`estimate_query_memory`]). The controller's state machine per query:
//!
//! ```text
//!            capacity free & queue empty
//!   arrive ─────────────────────────────▶ admitted ──▶ run ──▶ release
//!      │                                      ▲
//!      │ capacity busy, queue has room        │ FIFO, as capacity frees
//!      ├─────────────────────────────▶ queued ┘
//!      │ queue full
//!      └─────────────────────────────▶ rejected (typed `Overloaded`)
//! ```
//!
//! Admission is *fair*: waiters are granted strictly in arrival order (a
//! newcomer can never overtake the queue, even when capacity happens to be
//! free — it would starve the head). Release happens through an RAII
//! [`AdmissionPermit`] owned by the query's supervisor thread, so every
//! exit path — completion, failure, cancellation, chaos-induced restart —
//! frees the slot; a worker kill can strand neither the slot nor the queue
//! behind it.
//!
//! The memory rule is work-conserving: a query whose estimate exceeds the
//! whole budget is still admitted when nothing else runs, so oversized
//! queries degrade to serial execution instead of waiting forever.

use quokka_common::config::AdmissionConfig;
use quokka_common::{QuokkaError, Result};
use quokka_plan::catalog::Catalog;
use quokka_plan::logical::LogicalPlan;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Estimate the memory a query needs, from catalog statistics: the sum of
/// the footprints of every base table it scans. This is the dominant term
/// for the engine's hash-heavy operators (build tables and aggregation
/// state are bounded by their inputs) and is cheap to compute — no data is
/// touched, only per-table byte counts.
pub fn estimate_query_memory(plan: &LogicalPlan, catalog: &dyn Catalog) -> u64 {
    plan.referenced_tables().iter().map(|table| catalog.table_bytes(table).unwrap_or(0)).sum()
}

/// Aggregate counters describing a controller's history, for benchmarks and
/// tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted (immediately or after queueing).
    pub admitted: u64,
    /// Queries rejected with [`QuokkaError::Overloaded`].
    pub rejected: u64,
    /// Queries that had to wait in the queue before admission.
    pub queued: u64,
    /// Highest number of concurrently running queries observed.
    pub peak_running: u64,
    /// Highest queue depth observed.
    pub peak_queued: u64,
}

#[derive(Debug, Default)]
struct State {
    running: u32,
    memory_in_use: u64,
    /// Tickets of queries waiting for admission, in arrival order.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// See the [module documentation](self).
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    state: Mutex<State>,
    capacity_freed: Condvar,
    admitted: AtomicU64,
    rejected: AtomicU64,
    queued: AtomicU64,
    peak_running: AtomicU64,
    peak_queued: AtomicU64,
}

impl AdmissionController {
    pub fn new(config: AdmissionConfig) -> Arc<Self> {
        Arc::new(AdmissionController {
            config,
            state: Mutex::new(State::default()),
            capacity_freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            peak_running: AtomicU64::new(0),
            peak_queued: AtomicU64::new(0),
        })
    }

    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Whether `state` has room for one more query of size `estimate`.
    fn admissible(&self, state: &State, estimate: u64) -> bool {
        if let Some(max) = self.config.max_concurrent {
            if state.running >= max {
                return false;
            }
        }
        if let Some(budget) = self.config.memory_budget_bytes {
            // Work-conserving: an empty cluster always admits, however big
            // the query; otherwise the estimate must fit the budget.
            if state.running > 0 && state.memory_in_use.saturating_add(estimate) > budget {
                return false;
            }
        }
        true
    }

    fn admit_locked(self: &Arc<Self>, state: &mut State, estimate: u64) -> AdmissionPermit {
        state.running += 1;
        state.memory_in_use = state.memory_in_use.saturating_add(estimate);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.peak_running.fetch_max(state.running as u64, Ordering::Relaxed);
        AdmissionPermit {
            controller: Arc::clone(self),
            estimate,
            wait: Duration::ZERO,
            queued_behind: 0,
        }
    }

    /// Request admission for a query estimated at `estimate` bytes. Returns
    /// immediately when capacity is free and nobody is queued; blocks (in
    /// FIFO order) while the bounded queue has room; fails with a typed
    /// [`QuokkaError::Overloaded`] when it does not. The returned permit
    /// releases the slot on drop.
    pub fn acquire(self: &Arc<Self>, estimate: u64) -> Result<AdmissionPermit> {
        let mut state = self.state.lock().expect("admission state poisoned");
        // Fast path — but only past an empty queue, or FIFO would break.
        if state.queue.is_empty() && self.admissible(&state, estimate) {
            return Ok(self.admit_locked(&mut state, estimate));
        }
        if state.queue.len() as u32 >= self.config.max_queued {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QuokkaError::Overloaded {
                running: state.running,
                queued: state.queue.len() as u32,
                queue_limit: self.config.max_queued,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(ticket);
        let queued_behind = state.queue.len() as u64 - 1;
        self.queued.fetch_add(1, Ordering::Relaxed);
        self.peak_queued.fetch_max(state.queue.len() as u64, Ordering::Relaxed);
        let waiting_since = Instant::now();
        loop {
            state = self.capacity_freed.wait(state).expect("admission state poisoned");
            if state.queue.front() == Some(&ticket) && self.admissible(&state, estimate) {
                state.queue.pop_front();
                let mut permit = self.admit_locked(&mut state, estimate);
                permit.wait = waiting_since.elapsed();
                permit.queued_behind = queued_behind;
                // The next waiter may also be admissible (several slots can
                // free at once); wake the pack so the new head re-checks.
                self.capacity_freed.notify_all();
                return Ok(permit);
            }
        }
    }

    fn release(&self, estimate: u64) {
        let mut state = self.state.lock().expect("admission state poisoned");
        state.running = state.running.saturating_sub(1);
        state.memory_in_use = state.memory_in_use.saturating_sub(estimate);
        drop(state);
        self.capacity_freed.notify_all();
    }

    /// Queries currently executing.
    pub fn running(&self) -> u32 {
        self.state.lock().expect("admission state poisoned").running
    }

    /// Queries currently waiting for admission.
    pub fn queue_depth(&self) -> u32 {
        self.state.lock().expect("admission state poisoned").queue.len() as u32
    }

    /// Estimated memory currently admitted.
    pub fn memory_in_use(&self) -> u64 {
        self.state.lock().expect("admission state poisoned").memory_in_use
    }

    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            peak_running: self.peak_running.load(Ordering::Relaxed),
            peak_queued: self.peak_queued.load(Ordering::Relaxed),
        }
    }
}

/// RAII admission slot: held by a running query's supervisor for the whole
/// execution (including restarts of the same query) and released on drop.
#[derive(Debug)]
pub struct AdmissionPermit {
    controller: Arc<AdmissionController>,
    estimate: u64,
    wait: Duration,
    queued_behind: u64,
}

impl AdmissionPermit {
    /// How long this query waited in the admission queue.
    pub fn wait(&self) -> Duration {
        self.wait
    }

    /// The memory estimate the query was admitted under.
    pub fn estimate(&self) -> u64 {
        self.estimate
    }

    /// How many queries were queued ahead of this one at arrival.
    pub fn queued_behind(&self) -> u64 {
        self.queued_behind
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.controller.release(self.estimate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn unlimited_config_admits_everything_immediately() {
        let ctl = AdmissionController::new(AdmissionConfig::unlimited());
        let permits: Vec<_> = (0..32).map(|_| ctl.acquire(1 << 30).unwrap()).collect();
        assert_eq!(ctl.running(), 32);
        assert_eq!(ctl.stats().rejected, 0);
        drop(permits);
        assert_eq!(ctl.running(), 0);
        assert_eq!(ctl.memory_in_use(), 0);
    }

    #[test]
    fn queue_overflow_is_a_typed_overloaded_error() {
        let ctl = AdmissionController::new(AdmissionConfig::bounded(1, 0));
        let held = ctl.acquire(0).unwrap();
        let err = ctl.acquire(0).unwrap_err();
        assert!(
            matches!(err, QuokkaError::Overloaded { running: 1, queued: 0, queue_limit: 0 }),
            "{err}"
        );
        assert_eq!(ctl.stats().rejected, 1);
        drop(held);
        // Capacity freed: the next arrival is admitted again.
        let _ok = ctl.acquire(0).unwrap();
    }

    #[test]
    fn waiters_are_granted_in_fifo_order() {
        let ctl = AdmissionController::new(AdmissionConfig::bounded(1, 8));
        let head = ctl.acquire(0).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            // Serialize enqueueing so arrival order is exactly 0,1,2,3.
            let ctl2 = Arc::clone(&ctl);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let permit = ctl2.acquire(0).unwrap();
                order2.lock().unwrap().push(i);
                assert!(permit.wait() > Duration::ZERO);
                drop(permit);
            }));
            while ctl.queue_depth() != i + 1 {
                std::thread::yield_now();
            }
        }
        drop(head);
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3], "admission must be FIFO");
        assert_eq!(ctl.stats().peak_running, 1, "the limit was 1 throughout");
        assert_eq!(ctl.stats().queued, 4);
    }

    #[test]
    fn memory_budget_serializes_heavy_queries_but_never_starves() {
        let ctl = AdmissionController::new(AdmissionConfig {
            max_concurrent: None,
            max_queued: 8,
            memory_budget_bytes: Some(100),
        });
        // An oversized query on an idle controller is admitted anyway.
        let huge = ctl.acquire(1000).unwrap();
        assert_eq!(ctl.running(), 1);
        // While it runs, even a tiny query must wait (budget exhausted).
        let ctl2 = Arc::clone(&ctl);
        let concurrent_seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&concurrent_seen);
        let waiter = std::thread::spawn(move || {
            let permit = ctl2.acquire(10).unwrap();
            seen2.store(ctl2.running() as usize, Ordering::SeqCst);
            drop(permit);
        });
        while ctl.queue_depth() != 1 {
            std::thread::yield_now();
        }
        drop(huge);
        waiter.join().unwrap();
        assert_eq!(concurrent_seen.load(Ordering::SeqCst), 1, "budget must serialize");
        // Two queries that fit together run together.
        let a = ctl.acquire(40).unwrap();
        let b = ctl.acquire(40).unwrap();
        assert_eq!(ctl.running(), 2);
        assert_eq!(ctl.memory_in_use(), 80);
        drop((a, b));
    }
}
