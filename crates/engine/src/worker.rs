//! The TaskManager side of the engine: Algorithm 1.
//!
//! Each worker machine runs one [`StageWorker`] thread per stage. The thread
//! polls the GCS for the channels of its stage that are currently assigned
//! to its worker and, for each, tries to execute the channel's outstanding
//! task:
//!
//! 1. pick the task's inputs — dynamically under
//!    [`SchedulePolicy::Dynamic`], in fixed batches under
//!    [`SchedulePolicy::StaticBatch`], or by following the previously logged
//!    lineage when the channel is being rewound during recovery;
//! 2. only consume upstream outputs whose lineage is already committed in
//!    the GCS (the core write-ahead-lineage invariant);
//! 3. run the channel's stateful operator, push the resulting slices to the
//!    downstream flight servers, back them up to local disk (and/or spool
//!    them durably, depending on the fault-tolerance strategy);
//! 4. commit the lineage, the partition-directory entry, the new channel
//!    watermarks and the next task **in a single GCS transaction**; if the
//!    push failed or the recovery barrier was raised, nothing is committed
//!    and the task is retried later.

use crate::layout::QueryLayout;
use crate::stream::StreamEvent;
use parking_lot::Mutex;
use quokka_batch::codec::{decode_partition, encode_partition};
use quokka_batch::compute::hash_partition;
use quokka_batch::{Batch, Column};
use quokka_common::config::{EngineConfig, ExecutionMode, FaultStrategy, SchedulePolicy};
use quokka_common::ids::{ChannelAddr, SeqNo, StageId, TaskName, WorkerId};
use quokka_common::metrics::MetricsRegistry;
use quokka_common::retry::RetryPolicy;
use quokka_common::{QuokkaError, Result};
use quokka_gcs::tables::{
    ChannelState, LineageRecord, LineageSource, PartitionEntry, ReplayRequest, TaskCommit,
    TaskEntry,
};
use quokka_gcs::Gcs;
use quokka_net::DataPlane;
use quokka_plan::physical::StageOperator;
use quokka_storage::{CostModel, LocalBackupStore, ObjectStore};
use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of input splits a scan task reads at a time.
const SPLITS_PER_TASK: usize = 2;

/// Row cap for coalesced output slices: partition fragments are merged up
/// to this size before boundary encoding, so each shuffle frame amortizes
/// its schema header over long column runs without unbounding batch memory.
const COALESCE_ROWS: usize = 16_384;

/// Everything shared between the worker threads, the coordinator and the
/// runtime for one query execution.
pub struct Services {
    pub config: EngineConfig,
    pub layout: Arc<QueryLayout>,
    pub gcs: Arc<Gcs>,
    pub plane: Arc<DataPlane>,
    pub backups: Vec<Arc<LocalBackupStore>>,
    /// The durable store. In-process clusters hand every worker the real
    /// [`DurableObjectStore`](quokka_storage::DurableObjectStore); process
    /// mode substitutes a proxy that reaches the driver's store over the
    /// control connection.
    pub durable: Arc<dyn ObjectStore>,
    /// Result sink: committed sink-stage partitions are sent here the moment
    /// their lineage commits, tagged with the task name so the consuming
    /// [`BatchStream`](crate::stream::BatchStream) can recognise a replayed
    /// emission as a duplicate. Nothing is buffered engine-side.
    pub sink: Mutex<std::sync::mpsc::Sender<StreamEvent>>,
    pub metrics: Arc<MetricsRegistry>,
    pub killed: Vec<AtomicBool>,
    /// Raised when the consuming stream is dropped; workers and the
    /// coordinator wind the query down at their next poll.
    pub cancelled: Arc<std::sync::atomic::AtomicBool>,
    pub cost: CostModel,
    /// Per-worker liveness counters bumped by every stage thread on every
    /// poll; the coordinator's failure detector suspects a worker whose
    /// counter stops moving for longer than the suspicion timeout.
    pub heartbeats: Vec<AtomicU64>,
    /// Chaos injection: while set, the worker's heartbeats are swallowed,
    /// simulating a network partition between a healthy worker and the
    /// coordinator (suspicion without death).
    pub heartbeat_suppressed: Vec<AtomicBool>,
    /// Workers the failure detector currently suspects. Suspects are
    /// avoided when placing reconciled channels but are *not* killed.
    pub suspected: Vec<AtomicBool>,
    /// Chaos injection: number of upcoming tasks on this worker to slow
    /// down, and the extra delay (µs) each one sleeps before executing.
    pub straggler_tasks: Vec<AtomicU32>,
    pub straggler_micros: Vec<AtomicU64>,
    /// Process mode only: the sink task names whose output partitions have
    /// actually reached the driver's result stream. In-process this is
    /// `None` — emission is an in-memory send right after the commit, so a
    /// committed-but-undelivered window cannot exist. Across processes the
    /// emission is an RPC that a SIGKILL (or plain scheduling) can separate
    /// from the commit; the coordinator holds query completion until every
    /// committed sink partition is accounted for here, rewinding the
    /// channels of the ones that never arrive.
    pub delivered_sinks: Option<Arc<Mutex<HashSet<TaskName>>>>,
}

impl Services {
    /// Whether a worker has been killed by fault injection.
    pub fn is_killed(&self, worker: WorkerId) -> bool {
        self.killed[worker as usize].load(Ordering::SeqCst)
    }

    /// Kill a worker: its threads stop, its flight server and local backups
    /// are wiped.
    pub fn kill_worker(&self, worker: WorkerId) {
        self.killed[worker as usize].store(true, Ordering::SeqCst);
        let _ = self.plane.fail_worker(worker);
        self.backups[worker as usize].fail();
        self.metrics.add_failure();
    }

    /// Workers that have not been killed.
    pub fn live_workers(&self) -> Vec<WorkerId> {
        (0..self.layout.workers()).filter(|&w| !self.is_killed(w)).collect()
    }

    /// Durable key of one source-table split.
    pub fn table_split_key(table: &str, split: u64) -> String {
        format!("tables/{table}/{split:08}")
    }

    /// Durable key of one spooled slice.
    pub fn spool_key(partition: TaskName, consumer: ChannelAddr) -> String {
        format!(
            "spool/{:04}/{:04}/{:08}/{:04}/{:04}",
            partition.stage, partition.channel, partition.seq, consumer.stage, consumer.channel
        )
    }

    /// Whether the consuming result stream has been dropped.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    /// Record one liveness beat for `worker` (dropped while suppressed).
    pub fn heartbeat(&self, worker: WorkerId) {
        if !self.heartbeat_suppressed[worker as usize].load(Ordering::Relaxed) {
            self.heartbeats[worker as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn heartbeat_count(&self, worker: WorkerId) -> u64 {
        self.heartbeats[worker as usize].load(Ordering::Relaxed)
    }

    pub fn suppress_heartbeats(&self, worker: WorkerId, suppressed: bool) {
        self.heartbeat_suppressed[worker as usize].store(suppressed, Ordering::SeqCst);
    }

    pub fn set_suspected(&self, worker: WorkerId, suspected: bool) {
        self.suspected[worker as usize].store(suspected, Ordering::SeqCst);
    }

    pub fn is_suspected(&self, worker: WorkerId) -> bool {
        self.suspected[worker as usize].load(Ordering::SeqCst)
    }

    /// Workers eligible to receive reconciled channels: live and not
    /// currently under suspicion. Falls back to every live worker if the
    /// detector suspects all of them.
    pub fn placement_pool(&self) -> Vec<WorkerId> {
        let live = self.live_workers();
        let trusted: Vec<WorkerId> =
            live.iter().copied().filter(|&w| !self.is_suspected(w)).collect();
        if trusted.is_empty() {
            live
        } else {
            trusted
        }
    }

    /// Chaos injection: make the next `tasks` tasks on `worker` sleep an
    /// extra `delay` before executing.
    pub fn set_straggler(&self, worker: WorkerId, tasks: u32, delay: Duration) {
        self.straggler_micros[worker as usize].store(delay.as_micros() as u64, Ordering::SeqCst);
        self.straggler_tasks[worker as usize].fetch_add(tasks, Ordering::SeqCst);
    }

    /// Consume one straggler-task token for `worker`, returning the delay to
    /// apply, if any.
    pub fn take_straggler_delay(&self, worker: WorkerId) -> Option<Duration> {
        self.straggler_tasks[worker as usize]
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .ok()
            .map(|_| {
                Duration::from_micros(self.straggler_micros[worker as usize].load(Ordering::SeqCst))
            })
    }

    /// Emit one committed sink partition to the result stream. A send
    /// failure means the consumer is gone; the cancellation flag (set by the
    /// stream's drop) winds the query down separately, so it is ignored.
    pub fn emit_result(&self, name: TaskName, batches: Vec<Batch>) {
        let _ = self.sink.lock().send(StreamEvent::Batch { name, batches });
    }
}

/// Per-channel local execution state owned by a [`StageWorker`].
struct ChannelRuntime {
    op: Box<dyn StageOperator>,
    expected_seq: SeqNo,
    finished_inputs: HashSet<usize>,
    finalized: bool,
}

/// What a task is about to consume.
enum TaskInputs {
    /// Read these source splits from the durable store.
    Splits(Vec<u64>),
    /// Consume `partitions` (already peeked from the flight inbox) produced
    /// by `upstream`, advancing watermark slot `flat_index`.
    Upstream {
        input_index: usize,
        flat_index: usize,
        upstream: ChannelAddr,
        start_seq: SeqNo,
        partitions: Vec<(TaskName, Vec<Batch>)>,
    },
    /// Consume nothing; fire end-of-stream notifications / finalize only.
    FinalizeOnly,
    /// Nothing can be done right now; try again later.
    NotReady,
}

/// One worker's executor thread for one stage.
pub struct StageWorker {
    worker: WorkerId,
    stage: StageId,
    services: Arc<Services>,
    channels: BTreeMap<ChannelAddr, ChannelRuntime>,
}

impl StageWorker {
    pub fn new(worker: WorkerId, stage: StageId, services: Arc<Services>) -> Self {
        StageWorker { worker, stage, services, channels: BTreeMap::new() }
    }

    /// Main loop: runs until the query finishes, fails, or this worker is
    /// killed.
    ///
    /// Idle polling backs off exponentially (`poll_interval` up to ~5ms):
    /// a stage whose inputs are not flowing should not spin at kHz rates.
    /// With one thread per (worker, stage) pair, constant-rate polling
    /// starves busy threads on small machines — enough to stall a query
    /// outright when several engines share a core.
    pub fn run(mut self) {
        let poll = self.services.config.cluster.poll_interval;
        // Idle backoff shares the configured retry policy's shape but polls
        // from `poll_interval` up to ~5ms; jitter decorrelates the stage
        // threads so they do not thunder against the GCS in lockstep.
        let idle_policy = RetryPolicy {
            base_delay: poll,
            max_delay: Duration::from_millis(5).max(poll),
            ..self.services.config.retry
        };
        let idle_seed = self
            .services
            .config
            .seed
            .wrapping_add(self.worker as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.stage as u64);
        let mut idle = idle_policy.backoff_unbounded(idle_seed);
        loop {
            self.services.heartbeat(self.worker);
            if self.services.is_killed(self.worker) {
                return;
            }
            let gcs = &self.services.gcs;
            if gcs.is_query_done() || gcs.query_error().is_some() || self.services.is_cancelled() {
                return;
            }
            if gcs.is_paused() {
                std::thread::sleep(Duration::from_micros(100));
                continue;
            }
            let mut progressed = self.handle_replays();
            for addr in self.services.layout.channels_of(self.stage) {
                if self.services.is_killed(self.worker) {
                    return;
                }
                if self.services.gcs.is_paused() {
                    break;
                }
                let Some(state) = self.services.gcs.get_channel(addr) else { continue };
                if state.worker != self.worker || state.done {
                    continue;
                }
                match self.try_task(&state) {
                    Ok(true) => progressed = true,
                    Ok(false) => {}
                    Err(e) if e.is_retryable() => {}
                    Err(e) => {
                        self.services.gcs.set_query_error(&format!(
                            "worker {} stage {}: {e}",
                            self.worker, self.stage
                        ));
                        return;
                    }
                }
            }
            if !progressed {
                idle.sleep();
            } else {
                idle.reset();
            }
        }
    }

    /// Serve replay requests addressed to this worker (recovery): re-push a
    /// backed-up (or spooled) slice to the consumer's current worker.
    ///
    /// Failure handling is typed, not best-effort: an unreadable slice is
    /// reported to the coordinator as a lost partition (it rewinds the
    /// producer for a deeper lineage replay), a retryable push failure
    /// re-queues the request against a bounded attempt budget, and a fatal
    /// push error — or an exhausted budget — fails the query instead of
    /// re-queueing forever.
    fn handle_replays(&mut self) -> bool {
        let services = &self.services;
        let requests = services.gcs.replays_for_worker(self.worker);
        let mut progressed = false;
        for request in requests {
            // Atomically claim the request so only one of this worker's
            // stage threads serves it.
            if !services.gcs.remove_replay(&request) {
                continue;
            }
            let payload = services.backups[self.worker as usize]
                .get(request.partition, request.consumer)
                .or_else(|_| {
                    services.durable.get(&Services::spool_key(request.partition, request.consumer))
                });
            let batches = match payload.and_then(|p| decode_partition(&p)) {
                Ok(batches) => batches,
                Err(_) => {
                    // The slice is gone (e.g. a chaos-wiped backup store).
                    // Flag it so the coordinator rewinds the producer and
                    // regenerates it from lineage.
                    services.gcs.mark_partition_lost(request.partition);
                    continue;
                }
            };
            let Some(consumer_state) = services.gcs.get_channel(request.consumer) else { continue };
            if consumer_state.done {
                // The consumer finished while the request was queued; the
                // slice is no longer needed (and its worker may be dead).
                continue;
            }
            let pushed = services.plane.push(
                self.worker,
                consumer_state.worker,
                request.consumer,
                request.partition,
                batches,
            );
            match pushed {
                Ok(()) => progressed = true,
                Err(e) if e.is_retryable() => {
                    // Re-queue, charging the bounded attempt budget — unless
                    // the failure is one the coordinator is already
                    // repairing (barrier raised, or the destination worker
                    // killed and about to be reconciled away).
                    // A typed WorkerFailed also waits uncharged: the dead
                    // destination will be detected (heartbeat stall) and the
                    // consumer reassigned, but detection takes a suspicion
                    // window while retries burn in microseconds — charging
                    // here would exhaust the budget before the coordinator
                    // can act. The stall watchdog bounds the wait. In
                    // process mode the coordinator's kill list lives in
                    // another OS process, so also consult the authoritative
                    // GCS failure markers the commit barrier uses.
                    let repair_pending = services.gcs.is_paused()
                        || services.is_killed(consumer_state.worker)
                        || services.gcs.is_worker_failed(consumer_state.worker)
                        || matches!(e, QuokkaError::WorkerFailed(_));
                    let attempts = request.attempts + u32::from(!repair_pending);
                    if attempts > services.config.retry.max_attempts {
                        services.gcs.set_query_error(
                            &QuokkaError::RetriesExhausted {
                                operation: format!("replay of {}", request.partition),
                                attempts,
                                last: Box::new(e),
                            }
                            .to_string(),
                        );
                        return progressed;
                    }
                    services.gcs.add_replay(&ReplayRequest { attempts, ..request });
                    services.metrics.add_replay_requeue();
                }
                Err(e) => {
                    // A non-retryable destination failure: give up loudly
                    // instead of spinning on the request.
                    services.gcs.set_query_error(&format!(
                        "replay of {} to {} failed fatally: {e}",
                        request.partition, request.consumer
                    ));
                    return progressed;
                }
            }
        }
        progressed
    }

    /// Try to execute the outstanding task of one channel. Returns whether a
    /// task was committed.
    fn try_task(&mut self, state: &ChannelState) -> Result<bool> {
        let services = Arc::clone(&self.services);
        let layout = &services.layout;
        let addr = state.addr;

        // Stagewise (blocking) execution: a non-scan stage may only run once
        // every upstream channel has finished.
        if services.config.mode == ExecutionMode::Stagewise && layout.num_inputs(self.stage) > 0 {
            let all_done = layout
                .upstream_channels(self.stage)
                .iter()
                .all(|(_, up)| services.gcs.get_channel(*up).map(|s| s.done).unwrap_or(false));
            if !all_done {
                return Ok(false);
            }
        }

        let Some(task) = services.gcs.get_task(addr) else {
            if std::env::var_os("QUOKKA_TRACE").is_some() && state.rewind_until.is_some() {
                eprintln!("[trace] {} rewinding but has no task entry", addr);
            }
            return Ok(false);
        };
        if task.worker != self.worker {
            if std::env::var_os("QUOKKA_TRACE").is_some() && state.rewind_until.is_some() {
                eprintln!(
                    "[trace] {} rewinding on worker {} but task {} points at worker {}",
                    addr, self.worker, task.task, task.worker
                );
            }
            return Ok(false);
        }
        let seq = task.task.seq;

        // Synchronise the local operator instance with the GCS's view of the
        // channel (handles first contact, rewinds and reassignment).
        if !self.channels.contains_key(&addr) || self.channels[&addr].expected_seq != seq {
            if seq == 0 || !self.channels.contains_key(&addr) {
                let op = layout.graph.stage(self.stage).op.instantiate()?;
                self.channels.insert(
                    addr,
                    ChannelRuntime {
                        op,
                        expected_seq: seq,
                        finished_inputs: HashSet::new(),
                        finalized: false,
                    },
                );
            } else {
                // A stateless channel picked up at a non-zero sequence number
                // (only stateless channels are ever resumed without rewind).
                let rt = self.channels.get_mut(&addr).expect("checked above");
                rt.expected_seq = seq;
            }
        }

        let replay_mode = state.rewind_until.map(|until| seq <= until).unwrap_or(false);
        let (inputs, mut to_finish, mut finalize) =
            if replay_mode { self.replay_inputs(state, seq)? } else { self.dynamic_inputs(state)? };
        let inputs = match inputs {
            TaskInputs::NotReady => {
                // If the channel is starved of a partition its upstream has
                // already committed, pull it back from its backup owner.
                self.request_missing_inputs(state);
                return Ok(false);
            }
            other => other,
        };

        // ----- execute the operator ---------------------------------------
        // Chaos injection: a straggling worker sleeps before each of its
        // next few tasks, exercising the schedulers' tolerance to skew.
        if let Some(delay) = services.take_straggler_delay(self.worker) {
            std::thread::sleep(delay);
        }
        let rt = self.channels.get_mut(&addr).expect("runtime inserted above");
        let mut outputs: Vec<Batch> = Vec::new();
        let lineage_source = match &inputs {
            TaskInputs::Splits(splits) => {
                let scan = layout
                    .graph
                    .stage(self.stage)
                    .scan
                    .clone()
                    .ok_or_else(|| QuokkaError::internal("split inputs on a non-scan stage"))?;
                for split in splits {
                    let payload =
                        services.durable.get(&Services::table_split_key(&scan.table, *split))?;
                    for batch in decode_partition(&payload)? {
                        // Stored splits carry the full table schema; a scan
                        // narrowed by projection pruning reads a column
                        // subset.
                        let batch = batch.select_to(&scan.schema)?;
                        outputs.extend(rt.op.push(0, &batch)?);
                    }
                }
                LineageSource::InputSplits { splits: splits.clone() }
            }
            TaskInputs::Upstream { input_index, upstream, start_seq, partitions, .. } => {
                for (_, batches) in partitions {
                    for batch in batches {
                        outputs.extend(rt.op.push(*input_index, batch)?);
                    }
                }
                LineageSource::Upstream {
                    upstream: *upstream,
                    start_seq: *start_seq,
                    count: partitions.len() as u32,
                }
            }
            TaskInputs::FinalizeOnly => LineageSource::Finalize,
            TaskInputs::NotReady => unreachable!("handled above"),
        };

        if !replay_mode {
            // Which end-of-stream notifications become true after this task?
            to_finish = self.newly_finished_inputs(state, &inputs)?;
            // Scan stages finalize based on split exhaustion (decided when
            // the inputs were chosen), not on upstream end-of-stream.
            if !layout.graph.stage(self.stage).is_scan() {
                finalize = self.should_finalize(state, &inputs, &to_finish)?;
            }
        }
        let rt = self.channels.get_mut(&addr).expect("runtime present");
        for &input_index in &to_finish {
            if rt.finished_inputs.insert(input_index as usize) {
                outputs.extend(rt.op.finish_input(input_index as usize)?);
            }
        }
        if finalize && !rt.finalized {
            outputs.extend(rt.op.finish()?);
            rt.finalized = true;
        }

        // ----- slice, back up, publish, commit -------------------------------
        let out_name = addr.task(seq);
        let consumer = layout.consumer_of(self.stage);
        let output_rows: u64 = outputs.iter().map(|b| b.num_rows() as u64).sum();
        let strategy = services.config.fault;

        // Slice the output for the consuming stage and write the upstream
        // backup / durable spool copies (both idempotent) before publishing.
        let slices = match consumer {
            Some((consumer_stage, _)) => self.slice_outputs(&outputs, consumer_stage)?,
            None => Vec::new(),
        };
        let mut partition_bytes = 0u64;
        if consumer.is_some() {
            for (consumer_addr, batches) in &slices {
                if strategy.upstream_backup() || strategy.spools() {
                    let payload = encode_partition(batches);
                    partition_bytes += payload.len() as u64;
                    if strategy.upstream_backup() {
                        // The backup store only sees encoded bytes; record
                        // the plain footprint here where the batches exist.
                        services.metrics.add_backup_raw_bytes(
                            batches.iter().map(|b| b.byte_size() as u64).sum(),
                        );
                        services.backups[self.worker as usize].put(
                            out_name,
                            *consumer_addr,
                            payload.clone(),
                        )?;
                    }
                    if strategy.spools() {
                        services
                            .durable
                            .put(Services::spool_key(out_name, *consumer_addr), payload);
                    }
                } else {
                    partition_bytes += batches.iter().map(|b| b.byte_size() as u64).sum::<u64>();
                }
            }
        } else {
            // Sink stage: the output is the query result.
            partition_bytes = outputs.iter().map(|b| b.byte_size() as u64).sum();
        }

        // Periodic state checkpointing (the expensive strategy of §II-B3,
        // included for the checkpoint-overhead ablation).
        if let FaultStrategy::Checkpointing { interval_tasks } = strategy {
            let rt = self.channels.get_mut(&addr).expect("runtime present");
            if layout.graph.stage(self.stage).is_stateful()
                && interval_tasks > 0
                && seq % interval_tasks == 0
            {
                let state_bytes = rt.op.state_bytes();
                services.metrics.add_checkpoint_bytes(state_bytes as u64);
                services.durable.put(
                    format!("ckpt/{:04}/{:04}/{:08}", addr.stage, addr.channel, seq),
                    bytes::Bytes::from(vec![0u8; state_bytes]),
                );
            }
        }

        // ----- single-transaction commit ------------------------------------
        let mut new_state = state.clone();
        new_state.committed_seq = Some(seq);
        match &inputs {
            TaskInputs::Splits(splits) => {
                new_state.splits_consumed += splits.len() as u32;
            }
            TaskInputs::Upstream { flat_index, partitions, .. } => {
                new_state.consumed[*flat_index] += partitions.len() as u32;
            }
            TaskInputs::FinalizeOnly | TaskInputs::NotReady => {}
        }
        let scan_done = layout.graph.stage(self.stage).is_scan()
            && new_state.splits_consumed as usize >= layout.splits_for(addr).len();
        new_state.done = finalize || scan_done;
        if let Some(until) = new_state.rewind_until {
            if seq >= until {
                new_state.rewind_until = None;
            }
        }
        let next_task = if new_state.done {
            None
        } else {
            Some(TaskEntry { task: addr.task(seq + 1), worker: self.worker })
        };
        let commit = TaskCommit {
            worker: self.worker,
            lineage: LineageRecord {
                task: out_name,
                source: lineage_source,
                finished_inputs: to_finish.clone(),
                finalize,
                output_rows,
                output_bytes: partition_bytes,
            },
            partition: PartitionEntry {
                name: out_name,
                owner: self.worker,
                backed_up: strategy.upstream_backup() && consumer.is_some(),
                spooled: strategy.spools() && consumer.is_some(),
                bytes: partition_bytes,
            },
            channel_state: new_state.clone(),
            prev_channel: Some(state.clone()),
            next_task,
        };

        // The channel's operator has already absorbed this task's inputs, so
        // the task must eventually commit; silently dropping it and
        // re-executing later would apply the same inputs to the state
        // variable twice. The publish loop therefore retries pushing and
        // committing until it succeeds — giving up only when the recovery
        // coordinator has rewound or reassigned this channel (at which point
        // the local operator instance is discarded and rebuilt from the
        // logged lineage), this worker itself has been killed, or the push
        // failed with a fatal (non-retryable) error. Waits between attempts
        // back off exponentially with jitter rather than sleeping a fixed
        // interval.
        let mut publish_backoff = services.config.retry.backoff_unbounded(
            services.config.seed ^ out_name.seq as u64 ^ (self.worker as u64) << 32,
        );
        loop {
            services.heartbeat(self.worker);
            if services.is_killed(self.worker)
                || services.gcs.is_query_done()
                || services.gcs.query_error().is_some()
            {
                self.channels.remove(&addr);
                return Ok(false);
            }
            let channel_untouched = services
                .gcs
                .get_channel(addr)
                .map(|c| {
                    c.worker == self.worker
                        && c.committed_seq == state.committed_seq
                        && c.rewind_until == state.rewind_until
                })
                .unwrap_or(false)
                && services
                    .gcs
                    .get_task(addr)
                    .map(|t| t.task.seq == seq && t.worker == self.worker)
                    .unwrap_or(false);
            if !channel_untouched {
                self.channels.remove(&addr);
                return Ok(false);
            }
            if services.gcs.is_paused() {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            // Push every slice (possibly empty) so downstream watermarks can
            // always advance. Consumers may have been reassigned since the
            // previous attempt, so the destination worker is re-resolved.
            let mut push_failed = false;
            for (consumer_addr, batches) in &slices {
                let Some(consumer_state) = services.gcs.get_channel(*consumer_addr) else {
                    push_failed = true;
                    break;
                };
                if consumer_state.done {
                    // A finished consumer never takes more input. Its state
                    // may still name a long-dead worker (recovery only
                    // repairs unfinished channels), so pushing would fail
                    // retryably forever — e.g. a replaying producer whose
                    // other consumers already completed.
                    continue;
                }
                match services.plane.push(
                    self.worker,
                    consumer_state.worker,
                    *consumer_addr,
                    out_name,
                    batches.clone(),
                ) {
                    Ok(()) => {}
                    Err(e) if e.is_retryable() => {
                        push_failed = true;
                        break;
                    }
                    Err(e) => {
                        // A fatal push error cannot be repaired by the
                        // coordinator; retrying would spin forever.
                        self.channels.remove(&addr);
                        return Err(e);
                    }
                }
            }
            if push_failed {
                // Algorithm 1: "if push results failed ... do not commit".
                // Wait (with backoff) for the coordinator to repair the
                // destination.
                services.metrics.add_push_retry();
                if std::env::var_os("QUOKKA_TRACE").is_some() {
                    eprintln!("[trace] {} push retry for task {seq}", addr);
                }
                publish_backoff.sleep();
                continue;
            }
            if services.gcs.commit_task(&commit).is_ok() {
                break;
            }
            services.metrics.add_push_retry();
            if std::env::var_os("QUOKKA_TRACE").is_some() {
                eprintln!("[trace] {} commit abort for task {seq}", addr);
            }
            publish_backoff.sleep();
        }
        if std::env::var_os("QUOKKA_TRACE").is_some() {
            eprintln!(
                "[trace] worker={} task={} source={:?} finish={:?} finalize={} rows={} done={}",
                self.worker,
                out_name,
                commit.lineage.source,
                to_finish,
                finalize,
                output_rows,
                new_state.done
            );
        }

        // ----- post-commit bookkeeping --------------------------------------
        if let TaskInputs::Upstream { partitions, .. } = &inputs {
            let server = services.plane.server(self.worker)?;
            for (name, _) in partitions {
                let _ = server.take(addr, *name);
            }
        }
        if consumer.is_none() {
            // A replayed sink task re-emits a partition the stream already
            // saw (and deduplicates by name); only first-time emissions
            // count toward the result metrics.
            if !replay_mode {
                services.metrics.add_output_rows(output_rows);
                if output_rows > 0 {
                    services.metrics.add_result_batch();
                }
            }
            services.emit_result(out_name, outputs);
        }
        services.metrics.add_task(replay_mode);
        let rt = self.channels.get_mut(&addr).expect("runtime present");
        rt.expected_seq = seq + 1;
        if new_state.done {
            self.channels.remove(&addr);
        }
        Ok(true)
    }

    /// Hash-partition output batches into one slice per consumer channel.
    fn slice_outputs(
        &self,
        outputs: &[Batch],
        consumer_stage: StageId,
    ) -> Result<Vec<(ChannelAddr, Vec<Batch>)>> {
        let layout = &self.services.layout;
        let consumer_channels = layout.channel_count(consumer_stage) as usize;
        let partition_by = &layout.graph.stage(self.stage).partition_by;
        let mut slices: Vec<Vec<Batch>> = vec![Vec::new(); consumer_channels];
        if consumer_channels == 1 || partition_by.is_empty() {
            slices[0] = outputs.to_vec();
        } else {
            for batch in outputs {
                for (channel, piece) in
                    hash_partition(batch, partition_by, consumer_channels)?.into_iter().enumerate()
                {
                    if piece.num_rows() > 0 {
                        slices[channel].push(piece);
                    }
                }
            }
        }
        // Boundary compression: everything leaving this worker (shuffle
        // pushes, upstream backups, durable spools) ships these slices, so
        // coalesce the per-batch partition fragments (each wire frame
        // carries a full schema header, and column encodings only pay off
        // over long runs) and re-encode plain columns here where the win is
        // paid for once. Both steps are deterministic, keeping replayed
        // partitions byte-identical to the originals.
        for batches in &mut slices {
            if batches.len() > 1 {
                *batches = Batch::concat(batches)?.chunks(COALESCE_ROWS);
            }
            for batch in batches.iter_mut() {
                *batch = Batch::try_new(
                    batch.schema().clone(),
                    batch.columns().iter().map(Column::encode_auto).collect(),
                )?;
            }
        }
        Ok(slices
            .into_iter()
            .enumerate()
            .map(|(c, batches)| (ChannelAddr::new(consumer_stage, c as u32), batches))
            .collect())
    }

    /// Re-request replays for committed upstream partitions this channel
    /// needs but cannot find in its local inbox.
    ///
    /// Recovery normally schedules every replay a rewound channel needs, but
    /// a slice can still be lost to rare races — e.g. a pre-rewind task
    /// incarnation committing, getting descheduled, and then running its
    /// post-commit inbox cleanup *after* recovery re-delivered the same
    /// slice for the rewound incarnation on the same worker. A producer that
    /// has committed a partition never re-pushes it spontaneously, so
    /// without this pull path the channel would starve forever (watchdog
    /// abort). The `has_slice` guard keeps the common case write-free: a
    /// request is only issued while the slice is genuinely absent, and a
    /// served replay makes it present again.
    fn request_missing_inputs(&self, state: &ChannelState) {
        let services = &self.services;
        let Ok(server) = services.plane.server(self.worker) else { return };
        for (flat_index, (_, upstream)) in
            services.layout.upstream_channels(self.stage).iter().enumerate()
        {
            let Some(upstream_state) = services.gcs.get_channel(*upstream) else { continue };
            if upstream_state.rewind_until.is_some() {
                // The producer is itself rewinding; it will re-push.
                continue;
            }
            let consumed = state.consumed.get(flat_index).copied().unwrap_or(0);
            if consumed >= upstream_state.outputs_produced() {
                continue;
            }
            let name = upstream.task(consumed);
            if server.has_slice(state.addr, name) || !services.gcs.lineage_committed(name) {
                continue;
            }
            let Some(entry) = services.gcs.get_partition(name) else { continue };
            let owner = if entry.backed_up && !services.is_killed(entry.owner) {
                Some(entry.owner)
            } else if entry.spooled {
                services.live_workers().first().copied()
            } else {
                None
            };
            if std::env::var_os("QUOKKA_TRACE").is_some() {
                eprintln!("[trace] missing-input {} for {} owner={owner:?}", name, state.addr);
            }
            if let Some(owner) = owner {
                services.gcs.add_replay(&ReplayRequest::new(owner, name, state.addr));
            }
        }
    }

    /// Inputs for a task executed in replay mode: follow the logged lineage
    /// exactly (§IV-C: a rewound task "is no longer free to dynamically
    /// choose its input data partitions").
    fn replay_inputs(
        &self,
        state: &ChannelState,
        seq: SeqNo,
    ) -> Result<(TaskInputs, Vec<u32>, bool)> {
        let services = &self.services;
        let record = services.gcs.get_lineage(state.addr.task(seq)).ok_or_else(|| {
            QuokkaError::internal(format!(
                "missing lineage for rewound task {}",
                state.addr.task(seq)
            ))
        })?;
        let inputs = match &record.source {
            LineageSource::InputSplits { splits } => TaskInputs::Splits(splits.clone()),
            LineageSource::Finalize => TaskInputs::FinalizeOnly,
            LineageSource::Upstream { upstream, start_seq, count } => {
                let server = services.plane.server(self.worker)?;
                let mut partitions = Vec::with_capacity(*count as usize);
                for s in *start_seq..(*start_seq + *count) {
                    let name = upstream.task(s);
                    match server.peek(state.addr, name) {
                        Some(batches) => partitions.push((name, batches)),
                        None => {
                            if std::env::var_os("QUOKKA_TRACE").is_some() {
                                eprintln!(
                                    "[trace] replay {} task {seq} missing input {name}",
                                    state.addr
                                );
                            }
                            return Ok((TaskInputs::NotReady, vec![], false));
                        }
                    }
                }
                let flat_index = services.layout.watermark_index(self.stage, *upstream)?;
                let input_index = services
                    .layout
                    .upstream_channels(self.stage)
                    .iter()
                    .find(|(_, addr)| addr == upstream)
                    .map(|(idx, _)| *idx)
                    .unwrap_or(0);
                TaskInputs::Upstream {
                    input_index,
                    flat_index,
                    upstream: *upstream,
                    start_seq: *start_seq,
                    partitions,
                }
            }
        };
        Ok((inputs, record.finished_inputs.clone(), record.finalize))
    }

    /// Inputs for a task executed normally, under the configured scheduling
    /// policy.
    fn dynamic_inputs(&self, state: &ChannelState) -> Result<(TaskInputs, Vec<u32>, bool)> {
        let services = &self.services;
        let layout = &services.layout;
        let addr = state.addr;

        // Scan stages read splits from the durable store.
        if layout.graph.stage(self.stage).is_scan() {
            let assigned = layout.splits_for(addr);
            let consumed = state.splits_consumed as usize;
            if consumed < assigned.len() {
                let take = SPLITS_PER_TASK.min(assigned.len() - consumed);
                return Ok((
                    TaskInputs::Splits(assigned[consumed..consumed + take].to_vec()),
                    vec![],
                    false,
                ));
            }
            // No splits left (possibly none were assigned at all): emit a
            // final empty partition so downstream watermarks can complete.
            let already_finalized =
                self.channels.get(&addr).map(|rt| rt.finalized).unwrap_or(false);
            if !already_finalized {
                return Ok((TaskInputs::FinalizeOnly, vec![], true));
            }
            return Ok((TaskInputs::NotReady, vec![], false));
        }

        let max_inputs = match services.config.schedule {
            SchedulePolicy::Dynamic { max_inputs_per_task } => max_inputs_per_task,
            SchedulePolicy::StaticBatch { batch } => batch,
        };
        let server = services.plane.server(self.worker)?;
        for (flat_index, (input_index, upstream)) in
            layout.upstream_channels(self.stage).iter().enumerate()
        {
            let consumed = state.consumed[flat_index];
            // Committed, contiguous, locally available outputs starting at
            // the watermark (the set I of Algorithm 1).
            let available = server.available_from(addr, *upstream, consumed);
            let mut count = 0u32;
            for expected in 0..max_inputs {
                let name = upstream.task(consumed + expected);
                if available.binary_search(&name).is_ok() && services.gcs.lineage_committed(name) {
                    count += 1;
                } else {
                    break;
                }
            }
            if count == 0 {
                continue;
            }
            // Static lineage: always take exactly `batch` inputs, except for
            // the final partial batch of a finished upstream channel.
            if let SchedulePolicy::StaticBatch { batch } = services.config.schedule {
                if count < batch {
                    let upstream_state = services.gcs.get_channel(*upstream);
                    let is_final_partial = upstream_state
                        .map(|s| s.done && consumed + count >= s.outputs_produced())
                        .unwrap_or(false);
                    if !is_final_partial {
                        continue;
                    }
                }
            }
            let mut partitions = Vec::with_capacity(count as usize);
            for s in consumed..consumed + count {
                let name = upstream.task(s);
                match server.peek(addr, name) {
                    Some(batches) => partitions.push((name, batches)),
                    None => return Ok((TaskInputs::NotReady, vec![], false)),
                }
            }
            return Ok((
                TaskInputs::Upstream {
                    input_index: *input_index,
                    flat_index,
                    upstream: *upstream,
                    start_seq: consumed,
                    partitions,
                },
                vec![],
                false,
            ));
        }

        // Nothing to consume: maybe every upstream is exhausted and it is
        // time to finalize the channel.
        if self.all_inputs_exhausted(state, None)? {
            let already_finalized =
                self.channels.get(&addr).map(|rt| rt.finalized).unwrap_or(false);
            if !already_finalized {
                return Ok((TaskInputs::FinalizeOnly, vec![], true));
            }
        }
        Ok((TaskInputs::NotReady, vec![], false))
    }

    /// End-of-stream notifications that become true once `inputs` has been
    /// consumed: operator input indices whose upstream channels are all done
    /// and fully consumed.
    fn newly_finished_inputs(&self, state: &ChannelState, inputs: &TaskInputs) -> Result<Vec<u32>> {
        let layout = &self.services.layout;
        let num_inputs = layout.num_inputs(self.stage);
        let mut fired = Vec::new();
        let already =
            self.channels.get(&state.addr).map(|rt| rt.finished_inputs.clone()).unwrap_or_default();
        for input_index in 0..num_inputs {
            if already.contains(&input_index) {
                continue;
            }
            if self.input_exhausted(state, inputs, input_index)? {
                fired.push(input_index as u32);
            }
        }
        Ok(fired)
    }

    /// Whether operator input `input_index` is fully consumed after applying
    /// `inputs` on top of `state`.
    fn input_exhausted(
        &self,
        state: &ChannelState,
        inputs: &TaskInputs,
        input_index: usize,
    ) -> Result<bool> {
        let layout = &self.services.layout;
        for (flat, (idx, upstream)) in layout.upstream_channels(self.stage).iter().enumerate() {
            if *idx != input_index {
                continue;
            }
            let mut consumed = state.consumed[flat];
            if let TaskInputs::Upstream { flat_index, partitions, .. } = inputs {
                if *flat_index == flat {
                    consumed += partitions.len() as u32;
                }
            }
            match self.services.gcs.get_channel(*upstream) {
                Some(up) if up.done && consumed >= up.outputs_produced() => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Whether the channel can finalize after this task (every operator input
    /// exhausted).
    fn should_finalize(
        &self,
        state: &ChannelState,
        inputs: &TaskInputs,
        _newly_finished: &[u32],
    ) -> Result<bool> {
        self.all_inputs_exhausted(state, Some(inputs))
    }

    fn all_inputs_exhausted(
        &self,
        state: &ChannelState,
        inputs: Option<&TaskInputs>,
    ) -> Result<bool> {
        let layout = &self.services.layout;
        let num_inputs = layout.num_inputs(self.stage);
        if num_inputs == 0 {
            // Scan stages finalize when their splits run out (handled by the
            // caller).
            return Ok(true);
        }
        let default_inputs = TaskInputs::FinalizeOnly;
        let inputs = inputs.unwrap_or(&default_inputs);
        for input_index in 0..num_inputs {
            if !self.input_exhausted(state, inputs, input_index)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Spawn every stage thread for every worker. Returns the join handles.
pub fn spawn_workers(services: &Arc<Services>) -> Vec<std::thread::JoinHandle<()>> {
    spawn_workers_for(services, 0..services.layout.workers())
}

/// Spawn stage threads for a subset of the cluster's workers. This is how a
/// process-mode worker process hosts only its assigned worker range while
/// the layout still describes the whole cluster.
pub fn spawn_workers_for(
    services: &Arc<Services>,
    workers: std::ops::Range<WorkerId>,
) -> Vec<std::thread::JoinHandle<()>> {
    let mut handles = Vec::new();
    for worker in workers {
        for stage in 0..services.layout.graph.stages.len() as StageId {
            let services = Arc::clone(services);
            let handle = std::thread::Builder::new()
                .name(format!("quokka-w{worker}-s{stage}"))
                .spawn(move || StageWorker::new(worker, stage, services).run())
                .expect("failed to spawn worker thread");
            handles.push(handle);
        }
    }
    handles
}
