/root/repo/target/debug/deps/ablation_checkpoint-67de7e60f09b80f0.d: crates/bench/src/bin/ablation_checkpoint.rs Cargo.toml

/root/repo/target/debug/deps/libablation_checkpoint-67de7e60f09b80f0.rmeta: crates/bench/src/bin/ablation_checkpoint.rs Cargo.toml

crates/bench/src/bin/ablation_checkpoint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
