//! Compact binary row-key encoding for hash-based operators.
//!
//! Group-by and join keys used to be materialized as per-row `ScalarValue`
//! vectors and stringified `BTreeMap` keys. This module replaces both with a
//! typed encoding:
//!
//! * **u64 fast path** — a single `Int64`/`Date`/`Bool` key column (the common
//!   TPC-H case) is used directly as a `u64` hash-map key, with no encoding
//!   buffer at all.
//! * **byte path** — multi-column or string/float keys are encoded row-wise
//!   into one flat `Vec<u8>` with per-row offsets; only *new* keys (one per
//!   distinct group / build key, never per row) are copied into the map.
//!
//! Equality semantics follow `ScalarValue::total_cmp`: an `Int64` key equals
//! a `Float64` key holding the same integral value (floats that are integral
//! and exactly representable as `i64` are canonicalized to the integer
//! encoding, see [`canonical_i64`]), `-0.0` stays distinct from `0.0`, and
//! `NaN` equals itself bit-for-bit. Values of different non-coercible types
//! never collide because every encoded value carries a type tag. One known
//! divergence from the scalar path it replaced: `total_cmp` coerced the
//! *integer* side to `f64` lossily, so an `Int64` beyond 2^53 could compare
//! equal to a nearby `Float64`; the encoding compares such pairs exactly and
//! keeps them distinct.

use crate::column::Column;
use crate::datatype::DataType;
use quokka_common::rng::mix64;
use quokka_common::{QuokkaError, Result};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_DATE: u8 = 4;
const TAG_UTF8: u8 = 5;

/// How a set of key columns is encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyLayout {
    /// Single fixed-width column usable as a `u64` key directly.
    U64,
    /// General tagged byte encoding.
    Bytes,
}

/// The layout for one side's key column types.
pub fn key_layout(types: &[DataType]) -> KeyLayout {
    match types {
        [DataType::Int64] | [DataType::Date] | [DataType::Bool] => KeyLayout::U64,
        _ => KeyLayout::Bytes,
    }
}

/// The layout shared by the two sides of a join. The u64 fast path requires
/// identical single-column types on both sides; mixed numeric types fall
/// back to the byte encoding, whose integral-float canonicalization keeps
/// `Int64(2)` equal to `Float64(2.0)` the way `ScalarValue::total_cmp` does.
pub fn joint_key_layout(build: &[DataType], probe: &[DataType]) -> KeyLayout {
    if build == probe {
        key_layout(build)
    } else {
        KeyLayout::Bytes
    }
}

/// Encoded keys for every row of a batch.
#[derive(Debug)]
pub enum EncodedKeys {
    U64(Vec<u64>),
    Bytes {
        /// Concatenated row encodings.
        data: Vec<u8>,
        /// `offsets[i]..offsets[i+1]` is row `i`'s encoding.
        offsets: Vec<u32>,
    },
}

impl EncodedKeys {
    pub fn num_rows(&self) -> usize {
        match self {
            EncodedKeys::U64(v) => v.len(),
            EncodedKeys::Bytes { offsets, .. } => offsets.len() - 1,
        }
    }

    fn bytes_at<'a>(data: &'a [u8], offsets: &[u32], row: usize) -> &'a [u8] {
        &data[offsets[row] as usize..offsets[row + 1] as usize]
    }
}

/// The exact-integer canonical form of a float, if it has one: integral,
/// inside the exactly-representable i64 range, and not `-0.0` (which
/// `total_cmp` keeps distinct from `0.0`). Shared by the key encoding and
/// `compute::in_list` so their Int64/Float64 coercion can never drift apart.
pub fn canonical_i64(x: f64) -> Option<i64> {
    let integral = x.fract() == 0.0
        && x >= -(2f64.powi(63))
        && x < 2f64.powi(63)
        && !(x == 0.0 && x.is_sign_negative());
    integral.then_some(x as i64)
}

fn encode_u64_key(column: &Column, row: usize) -> Result<u64> {
    Ok(match column {
        Column::Int64(v) => v[row] as u64,
        Column::Date(v) => v[row] as i64 as u64,
        Column::Bool(v) => v[row] as u64,
        // Bit-packed Int64/Date keys decode one value in O(1): this is how
        // joins build and probe directly on encoded key columns.
        Column::Packed(p) => p.get(row) as u64,
        other => {
            return Err(QuokkaError::internal(format!(
                "u64 key layout applied to {} column",
                other.data_type()
            )))
        }
    })
}

/// Append the tagged encoding of `column[row]` to `out`.
fn encode_value(out: &mut Vec<u8>, column: &Column, row: usize) {
    match column {
        Column::Int64(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&v[row].to_le_bytes());
        }
        Column::Date(v) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&v[row].to_le_bytes());
        }
        Column::Bool(v) => {
            out.push(TAG_BOOL);
            out.push(v[row] as u8);
        }
        Column::Float64(v) => {
            // Canonicalize integral floats to the Int64 encoding so numeric
            // cross-type keys compare equal; everything else keeps its bits.
            match canonical_i64(v[row]) {
                Some(int) => {
                    out.push(TAG_INT);
                    out.extend_from_slice(&int.to_le_bytes());
                }
                None => {
                    out.push(TAG_FLOAT);
                    out.extend_from_slice(&v[row].to_bits().to_le_bytes());
                }
            }
        }
        Column::Utf8(v) => {
            let s = v[row].as_bytes();
            out.push(TAG_UTF8);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        }
        // Encoded representations emit the same tagged bytes as their plain
        // decodings, so a dictionary key on one side of a join matches a
        // plain string key on the other.
        Column::Dict(d) => {
            let s = d.str_at(row).as_bytes();
            out.push(TAG_UTF8);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s);
        }
        Column::Packed(p) => match p.logical {
            crate::encoding::PackedLogical::Int64 => {
                out.push(TAG_INT);
                out.extend_from_slice(&p.get(row).to_le_bytes());
            }
            crate::encoding::PackedLogical::Date => {
                out.push(TAG_DATE);
                out.extend_from_slice(&(p.get(row) as i32).to_le_bytes());
            }
        },
        Column::Xor(x) => {
            // Callers pre-decode Xor key columns; this O(row) walk is the
            // correctness fallback only.
            let value = x.get_slow(row);
            match canonical_i64(value) {
                Some(int) => {
                    out.push(TAG_INT);
                    out.extend_from_slice(&int.to_le_bytes());
                }
                None => {
                    out.push(TAG_FLOAT);
                    out.extend_from_slice(&value.to_bits().to_le_bytes());
                }
            }
        }
    }
}

/// Encode the given key columns (all the same length) under `layout`.
pub fn encode_keys(columns: &[&Column], layout: KeyLayout) -> Result<EncodedKeys> {
    let rows = columns.first().map(|c| c.len()).unwrap_or(0);
    match layout {
        KeyLayout::U64 => {
            let [column] = columns else {
                return Err(QuokkaError::internal("u64 key layout requires one key column"));
            };
            let mut keys = Vec::with_capacity(rows);
            for row in 0..rows {
                keys.push(encode_u64_key(column, row)?);
            }
            Ok(EncodedKeys::U64(keys))
        }
        KeyLayout::Bytes => {
            // Xor float columns have no random access; decode them once up
            // front instead of walking the stream per row.
            let columns: Vec<std::borrow::Cow<'_, Column>> = columns
                .iter()
                .map(|c| {
                    if matches!(c, Column::Xor(_)) {
                        c.decoded()
                    } else {
                        std::borrow::Cow::Borrowed(*c)
                    }
                })
                .collect();
            // ~9 bytes per fixed-width value is the common case.
            let mut data = Vec::with_capacity(rows * columns.len() * 9);
            let mut offsets = Vec::with_capacity(rows + 1);
            offsets.push(0u32);
            for row in 0..rows {
                for column in &columns {
                    encode_value(&mut data, column, row);
                }
                offsets.push(data.len() as u32);
            }
            Ok(EncodedKeys::Bytes { data, offsets })
        }
    }
}

/// A finalizing hasher for integer keys based on `mix64`; much cheaper than
/// SipHash for the u64 fast path and for the pre-hashed byte keys.
#[derive(Default)]
pub struct Mix64Hasher(u64);

impl Hasher for Mix64Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Byte keys: FNV-1a style fold, mixed at the end.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = mix64(self.0);
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = mix64(self.0 ^ mix64(value));
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

type BuildMix64 = BuildHasherDefault<Mix64Hasher>;

/// A hash map from encoded row keys to `V`, dispatching on the key layout.
#[derive(Debug)]
pub enum KeyMap<V> {
    U64(HashMap<u64, V, BuildMix64>),
    Bytes(HashMap<Box<[u8]>, V, BuildMix64>),
}

impl<V> KeyMap<V> {
    pub fn new(layout: KeyLayout) -> Self {
        match layout {
            KeyLayout::U64 => KeyMap::U64(HashMap::default()),
            KeyLayout::Bytes => KeyMap::Bytes(HashMap::default()),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            KeyMap::U64(m) => m.len(),
            KeyMap::Bytes(m) => m.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn clear(&mut self) {
        match self {
            KeyMap::U64(m) => m.clear(),
            KeyMap::Bytes(m) => m.clear(),
        }
    }

    /// Pre-size the map for `additional` further keys.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            KeyMap::U64(m) => m.reserve(additional),
            KeyMap::Bytes(m) => m.reserve(additional),
        }
    }

    /// Look up every row of `keys` in order, invoking `visit(row, value)`
    /// once per row. Hoists the layout dispatch out of the per-row loop —
    /// this is the bulk probe path of the hash join.
    pub fn lookup_each<'a>(
        &'a self,
        keys: &EncodedKeys,
        mut visit: impl FnMut(usize, Option<&'a V>),
    ) -> Result<()> {
        match (self, keys) {
            (KeyMap::U64(map), EncodedKeys::U64(k)) => {
                for (row, key) in k.iter().enumerate() {
                    visit(row, map.get(key));
                }
            }
            (KeyMap::Bytes(map), EncodedKeys::Bytes { data, offsets }) => {
                for row in 0..offsets.len() - 1 {
                    visit(row, map.get(EncodedKeys::bytes_at(data, offsets, row)));
                }
            }
            _ => return Err(QuokkaError::internal("encoded key layout mismatch")),
        }
        Ok(())
    }

    /// The value for row `row` of `keys`, if present.
    pub fn get(&self, keys: &EncodedKeys, row: usize) -> Option<&V> {
        match (self, keys) {
            (KeyMap::U64(map), EncodedKeys::U64(k)) => map.get(&k[row]),
            (KeyMap::Bytes(map), EncodedKeys::Bytes { data, offsets }) => {
                map.get(EncodedKeys::bytes_at(data, offsets, row))
            }
            _ => None,
        }
    }

    /// The value for row `row` of `keys`, inserting `make()` for unseen keys.
    /// Only a brand-new key copies bytes into the map.
    pub fn get_mut_or_insert_with(
        &mut self,
        keys: &EncodedKeys,
        row: usize,
        make: impl FnOnce() -> V,
    ) -> Result<&mut V> {
        match (self, keys) {
            (KeyMap::U64(map), EncodedKeys::U64(k)) => Ok(map.entry(k[row]).or_insert_with(make)),
            (KeyMap::Bytes(map), EncodedKeys::Bytes { data, offsets }) => {
                let key = EncodedKeys::bytes_at(data, offsets, row);
                // Avoid allocating the boxed key for already-seen rows.
                if !map.contains_key(key) {
                    map.insert(Box::from(key), make());
                }
                Ok(map.get_mut(key).expect("key inserted above"))
            }
            _ => Err(QuokkaError::internal("encoded key layout mismatch")),
        }
    }

    /// Approximate memory footprint of the keys and map overhead (the values
    /// are accounted by the caller, who knows their type).
    pub fn key_bytes(&self) -> usize {
        match self {
            KeyMap::U64(m) => m.len() * 16,
            KeyMap::Bytes(m) => m.keys().map(|k| k.len() + 24).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_selection() {
        assert_eq!(key_layout(&[DataType::Int64]), KeyLayout::U64);
        assert_eq!(key_layout(&[DataType::Date]), KeyLayout::U64);
        assert_eq!(key_layout(&[DataType::Bool]), KeyLayout::U64);
        assert_eq!(key_layout(&[DataType::Utf8]), KeyLayout::Bytes);
        assert_eq!(key_layout(&[DataType::Float64]), KeyLayout::Bytes);
        assert_eq!(key_layout(&[DataType::Int64, DataType::Int64]), KeyLayout::Bytes);
        assert_eq!(joint_key_layout(&[DataType::Int64], &[DataType::Int64]), KeyLayout::U64);
        // Mixed numeric sides must go through the coercing byte encoding.
        assert_eq!(joint_key_layout(&[DataType::Int64], &[DataType::Float64]), KeyLayout::Bytes);
    }

    #[test]
    fn u64_fast_path_round_trip() {
        let col = Column::Int64(vec![5, -1, 5]);
        let keys = encode_keys(&[&col], KeyLayout::U64).unwrap();
        let mut map: KeyMap<u32> = KeyMap::new(KeyLayout::U64);
        for row in 0..3 {
            let next = map.len() as u32;
            map.get_mut_or_insert_with(&keys, row, || next).unwrap();
        }
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&keys, 0), map.get(&keys, 2));
        assert_ne!(map.get(&keys, 0), map.get(&keys, 1));
    }

    #[test]
    fn byte_encoding_distinguishes_types_and_coerces_integral_floats() {
        let ints = Column::Int64(vec![2, 3]);
        let floats = Column::Float64(vec![2.0, 2.5]);
        let int_keys = encode_keys(&[&ints], KeyLayout::Bytes).unwrap();
        let float_keys = encode_keys(&[&floats], KeyLayout::Bytes).unwrap();
        let mut map: KeyMap<&str> = KeyMap::new(KeyLayout::Bytes);
        map.get_mut_or_insert_with(&int_keys, 0, || "two").unwrap();
        // Float64(2.0) must find Int64(2); Float64(2.5) must not.
        assert_eq!(map.get(&float_keys, 0), Some(&"two"));
        assert_eq!(map.get(&float_keys, 1), None);

        // A Date and an Int64 with the same payload must stay distinct.
        let dates = Column::Date(vec![2]);
        let date_keys = encode_keys(&[&dates], KeyLayout::Bytes).unwrap();
        assert_eq!(map.get(&date_keys, 0), None);
    }

    #[test]
    fn negative_zero_and_nan_follow_total_cmp() {
        let floats = Column::Float64(vec![0.0, -0.0, f64::NAN, f64::NAN]);
        let keys = encode_keys(&[&floats], KeyLayout::Bytes).unwrap();
        let mut map: KeyMap<u32> = KeyMap::new(KeyLayout::Bytes);
        for row in 0..4 {
            let next = map.len() as u32;
            map.get_mut_or_insert_with(&keys, row, || next).unwrap();
        }
        // 0.0 != -0.0, NaN == NaN (same bits): three distinct keys.
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn multi_column_string_keys() {
        let tags = Column::Utf8(vec!["a".into(), "a".into(), "ab".into()]);
        let ids = Column::Int64(vec![1, 1, 1]);
        let keys = encode_keys(&[&tags, &ids], KeyLayout::Bytes).unwrap();
        assert_eq!(keys.num_rows(), 3);
        let mut map: KeyMap<u32> = KeyMap::new(KeyLayout::Bytes);
        for row in 0..3 {
            let next = map.len() as u32;
            map.get_mut_or_insert_with(&keys, row, || next).unwrap();
        }
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn layout_mismatch_is_an_error() {
        let col = Column::Int64(vec![1]);
        let keys = encode_keys(&[&col], KeyLayout::U64).unwrap();
        let mut map: KeyMap<u32> = KeyMap::new(KeyLayout::Bytes);
        assert!(map.get_mut_or_insert_with(&keys, 0, || 0).is_err());
        assert_eq!(map.get(&keys, 0), None);
    }
}
