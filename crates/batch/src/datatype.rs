//! Value types supported by the engine.

use quokka_common::{QuokkaError, Result};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The physical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 float (used for TPC-H decimal columns).
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
    /// Date stored as days since 1970-01-01.
    Date,
}

impl DataType {
    /// Whether arithmetic (`+ - * /`) is defined for this type.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bool => "Bool",
            DataType::Date => "Date",
        };
        f.write_str(s)
    }
}

/// A single value of any supported type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScalarValue {
    Int64(i64),
    Float64(f64),
    Utf8(String),
    Bool(bool),
    Date(i32),
}

impl ScalarValue {
    pub fn data_type(&self) -> DataType {
        match self {
            ScalarValue::Int64(_) => DataType::Int64,
            ScalarValue::Float64(_) => DataType::Float64,
            ScalarValue::Utf8(_) => DataType::Utf8,
            ScalarValue::Bool(_) => DataType::Bool,
            ScalarValue::Date(_) => DataType::Date,
        }
    }

    /// Interpret the value as f64, coercing integers and dates.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            ScalarValue::Int64(v) => Ok(*v as f64),
            ScalarValue::Float64(v) => Ok(*v),
            ScalarValue::Date(v) => Ok(*v as f64),
            other => Err(QuokkaError::TypeError(format!("cannot read {other:?} as f64"))),
        }
    }

    /// Interpret the value as i64, coercing dates.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            ScalarValue::Int64(v) => Ok(*v),
            ScalarValue::Date(v) => Ok(*v as i64),
            other => Err(QuokkaError::TypeError(format!("cannot read {other:?} as i64"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            ScalarValue::Bool(b) => Ok(*b),
            other => Err(QuokkaError::TypeError(format!("cannot read {other:?} as bool"))),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            ScalarValue::Utf8(s) => Ok(s),
            other => Err(QuokkaError::TypeError(format!("cannot read {other:?} as str"))),
        }
    }

    /// A total ordering across values of the *same* data type (floats use
    /// `total_cmp`). Values of different types order by type tag; this only
    /// happens in malformed plans and keeps sorting panic-free.
    pub fn total_cmp(&self, other: &ScalarValue) -> Ordering {
        use ScalarValue::*;
        match (self, other) {
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            // Numeric cross-type comparisons coerce to f64.
            (Int64(a), Float64(b)) => (*a as f64).total_cmp(b),
            (Float64(a), Int64(b)) => a.total_cmp(&(*b as f64)),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

fn type_rank(v: &ScalarValue) -> u8 {
    match v {
        ScalarValue::Bool(_) => 0,
        ScalarValue::Int64(_) => 1,
        ScalarValue::Float64(_) => 2,
        ScalarValue::Date(_) => 3,
        ScalarValue::Utf8(_) => 4,
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::Int64(v) => write!(f, "{v}"),
            ScalarValue::Float64(v) => write!(f, "{v:.4}"),
            ScalarValue::Utf8(v) => write!(f, "{v}"),
            ScalarValue::Bool(v) => write!(f, "{v}"),
            ScalarValue::Date(v) => write!(f, "{}", format_date(*v)),
        }
    }
}

impl From<i64> for ScalarValue {
    fn from(v: i64) -> Self {
        ScalarValue::Int64(v)
    }
}
impl From<f64> for ScalarValue {
    fn from(v: f64) -> Self {
        ScalarValue::Float64(v)
    }
}
impl From<&str> for ScalarValue {
    fn from(v: &str) -> Self {
        ScalarValue::Utf8(v.to_string())
    }
}
impl From<String> for ScalarValue {
    fn from(v: String) -> Self {
        ScalarValue::Utf8(v)
    }
}
impl From<bool> for ScalarValue {
    fn from(v: bool) -> Self {
        ScalarValue::Bool(v)
    }
}

/// Number of days in each month of a non-leap year.
const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch (1970-01-01),
/// returning `None` on malformed input: wrong structure, a month or day
/// out of range for the calendar, or a year outside `1..=9999` (the
/// year-by-year epoch conversion and the `i32` day representation do not
/// support more).
pub fn try_parse_date(s: &str) -> Option<i32> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return None;
    }
    // Components must be plain digit runs (i64::from_str would accept a
    // leading '+', silently misreading typos like '1994-+1-01').
    if parts.iter().any(|p| p.is_empty() || !p.bytes().all(|b| b.is_ascii_digit())) {
        return None;
    }
    let year: i64 = parts[0].parse().ok()?;
    let month: i64 = parts[1].parse().ok()?;
    let day: i64 = parts[2].parse().ok()?;
    if !(1..=9999).contains(&year) || !(1..=12).contains(&month) {
        return None;
    }
    let mut max_day = DAYS_IN_MONTH[(month - 1) as usize];
    if month == 2 && is_leap(year) {
        max_day += 1;
    }
    if !(1..=max_day).contains(&day) {
        return None;
    }
    Some(date_to_days(year, month, day))
}

/// Parse `YYYY-MM-DD` into days since the Unix epoch (1970-01-01).
///
/// Panics on malformed input: dates in this codebase are compile-time
/// constants inside query definitions and the TPC-H generator. User-facing
/// input goes through [`try_parse_date`] instead.
pub fn parse_date(s: &str) -> i32 {
    try_parse_date(s).unwrap_or_else(|| panic!("malformed date literal: {s}"))
}

/// Convert a (year, month, day) triple to days since the Unix epoch.
pub fn date_to_days(year: i64, month: i64, day: i64) -> i32 {
    assert!((1..=12).contains(&month), "month out of range: {month}");
    let mut days: i64 = 0;
    if year >= 1970 {
        for y in 1970..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1970 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for (m, &len) in DAYS_IN_MONTH.iter().enumerate().take((month - 1) as usize) {
        days += len;
        if m == 1 && is_leap(year) {
            days += 1;
        }
    }
    (days + day - 1) as i32
}

/// Extract the calendar year from a days-since-epoch date.
pub fn date_year(days: i32) -> i64 {
    let (year, _, _) = days_to_date(days);
    year
}

/// Convert days since the Unix epoch back to (year, month, day).
pub fn days_to_date(days: i32) -> (i64, i64, i64) {
    let mut remaining = days as i64;
    let mut year = 1970i64;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if remaining >= len {
            remaining -= len;
            year += 1;
        } else if remaining < 0 {
            year -= 1;
            remaining += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 1i64;
    for (m, &len) in DAYS_IN_MONTH.iter().enumerate() {
        let len = if m == 1 && is_leap(year) { len + 1 } else { len };
        if remaining >= len {
            remaining -= len;
            month += 1;
        } else {
            break;
        }
    }
    (year, month, remaining + 1)
}

/// Format a days-since-epoch date as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = days_to_date(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Add `months` calendar months to a date (used for `date '...' + interval`
/// expressions in TPC-H query predicates). Clamps the day-of-month to the
/// target month's length, matching SQL interval semantics closely enough for
/// the TPC-H date constants (always day 1).
pub fn add_months(days: i32, months: i64) -> i32 {
    let (y, m, d) = days_to_date(days);
    let total = (y * 12 + (m - 1)) + months;
    let ny = total.div_euclid(12);
    let nm = total.rem_euclid(12) + 1;
    let mut max_day = DAYS_IN_MONTH[(nm - 1) as usize];
    if nm == 2 && is_leap(ny) {
        max_day += 1;
    }
    date_to_days(ny, nm, d.min(max_day))
}

/// Add whole years to a date.
pub fn add_years(days: i32, years: i64) -> i32 {
    add_months(days, years * 12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for s in [
            "1970-01-01",
            "1992-01-01",
            "1995-03-15",
            "1996-12-31",
            "1998-09-02",
            "2000-02-29",
            "1969-12-31",
            "1960-06-15",
        ] {
            let days = parse_date(s);
            assert_eq!(format_date(days), s, "roundtrip failed for {s}");
        }
        assert_eq!(parse_date("1970-01-01"), 0);
        assert_eq!(parse_date("1970-01-02"), 1);
        assert_eq!(parse_date("1971-01-01"), 365);
    }

    #[test]
    fn date_ordering_matches_string_ordering() {
        let a = parse_date("1994-01-01");
        let b = parse_date("1995-01-01");
        let c = parse_date("1995-01-02");
        assert!(a < b && b < c);
    }

    #[test]
    fn year_extraction() {
        assert_eq!(date_year(parse_date("1995-06-17")), 1995);
        assert_eq!(date_year(parse_date("1992-01-01")), 1992);
        assert_eq!(date_year(parse_date("1969-12-31")), 1969);
    }

    #[test]
    fn interval_arithmetic() {
        assert_eq!(add_months(parse_date("1995-01-01"), 3), parse_date("1995-04-01"));
        assert_eq!(add_months(parse_date("1995-11-01"), 3), parse_date("1996-02-01"));
        assert_eq!(add_years(parse_date("1994-01-01"), 1), parse_date("1995-01-01"));
        assert_eq!(add_months(parse_date("1996-01-31"), 1), parse_date("1996-02-29"));
    }

    #[test]
    fn scalar_total_ordering() {
        use ScalarValue::*;
        assert_eq!(Int64(1).total_cmp(&Int64(2)), Ordering::Less);
        assert_eq!(Float64(2.5).total_cmp(&Int64(2)), Ordering::Greater);
        assert_eq!(Utf8("a".into()).total_cmp(&Utf8("b".into())), Ordering::Less);
        assert_eq!(Date(10).total_cmp(&Date(10)), Ordering::Equal);
        assert_eq!(Float64(f64::NAN).total_cmp(&Float64(f64::NAN)), Ordering::Equal);
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(ScalarValue::Int64(3).as_f64().unwrap(), 3.0);
        assert_eq!(ScalarValue::Float64(1.5).as_f64().unwrap(), 1.5);
        assert_eq!(ScalarValue::Date(5).as_i64().unwrap(), 5);
        assert!(ScalarValue::Utf8("x".into()).as_f64().is_err());
        assert_eq!(ScalarValue::from("hi").as_str().unwrap(), "hi");
        assert!(ScalarValue::Bool(true).as_bool().unwrap());
    }

    #[test]
    fn data_type_properties() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
        assert_eq!(DataType::Date.to_string(), "Date");
    }
}
