/root/repo/target/debug/deps/quokka_net-2479ec3002ed477b.d: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/debug/deps/libquokka_net-2479ec3002ed477b.rlib: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/debug/deps/libquokka_net-2479ec3002ed477b.rmeta: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

crates/net/src/lib.rs:
crates/net/src/flight.rs:
crates/net/src/plane.rs:
