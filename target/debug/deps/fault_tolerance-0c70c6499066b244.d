/root/repo/target/debug/deps/fault_tolerance-0c70c6499066b244.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-0c70c6499066b244: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
