/root/repo/target/debug/deps/fig11-98153d30a0ed590a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/libfig11-98153d30a0ed590a.rmeta: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
