//! Integration tests: compressed column encodings must be invisible to
//! query results.
//!
//! The TPC-H generator emits dictionary/bit-packed/XOR-encoded tables by
//! default; `with_encoding(false)` produces the same data in plain columns.
//! Every query must return batch-identical results either way — on the
//! reference executor, on the distributed engine (both transports), and
//! under fault injection, where recovery replays encoded backups.

use quokka::{
    same_result, EngineConfig, FailureSpec, QuokkaSession, TpchGenerator, TransportConfig,
};

const SF: f64 = 0.002;
const SEED: u64 = 0xC0FFEE;

/// The default session: generator encodes every table column it can.
fn encoded_session(workers: u32) -> QuokkaSession {
    QuokkaSession::tpch(SF, workers).expect("generate encoded TPC-H data")
}

/// Same data, same seed, plain columns only.
fn plain_session(workers: u32) -> QuokkaSession {
    let session = QuokkaSession::new(EngineConfig::quokka(workers));
    TpchGenerator::new(SF, SEED)
        .with_encoding(false)
        .register_all(session.catalog())
        .expect("generate plain TPC-H data");
    session
}

/// All 22 queries agree between an encoded and a plain catalog on the
/// reference executor — the encodings change representation, never content.
#[test]
fn all_queries_match_reference_with_and_without_encoding() {
    let encoded = encoded_session(3);
    let plain = plain_session(3);
    for q in 1..=22usize {
        let query = quokka::tpch::query(q).unwrap();
        let with_encoding = encoded.run_reference(&query).unwrap();
        let without = plain.run_reference(&query).unwrap();
        assert!(
            same_result(&with_encoding, &without),
            "Q{q} diverged between encoded and plain catalogs: {} vs {} rows",
            with_encoding.num_rows(),
            without.num_rows()
        );
    }
}

/// The distributed engine produces the same batches from encoded tables as
/// from plain ones (encoded columns flow through scans, shuffles,
/// aggregations and joins end to end).
#[test]
fn distributed_results_are_independent_of_encoding() {
    let encoded = encoded_session(3);
    let plain = plain_session(3);
    let config = EngineConfig::quokka(3);
    for &q in &quokka::tpch::REPRESENTATIVE {
        let query = quokka::tpch::query(q).unwrap();
        let with_encoding = encoded.run_with(&query, &config).unwrap();
        let without = plain.run_with(&query, &config).unwrap();
        assert!(
            same_result(&with_encoding.batch, &without.batch),
            "Q{q} diverged between encoded and plain catalogs on the cluster"
        );
    }
}

/// The TCP transport ships encoded frames natively; results must still be
/// identical to the plain catalog over the in-process transport.
#[test]
fn tcp_transport_is_encoding_agnostic() {
    let encoded = encoded_session(3);
    let plain = plain_session(3);
    let tcp = EngineConfig::quokka(3).with_transport(TransportConfig::tcp());
    for q in [1usize, 3, 9] {
        let query = quokka::tpch::query(q).unwrap();
        let over_tcp = encoded.run_with(&query, &tcp).unwrap();
        let inproc = plain.run_with(&query, &EngineConfig::quokka(3)).unwrap();
        assert!(
            same_result(&over_tcp.batch, &inproc.batch),
            "Q{q} over tcp with encoded tables diverged from plain inproc"
        );
    }
}

/// Fault recovery replays durable backups of *encoded* partitions; the
/// replayed query must still match the plain-catalog reference.
#[test]
fn fault_recovery_replays_encoded_backups_exactly() {
    let encoded = encoded_session(3);
    let plain = plain_session(3);
    for q in [3usize, 12] {
        let query = quokka::tpch::query(q).unwrap();
        let expected = plain.run_reference(&query).unwrap();
        let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));
        let outcome = encoded.run_with(&query, &config).unwrap();
        assert_eq!(outcome.metrics.failures, 1, "Q{q}: the injected failure must fire");
        assert!(
            same_result(&expected, &outcome.batch),
            "Q{q} diverged after failure recovery over encoded tables"
        );
    }
}

/// The encodings actually engage: the encoded catalog's lineitem footprint
/// is measurably smaller than the plain one's (this is what admission
/// control and the shuffle savings are built on).
#[test]
fn encoded_catalog_is_smaller_than_plain() {
    use quokka::plan::catalog::Catalog;
    let encoded = encoded_session(2);
    let plain = plain_session(2);
    let small = encoded.catalog().table_bytes("lineitem").unwrap();
    let big = plain.catalog().table_bytes("lineitem").unwrap();
    assert!(small * 3 < big * 2, "expected >=1.5x compression on lineitem: {small} vs {big}");
}
