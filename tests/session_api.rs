//! Integration tests for the facade API plus property-based tests on the
//! invariants the engine's correctness rests on (batch codec round-trips,
//! hash-partition completeness, canonical result comparison).

use proptest::prelude::*;
use quokka::batch::codec::{decode_partition, encode_partition};
use quokka::batch::compute::hash_partition;
use quokka::{
    canonical_rows, same_result, Batch, Column, DataType, EngineConfig, QuokkaSession, Schema,
};

#[test]
fn session_round_trip_on_custom_tables() {
    use quokka::plan::aggregate::count;
    use quokka::plan::expr::col;
    use quokka::PlanBuilder;

    let session = QuokkaSession::new(EngineConfig::quokka(2));
    let schema = Schema::from_pairs(&[("k", DataType::Int64), ("tag", DataType::Utf8)]);
    let batch = Batch::try_new(
        schema.clone(),
        vec![
            Column::Int64((0..1000).collect()),
            Column::Utf8((0..1000).map(|i| format!("t{}", i % 7)).collect()),
        ],
    )
    .unwrap();
    session.register_table("events", schema.clone(), batch.chunks(128));

    let plan = PlanBuilder::scan("events", schema)
        .aggregate(vec![(col("tag"), "tag")], vec![count(col("k"), "n")])
        .sort(vec![("tag", true)])
        .build()
        .unwrap();
    let outcome = session.run(&plan).unwrap();
    assert_eq!(outcome.batch.num_rows(), 7);
    let expected = session.run_reference(&plan).unwrap();
    assert!(same_result(&expected, &outcome.batch));
    assert!(outcome.metrics.output_rows >= 7);
}

#[test]
fn tpch_session_exposes_all_tables() {
    let session = QuokkaSession::tpch(0.002, 2).unwrap();
    let mut names = session.table_names();
    names.sort();
    assert_eq!(
        names,
        vec!["customer", "lineitem", "nation", "orders", "part", "partsupp", "region", "supplier"]
    );
}

fn arbitrary_batch() -> impl Strategy<Value = Batch> {
    (1usize..60).prop_flat_map(|rows| {
        (
            proptest::collection::vec(any::<i64>(), rows),
            proptest::collection::vec(any::<f64>(), rows),
            proptest::collection::vec("[a-z]{0,12}", rows),
            proptest::collection::vec(any::<bool>(), rows),
        )
            .prop_map(|(ints, floats, strings, bools)| {
                let schema = Schema::from_pairs(&[
                    ("id", DataType::Int64),
                    ("value", DataType::Float64),
                    ("name", DataType::Utf8),
                    ("flag", DataType::Bool),
                ]);
                Batch::try_new(
                    schema,
                    vec![
                        Column::Int64(ints),
                        Column::Float64(floats),
                        Column::Utf8(strings),
                        Column::Bool(bools),
                    ],
                )
                .unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The codec used for upstream backup and spooling must round-trip every
    /// batch exactly: a replayed partition has to be bit-identical.
    #[test]
    fn partition_codec_round_trips(batch in arbitrary_batch()) {
        let payload = encode_partition(std::slice::from_ref(&batch));
        let decoded = decode_partition(&payload).unwrap();
        prop_assert_eq!(decoded.len(), 1);
        prop_assert_eq!(&decoded[0], &batch);
        // Deterministic encoding (same bytes every time).
        prop_assert_eq!(encode_partition(std::slice::from_ref(&batch)), payload);
    }

    /// Hash partitioning (the shuffle) must neither lose nor duplicate rows,
    /// and equal keys must land in the same partition.
    #[test]
    fn hash_partitioning_is_a_partition(batch in arbitrary_batch(), parts in 1usize..6) {
        let pieces = hash_partition(&batch, &[0], parts).unwrap();
        prop_assert_eq!(pieces.len(), parts);
        let total: usize = pieces.iter().map(Batch::num_rows).sum();
        prop_assert_eq!(total, batch.num_rows());
        // Multiset of rows is preserved.
        let mut original = canonical_rows(&batch);
        let mut scattered: Vec<String> = pieces.iter().flat_map(canonical_rows).collect();
        original.sort();
        scattered.sort();
        prop_assert_eq!(original, scattered);
        // Same key -> same partition.
        for (i, piece) in pieces.iter().enumerate() {
            for row in 0..piece.num_rows() {
                let key = piece.value(row, 0);
                for (j, other) in pieces.iter().enumerate() {
                    if i == j { continue; }
                    for other_row in 0..other.num_rows() {
                        prop_assert_ne!(&key, &other.value(other_row, 0));
                    }
                }
            }
        }
    }

    /// Result comparison must be insensitive to row order.
    #[test]
    fn canonical_rows_ignore_row_order(batch in arbitrary_batch()) {
        let reversed: Vec<usize> = (0..batch.num_rows()).rev().collect();
        let shuffled = batch.take(&reversed).unwrap();
        prop_assert!(same_result(&batch, &shuffled));
    }

    /// Chunking and re-concatenating a batch is the identity.
    #[test]
    fn chunk_concat_round_trips(batch in arbitrary_batch(), chunk in 1usize..40) {
        let chunks = batch.chunks(chunk);
        let rebuilt = Batch::concat(&chunks).unwrap();
        prop_assert_eq!(rebuilt, batch);
    }
}
