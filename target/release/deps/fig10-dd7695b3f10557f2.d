/root/repo/target/release/deps/fig10-dd7695b3f10557f2.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-dd7695b3f10557f2: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
