//! Shuffle-volume harness: optimized vs unoptimized TPC-H plans.
//!
//! Runs each query twice on the distributed runtime — once with the logical
//! optimizer disabled (the plan exactly as written) and once with it enabled
//! — and compares the bytes pushed across workers, in total and per stage
//! edge. Predicate pushdown and projection pruning shrink the scan→join
//! edges; this harness is where that win is measured and regression-gated.
//!
//! Plans are built from the TPC-H **SQL texts** (the same path a user's
//! query takes), so the run also measures the decorrelated queries: Q4's
//! `EXISTS` and Q21's derived-table pipeline arrive as subquery-bearing
//! plans, the "unoptimized" run applies only the mandatory decorrelation
//! lowering, and the optimized run applies the full rule pipeline on top.
//!
//! Results go to `BENCH_shuffle.json`. The run **fails** (non-zero exit) if
//! the optimized plan of any gated query (Q3, Q5, Q9 — the join-heavy
//! representatives) does not shuffle strictly fewer bytes than its
//! unoptimized twin, or if the two plans ever disagree on the result rows.
//!
//! Run with: `cargo run --release -p quokka-bench --bin shuffle`
//!
//! Environment knobs: `QUOKKA_SF` (default 0.01), `QUOKKA_WORKERS` (default
//! 4), `QUOKKA_QUERIES` (default 1,3,4,5,6,9,10,12,21), `QUOKKA_BENCH_OUT`
//! (default `BENCH_shuffle.json`).

use quokka::{same_result, EngineConfig, QuokkaSession};

/// Queries whose shuffle volume must strictly shrink under optimization.
const GATED: [usize; 3] = [3, 5, 9];

/// Optimized shuffle bytes before column encodings shipped on the wire
/// (the committed `BENCH_shuffle.json` of the plain-column engine). The
/// encoded engine must push at least 30% fewer bytes on each of these.
const PRE_ENCODING: [(usize, u64); 3] = [(1, 1_969_832), (3, 895_188), (9, 3_956_769)];

struct Entry {
    query: usize,
    naive_bytes: u64,
    optimized_bytes: u64,
    /// Logical (decoded) bytes behind `optimized_bytes`: what the same
    /// shuffles would have cost with plain columns and no wire encoding.
    optimized_raw_bytes: u64,
    optimized_edges: Vec<(u32, u32, u64, u64)>,
    /// Per-peer wire traffic of the optimized run, summed over peers.
    /// Zero under the in-process transport; real frame/byte counts when
    /// the run is steered onto TCP via `QUOKKA_TRANSPORT=tcp`.
    wire_frames_sent: u64,
    wire_bytes_sent: u64,
    send_queue_peak: u64,
}

impl Entry {
    fn reduction(&self) -> f64 {
        if self.naive_bytes == 0 {
            0.0
        } else {
            1.0 - self.optimized_bytes as f64 / self.naive_bytes as f64
        }
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let scale_factor = env_f64("QUOKKA_SF", 0.01);
    let workers = env_u32("QUOKKA_WORKERS", 4);
    let queries = quokka_bench::queries_from_env(&[1, 3, 4, 5, 6, 9, 10, 12, 21]);
    let out_path =
        std::env::var("QUOKKA_BENCH_OUT").unwrap_or_else(|_| "BENCH_shuffle.json".to_string());

    eprintln!("[shuffle] generating TPC-H data at SF {scale_factor} ...");
    let session = QuokkaSession::tpch(scale_factor, workers).expect("generate TPC-H data");
    let naive_config = EngineConfig::quokka(workers).with_optimize(false);
    let optimized_config = EngineConfig::quokka(workers).with_optimize(true);

    let mut entries = Vec::new();
    for &q in &queries {
        let sql = quokka::tpch::queries::sql::sql_text(q).expect("TPC-H SQL text");
        let plan = quokka::sql::plan_query(sql, session.catalog()).expect("TPC-H plan from SQL");
        let naive = session.run_with(&plan, &naive_config).expect("unoptimized run");
        let optimized = session.run_with(&plan, &optimized_config).expect("optimized run");
        assert!(
            same_result(&naive.batch, &optimized.batch),
            "Q{q}: optimized and unoptimized plans disagree on the result"
        );
        let peers = &optimized.metrics.transport_peers;
        let entry = Entry {
            query: q,
            naive_bytes: naive.metrics.shuffle_bytes,
            optimized_bytes: optimized.metrics.shuffle_bytes,
            optimized_raw_bytes: optimized.metrics.shuffle_raw_bytes,
            optimized_edges: optimized
                .metrics
                .shuffle_edges
                .iter()
                .map(|e| (e.from_stage, e.to_stage, e.bytes, e.raw_bytes))
                .collect(),
            wire_frames_sent: peers.iter().map(|p| p.frames_sent).sum(),
            wire_bytes_sent: peers.iter().map(|p| p.bytes_sent).sum(),
            send_queue_peak: peers.iter().map(|p| p.send_queue_peak).max().unwrap_or(0),
        };
        eprintln!(
            "Q{q:<3} naive {:>12} B   optimized {:>12} B   (-{:.1}%, raw {:>12} B)",
            entry.naive_bytes,
            entry.optimized_bytes,
            entry.reduction() * 100.0,
            entry.optimized_raw_bytes
        );
        entries.push(entry);
    }

    // Hand-rolled JSON (no serde in this environment).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale_factor\": {scale_factor},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"queries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let edges: Vec<String> = e
            .optimized_edges
            .iter()
            .map(|(from, to, bytes, raw)| {
                format!(
                    "{{\"from_stage\": {from}, \"to_stage\": {to}, \
                     \"bytes\": {bytes}, \"raw_bytes\": {raw}}}"
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"query\": {}, \"naive_shuffle_bytes\": {}, \"optimized_shuffle_bytes\": {}, \
             \"optimized_raw_bytes\": {}, \"reduction\": {:.4}, \"wire_frames_sent\": {}, \
             \"wire_bytes_sent\": {}, \"send_queue_peak\": {}, \"optimized_edges\": [{}]}}{}\n",
            e.query,
            e.naive_bytes,
            e.optimized_bytes,
            e.optimized_raw_bytes,
            e.reduction(),
            e.wire_frames_sent,
            e.wire_bytes_sent,
            e.send_queue_peak,
            edges.join(", "),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");

    // Regression gate: the join-heavy queries must shuffle strictly less.
    // A gated query missing from the run set is itself a failure — the gate
    // must never pass vacuously (e.g. a trimmed QUOKKA_QUERIES override).
    for q in GATED {
        let e = entries.iter().find(|e| e.query == q).unwrap_or_else(|| {
            panic!("Q{q} is gated but was not run; include it in QUOKKA_QUERIES")
        });
        assert!(
            e.optimized_bytes < e.naive_bytes,
            "Q{q}: optimizer did not reduce shuffle volume \
             ({} optimized vs {} naive bytes)",
            e.optimized_bytes,
            e.naive_bytes
        );
    }
    eprintln!(
        "[shuffle] gate passed: optimized Q3/Q5/Q9 shuffle strictly fewer bytes than naive twins"
    );

    // Encoding gate: shipping encoded columns must cut the optimized
    // shuffle volume by at least 30% against the plain-column engine's
    // committed numbers. Same vacuous-pass rule as above.
    for (q, before) in PRE_ENCODING {
        let e = entries.iter().find(|e| e.query == q).unwrap_or_else(|| {
            panic!("Q{q} is encoding-gated but was not run; include it in QUOKKA_QUERIES")
        });
        let ceiling = before * 7 / 10;
        assert!(
            e.optimized_bytes <= ceiling,
            "Q{q}: encoded shuffle volume {} exceeds 70% of the pre-encoding \
             baseline {} (ceiling {})",
            e.optimized_bytes,
            before,
            ceiling
        );
    }
    eprintln!(
        "[shuffle] gate passed: encoded Q1/Q3/Q9 shuffles are >=30% below pre-encoding volumes"
    );
}
