//! Positioned SQL errors.

use quokka_common::QuokkaError;
use std::fmt;

/// A position in the SQL source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    pub line: u32,
    pub column: u32,
}

impl Pos {
    pub fn new(line: u32, column: u32) -> Self {
        Pos { line, column }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// Which frontend phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlErrorKind {
    /// Tokenizer-level problem (unterminated string, stray character, ...).
    Lex,
    /// The token stream does not match the grammar.
    Parse,
    /// The statement parsed but names or types do not resolve.
    Bind,
}

impl fmt::Display for SqlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SqlErrorKind::Lex => "lex",
            SqlErrorKind::Parse => "parse",
            SqlErrorKind::Bind => "bind",
        })
    }
}

/// An error from the SQL frontend, carrying the source position it refers
/// to. `Display` renders as e.g.
/// `parse error at line 1, column 27: expected FROM, found 'GROUP'`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    pub kind: SqlErrorKind,
    pub pos: Pos,
    pub message: String,
}

impl SqlError {
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        SqlError { kind: SqlErrorKind::Lex, pos, message: message.into() }
    }
    pub fn parse(pos: Pos, message: impl Into<String>) -> Self {
        SqlError { kind: SqlErrorKind::Parse, pos, message: message.into() }
    }
    pub fn bind(pos: Pos, message: impl Into<String>) -> Self {
        SqlError { kind: SqlErrorKind::Bind, pos, message: message.into() }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.kind, self.pos, self.message)
    }
}

impl std::error::Error for SqlError {}

impl From<SqlError> for QuokkaError {
    fn from(e: SqlError) -> QuokkaError {
        QuokkaError::PlanError(e.to_string())
    }
}
