/root/repo/target/release/deps/quokka-50495eb9715bb4d8.d: crates/quokka/src/lib.rs

/root/repo/target/release/deps/libquokka-50495eb9715bb4d8.rlib: crates/quokka/src/lib.rs

/root/repo/target/release/deps/libquokka-50495eb9715bb4d8.rmeta: crates/quokka/src/lib.rs

crates/quokka/src/lib.rs:
