/root/repo/target/debug/examples/quickstart-caa1ecccee1cdd23.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-caa1ecccee1cdd23.rmeta: examples/quickstart.rs

examples/quickstart.rs:
