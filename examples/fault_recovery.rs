//! Kill a worker halfway through a TPC-H join query and watch write-ahead
//! lineage recover it — then compare against the restart-from-scratch
//! baseline (paper §V-D / Fig. 10).
//!
//! Run with: `cargo run --release --example fault_recovery`

use quokka::{EngineConfig, FailureSpec, FaultStrategy, QuokkaSession};

fn main() -> quokka::Result<()> {
    let workers = 4;
    let session = QuokkaSession::tpch(0.01, workers)?;
    let query = 3; // customer ⨝ orders ⨝ lineitem with an aggregation on top
    let plan = quokka::tpch::query(query)?;
    let expected = session.run_reference(&plan)?;

    // 1. Normal execution (no failure) to establish the baseline runtime.
    let normal = session.run(&plan)?;
    assert!(quokka::same_result(&expected, &normal.batch));
    println!("normal execution          : {:?}", normal.metrics.runtime);

    // 2. Kill worker 1 once half of the input splits have been consumed;
    //    write-ahead lineage rewinds only the lost channels.
    let failing = EngineConfig::quokka(workers).with_failure(FailureSpec::halfway(1));
    let recovered = session.run_with(&plan, &failing)?;
    assert!(quokka::same_result(&expected, &recovered.batch), "recovered result differs!");
    println!(
        "with failure + WAL        : {:?}  (overhead {:.2}x, {} recovery tasks, planning {:?})",
        recovered.metrics.runtime,
        recovered.metrics.overhead_vs(normal.metrics.runtime),
        recovered.metrics.recovery_tasks,
        recovered.metrics.recovery_planning,
    );

    // 3. The same failure without intra-query fault tolerance: the query is
    //    restarted from scratch on the surviving workers.
    let restart = EngineConfig::quokka(workers)
        .with_fault(FaultStrategy::None)
        .with_failure(FailureSpec::halfway(1));
    let restarted = session.run_with(&plan, &restart)?;
    assert!(quokka::same_result(&expected, &restarted.batch));
    println!(
        "with failure + restart    : {:?}  (overhead {:.2}x)",
        restarted.metrics.runtime,
        restarted.metrics.overhead_vs(normal.metrics.runtime),
    );

    println!("\nTPC-H Q{query}: all three executions returned identical results");
    Ok(())
}
