/root/repo/target/debug/deps/serde-ef8877dd86d7c7b7.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ef8877dd86d7c7b7.rlib: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-ef8877dd86d7c7b7.rmeta: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
