//! Fig. 10: fault-recovery performance.
//!
//! * Default mode (Fig. 10a): kill a worker at 50% of each representative
//!   query on a 16-worker cluster, under Quokka (pipelined, pipeline-parallel
//!   recovery) and the SparkSQL-like baseline (stagewise, data-parallel
//!   recovery); report the recovery overhead (runtime with failure / runtime
//!   without).
//! * `--case-study` (Fig. 10b): TPC-H Q9 with the failure injected at
//!   16.6% … 83.3% of the query, including the restart baseline.

use quokka::FaultStrategy;
use quokka_bench::{geomean, print_header, print_row, queries_from_env, workers_from_env, Harness};

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let case_study = std::env::args().any(|a| a == "--case-study");
    let workers = workers_from_env(&[16])[0];

    if case_study {
        let q = 9;
        print_header(
            &format!("Fig. 10b — TPC-H Q9 case study on {workers} workers"),
            &["failure at", "quokka overhead", "spark overhead", "restart overhead"],
        );
        let quokka_base = harness.run("quokka", q, &harness.quokka_config(workers))?;
        let spark_base = harness.run("spark", q, &harness.spark_config(workers))?;
        for point in [1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0, 4.0 / 6.0, 5.0 / 6.0] {
            let quokka =
                harness.run_with_failure("quokka", q, &harness.quokka_config(workers), 1, point)?;
            let spark =
                harness.run_with_failure("spark", q, &harness.spark_config(workers), 1, point)?;
            let restart = harness.run_with_failure(
                "restart",
                q,
                &harness.quokka_config(workers).with_fault(FaultStrategy::None),
                1,
                point,
            )?;
            print_row(
                q,
                &[
                    point,
                    quokka.seconds / quokka_base.seconds.max(1e-9),
                    spark.seconds / spark_base.seconds.max(1e-9),
                    restart.seconds / quokka_base.seconds.max(1e-9),
                ],
            );
        }
        println!("paper shape: overhead grows with the failure point; both beat the restart baseline (~1.5x)");
        return Ok(());
    }

    let queries = queries_from_env(&quokka::tpch::REPRESENTATIVE);
    print_header(
        &format!("Fig. 10a — recovery overhead, worker killed at 50% on {workers} workers"),
        &["quokka overhead", "spark overhead", "recovery tasks"],
    );
    let mut quokka_overheads = Vec::new();
    let mut spark_overheads = Vec::new();
    for &q in &queries {
        let quokka_base = harness.run("quokka", q, &harness.quokka_config(workers))?;
        let spark_base = harness.run("spark", q, &harness.spark_config(workers))?;
        let quokka_fail =
            harness.run_with_failure("quokka", q, &harness.quokka_config(workers), 1, 0.5)?;
        let spark_fail =
            harness.run_with_failure("spark", q, &harness.spark_config(workers), 1, 0.5)?;
        let qo = quokka_fail.seconds / quokka_base.seconds.max(1e-9);
        let so = spark_fail.seconds / spark_base.seconds.max(1e-9);
        quokka_overheads.push(qo);
        spark_overheads.push(so);
        print_row(q, &[qo, so, quokka_fail.metrics.recovery_tasks as f64]);
    }
    println!(
        "paper shape: recovery overheads comparable (within a few %); measured geomeans quokka {:.2}x vs spark {:.2}x",
        geomean(&quokka_overheads),
        geomean(&spark_overheads)
    );
    Ok(())
}
