/root/repo/target/debug/deps/kernels-bcb873ee07256b8d.d: crates/bench/src/bin/kernels.rs

/root/repo/target/debug/deps/libkernels-bcb873ee07256b8d.rmeta: crates/bench/src/bin/kernels.rs

crates/bench/src/bin/kernels.rs:
