//! Shared experiment harness for reproducing the paper's tables and figures.
//!
//! Every `fig*` binary in `src/bin/` drives the same machinery: generate a
//! TPC-H data set, run the relevant configurations (Quokka, the
//! SparkSQL-like stagewise baseline, the Trino-like spooling baseline,
//! static scheduling variants, failure injections), and print the series the
//! corresponding paper figure plots. Absolute numbers differ from the paper
//! — the substrate is a simulated cluster, not 16 EC2 instances — but the
//! comparisons (who wins, by roughly what factor) are the reproduction
//! target; see EXPERIMENTS.md.
//!
//! Environment knobs shared by all binaries:
//!
//! * `QUOKKA_SF` — TPC-H scale factor (default 0.01).
//! * `QUOKKA_WORKERS` — comma-separated cluster sizes to run (default
//!   depends on the figure, e.g. "4,16").
//! * `QUOKKA_QUERIES` — comma-separated query numbers (default depends on
//!   the figure).
//! * `QUOKKA_COST_SCALE` — time-scale of the simulated cost model (default
//!   0.02; 0 disables simulated I/O delays entirely).

use quokka::{
    CostModelConfig, EngineConfig, FailureSpec, LogicalPlan, QueryMetrics, QuokkaSession,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// One measured run.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub label: String,
    pub query: usize,
    pub workers: u32,
    pub seconds: f64,
    pub metrics: QueryMetrics,
}

/// Harness: a TPC-H data set plus helpers for timing configurations.
pub struct Harness {
    session: QuokkaSession,
    pub scale_factor: f64,
    pub cost_scale: f64,
    plans: BTreeMap<usize, LogicalPlan>,
}

impl Harness {
    /// Build the harness from the environment knobs.
    pub fn from_env() -> quokka::Result<Self> {
        let scale_factor = env_f64("QUOKKA_SF", 0.01);
        let cost_scale = env_f64("QUOKKA_COST_SCALE", 0.02);
        eprintln!("[harness] generating TPC-H data at SF {scale_factor} ...");
        // The catalog is worker-count independent; EngineConfig decides the
        // cluster shape per run.
        let session = QuokkaSession::tpch(scale_factor, 4)?;
        let mut plans = BTreeMap::new();
        for q in quokka::tpch::ALL_QUERIES {
            plans.insert(q, quokka::tpch::query(q)?);
        }
        Ok(Harness { session, scale_factor, cost_scale, plans })
    }

    /// The engine configuration used for the "Quokka" series.
    pub fn quokka_config(&self, workers: u32) -> EngineConfig {
        EngineConfig::quokka(workers).with_cost(CostModelConfig::scaled(self.cost_scale))
    }

    /// The SparkSQL-like comparator (stagewise execution).
    pub fn spark_config(&self, workers: u32) -> EngineConfig {
        EngineConfig::sparklike(workers).with_cost(CostModelConfig::scaled(self.cost_scale))
    }

    /// The Trino-like comparator (pipelined + durable spooling).
    pub fn trino_config(&self, workers: u32) -> EngineConfig {
        EngineConfig::trinolike(workers).with_cost(CostModelConfig::scaled(self.cost_scale))
    }

    /// The logical plan of a TPC-H query.
    pub fn plan(&self, query: usize) -> &LogicalPlan {
        &self.plans[&query]
    }

    /// Time one query under one configuration.
    pub fn run(
        &self,
        label: &str,
        query: usize,
        config: &EngineConfig,
    ) -> quokka::Result<Measurement> {
        let start = Instant::now();
        let outcome = self.session.run_with(self.plan(query), config)?;
        let seconds = start.elapsed().as_secs_f64();
        Ok(Measurement {
            label: label.to_string(),
            query,
            workers: config.cluster.workers,
            seconds,
            metrics: outcome.metrics,
        })
    }

    /// Time one query under one configuration with a worker killed at the
    /// given progress fraction.
    pub fn run_with_failure(
        &self,
        label: &str,
        query: usize,
        config: &EngineConfig,
        worker: u32,
        at_progress: f64,
    ) -> quokka::Result<Measurement> {
        let config = config.clone().with_failure(FailureSpec::new(worker, at_progress));
        self.run(label, query, &config)
    }
}

/// Geometric mean of a non-empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Queries to run: the `QUOKKA_QUERIES` env var or the given default.
pub fn queries_from_env(default: &[usize]) -> Vec<usize> {
    match std::env::var("QUOKKA_QUERIES") {
        Ok(value) => value
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|q| (1..=22).contains(q))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Cluster sizes to run: the `QUOKKA_WORKERS` env var or the given default.
pub fn workers_from_env(default: &[u32]) -> Vec<u32> {
    match std::env::var("QUOKKA_WORKERS") {
        Ok(value) => value.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Print a labelled series as an aligned table row.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("\n=== {title} ===");
    print!("{:<10}", "query");
    for c in columns {
        print!("{c:>18}");
    }
    println!();
}

/// Print one row of a results table.
pub fn print_row(query: usize, values: &[f64]) {
    print!("Q{query:<9}");
    for v in values {
        print!("{v:>18.3}");
    }
    println!();
}

/// Print a geometric-mean summary row.
pub fn print_geomean(label: &str, series: &[Vec<f64>]) {
    print!("{label:<10}");
    for column in series {
        print!("{:>18.3}", geomean(column));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn env_parsers_fall_back_to_defaults() {
        std::env::remove_var("QUOKKA_QUERIES");
        std::env::remove_var("QUOKKA_WORKERS");
        assert_eq!(queries_from_env(&[1, 6]), vec![1, 6]);
        assert_eq!(workers_from_env(&[4, 16]), vec![4, 16]);
    }
}
