//! Shared plumbing for multi-process TPC-H runs.
//!
//! In process mode ([`quokka_engine::cluster`]) the driver and every
//! `quokka-workerd` process must agree *exactly* on the compiled stage graph
//! and the table split layout — they are derived independently in each
//! process rather than shipped over the wire. This module is the single
//! definition both sides call: TPC-H generation is seeded (`0xC0FFEE`, the
//! same seed [`QuokkaSession::tpch`](crate::QuokkaSession::tpch) uses) and
//! plan lowering is deterministic, so equal `(query, sf, config)` inputs
//! yield equal graphs in every process.

use crate::{Batch, EngineConfig, Result, Schema, TpchGenerator};
use quokka_plan::catalog::{Catalog, MemoryCatalog};
use quokka_plan::optimizer::Optimizer;
use quokka_plan::stage::StageGraph;
use std::collections::BTreeMap;

/// The seed [`QuokkaSession::tpch`](crate::QuokkaSession::tpch) generates
/// its catalog with; workerd processes must use the same one.
pub const TPCH_SEED: u64 = 0xC0FFEE;

/// Everything a process-mode participant derives from `(query, sf, config)`.
pub struct TpchProcessInputs {
    /// The compiled stage graph (identical across processes).
    pub graph: StageGraph,
    /// Schema of the query result.
    pub output_schema: Schema,
    /// Referenced base tables and their batches (the driver loads these
    /// into the shared durable store).
    pub tables: BTreeMap<String, Vec<Batch>>,
    /// Batch counts per referenced table — the split layout every process
    /// computes the channel-to-split assignment from.
    pub table_splits: BTreeMap<String, u64>,
}

/// Generate the TPC-H catalog at `sf`, lower query `number` exactly the way
/// [`QueryRunner::stream`](quokka_engine::QueryRunner::stream) would under
/// `config`, and compile its stage graph.
pub fn tpch_process_inputs(
    number: usize,
    sf: f64,
    config: &EngineConfig,
) -> Result<TpchProcessInputs> {
    let catalog = MemoryCatalog::new();
    TpchGenerator::new(sf, TPCH_SEED).register_all(&catalog)?;
    let plan = quokka_tpch::query(number)?;
    let plan = if config.optimize {
        Optimizer::with_catalog(&catalog).optimize(&plan)?
    } else {
        quokka_plan::optimizer::decorrelate(plan)?
    };
    let output_schema = plan.schema()?;
    let graph = StageGraph::compile(&plan)?;
    let mut tables = BTreeMap::new();
    let mut table_splits = BTreeMap::new();
    for table in plan.referenced_tables() {
        let batches = catalog.table_batches(&table)?;
        table_splits.insert(table.clone(), batches.len() as u64);
        tables.insert(table, batches);
    }
    Ok(TpchProcessInputs { graph, output_schema, tables, table_splits })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_inputs_are_deterministic_across_calls() {
        let config = EngineConfig::quokka(3);
        let a = tpch_process_inputs(3, 0.005, &config).unwrap();
        let b = tpch_process_inputs(3, 0.005, &config).unwrap();
        assert_eq!(a.graph.stages.len(), b.graph.stages.len());
        assert_eq!(a.table_splits, b.table_splits);
        assert_eq!(a.output_schema, b.output_schema);
        for (table, batches) in &a.tables {
            let other = &b.tables[table];
            assert_eq!(batches.len(), other.len());
            for (x, y) in batches.iter().zip(other) {
                assert_eq!(x, y);
            }
        }
    }
}
