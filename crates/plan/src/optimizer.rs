//! Rule-based logical optimizer.
//!
//! Both frontends — the [`PlanBuilder`](crate::logical::PlanBuilder) DSL and
//! the SQL binder — emit plans exactly as written: `WHERE` filters above the
//! join tree, scans that materialize every column, and whatever build/probe
//! order the query author happened to choose. This module rewrites those
//! naive plans into the shape a columnar, shuffle-based engine wants to
//! execute: selections evaluated at (or fused into) the scans, scans that
//! read only the columns the query references, equi-joins recovered from
//! cross joins, the smaller input on the build side of each hash join, and
//! top-k limits folded into their sorts.
//!
//! Every rule preserves the plan's output schema and its result multiset —
//! the optimized and unoptimized plan of any query must be observationally
//! identical on the reference executor and on the distributed runtime
//! (including under fault injection). [`Optimizer::optimize`] re-derives the
//! output schema after rewriting and fails loudly if a rule ever broke that
//! contract.
//!
//! The rules, in pipeline order:
//!
//! 0. **Subquery decorrelation** — subquery expressions produced by the SQL
//!    binder ([`Expr::Exists`], [`Expr::InSubquery`], [`Expr::ScalarSubquery`])
//!    are rewritten into the join shapes the hand-built TPC-H plans use:
//!    `EXISTS`/`IN` become semi joins, `NOT EXISTS`/`NOT IN` become anti
//!    joins, uncorrelated scalar aggregates become constant-key joins, and
//!    correlated scalar aggregates become group-by + join. This is a
//!    *lowering*, not an optional optimization: the engine runs it even when
//!    [`EngineConfig::optimize`](quokka_common::EngineConfig) is disabled,
//!    so no subquery node ever reaches stage compilation.
//! 1. **Constant folding** — fold column-free subexpressions into literals
//!    (through the same columnar evaluator the runtime uses) and apply the
//!    boolean identities; `Filter(true)` nodes disappear.
//! 2. **Filter merging** — adjacent filters collapse into one conjunction.
//! 3. **Predicate pushdown** — filters sink below projections (with
//!    column-reference substitution), below sorts, into the matching side of
//!    inner joins (probe side only for the outer-ish variants), through
//!    group-key columns of aggregations, and down to the scans, where stage
//!    fusion evaluates them inside the scan tasks.
//! 4. **Filter → join conversion** — an equality conjunct relating the two
//!    sides of an inner join becomes a hash-join key; a cross join (as
//!    lowered from a comma-separated `FROM` list) plus `WHERE` equality
//!    becomes an ordinary equi-join.
//! 5. **Build-side selection** — using catalog row counts, the smaller
//!    estimated input of an inner join becomes the build (hash-table) side;
//!    a reordering projection keeps the output schema identical.
//! 6. **Top-k pushdown** — `Limit` over `Sort` becomes a top-k sort.
//! 7. **Projection pruning** — scans are narrowed to the columns the rest of
//!    the plan actually references (re-derived *after* pushdown, so pushed
//!    predicates keep their columns alive at the scan but nowhere above it).

use crate::catalog::Catalog;
use crate::expr::{CmpOpKind, Expr};
use crate::logical::{JoinType, LogicalPlan};
use quokka_batch::datatype::ScalarValue;
use quokka_batch::Schema;
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeSet;

/// Default row-count estimate for tables the statistics source cannot
/// answer for.
const DEFAULT_TABLE_ROWS: f64 = 1000.0;

/// Fraction of rows assumed to survive a filter when estimating join input
/// sizes. The exact value matters little: build-side selection only compares
/// the two sides of one join.
const FILTER_SELECTIVITY: f64 = 0.25;

/// The rule names, in pipeline order (EXPLAIN and docs reference these).
pub const RULE_NAMES: [&str; 8] = [
    "decorrelate_subqueries",
    "fold_constants",
    "merge_filters",
    "push_down_filters",
    "filter_to_join",
    "choose_build_side",
    "push_down_topk",
    "prune_scan_columns",
];

/// Rule-based plan rewriter. Construct with [`Optimizer::new`] (no
/// statistics: build-side selection is skipped) or
/// [`Optimizer::with_catalog`] (row counts drive build-side selection).
pub struct Optimizer<'a> {
    catalog: Option<&'a dyn Catalog>,
}

impl Default for Optimizer<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> Optimizer<'a> {
    /// An optimizer without table statistics.
    pub fn new() -> Self {
        Optimizer { catalog: None }
    }

    /// An optimizer that reads row-count estimates from `catalog`.
    pub fn with_catalog(catalog: &'a dyn Catalog) -> Self {
        Optimizer { catalog: Some(catalog) }
    }

    /// Run the full rule pipeline over `plan`.
    ///
    /// The output schema is guaranteed identical to the input plan's; a rule
    /// that would change it is a bug and reported as a `PlanError`.
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let original_schema = plan.schema()?;
        let mut optimized = decorrelate(plan.clone())?;
        optimized = fold_constants(optimized)?;
        optimized = merge_filters(optimized)?;
        optimized = push_down_filters(optimized)?;
        optimized = filter_to_join(optimized)?;
        // Conversion can leave a filter directly above a join whose conjuncts
        // now all belong to one side; give them a second chance to sink.
        optimized = push_down_filters(optimized)?;
        optimized = self.choose_build_side(optimized)?;
        optimized = push_down_topk(optimized)?;
        let required: BTreeSet<String> =
            original_schema.column_names().iter().map(|s| s.to_string()).collect();
        optimized = prune_scan_columns(optimized, &required)?;
        let new_schema = optimized.schema()?;
        if new_schema != original_schema {
            return Err(QuokkaError::PlanError(format!(
                "optimizer changed the output schema from {original_schema} to {new_schema}\n{}",
                optimized.display_indent()
            )));
        }
        Ok(optimized)
    }

    /// Apply a single rule from [`RULE_NAMES`] (tests use this to check
    /// that every rule independently preserves schemas and results).
    pub fn apply_rule(&self, name: &str, plan: &LogicalPlan) -> Result<LogicalPlan> {
        let plan = plan.clone();
        match name {
            "decorrelate_subqueries" => decorrelate(plan),
            "fold_constants" => fold_constants(plan),
            "merge_filters" => merge_filters(plan),
            "push_down_filters" => push_down_filters(plan),
            "filter_to_join" => filter_to_join(plan),
            "choose_build_side" => self.choose_build_side(plan),
            "push_down_topk" => push_down_topk(plan),
            "prune_scan_columns" => {
                let required: BTreeSet<String> =
                    plan.schema()?.column_names().iter().map(|s| s.to_string()).collect();
                prune_scan_columns(plan, &required)
            }
            other => Err(QuokkaError::PlanError(format!("unknown optimizer rule '{other}'"))),
        }
    }

    // -- rule 5: build-side selection ---------------------------------------

    /// Swap the sides of an inner join when the probe input is estimated to
    /// be smaller than the build input, so the hash table is built over the
    /// smaller side. A projection restores the original column order.
    fn choose_build_side(&self, plan: LogicalPlan) -> Result<LogicalPlan> {
        let Some(catalog) = self.catalog else { return Ok(plan) };
        plan.transform_up(&mut |node| {
            let LogicalPlan::Join { build, probe, on, join_type: JoinType::Inner } = node else {
                return Ok(node);
            };
            let build_schema = build.schema()?;
            let probe_schema = probe.schema()?;
            // Reordering needs name-based resolution over the join output,
            // which duplicate names across sides would make ambiguous.
            let distinct_names =
                build_schema.column_names().iter().all(|n| probe_schema.index_of(n).is_err());
            // 1.5x hysteresis: near-equal sides keep the author's order.
            let should_swap = distinct_names
                && estimate_rows(&build, catalog) > 1.5 * estimate_rows(&probe, catalog);
            if !should_swap {
                return Ok(LogicalPlan::Join { build, probe, on, join_type: JoinType::Inner });
            }
            let swapped = LogicalPlan::Join {
                build: probe,
                probe: build,
                on: on.into_iter().map(|(b, p)| (p, b)).collect(),
                join_type: JoinType::Inner,
            };
            let reorder = build_schema
                .column_names()
                .iter()
                .chain(probe_schema.column_names().iter())
                .map(|name| (Expr::Column(name.to_string()), name.to_string()))
                .collect();
            Ok(LogicalPlan::Project { input: Box::new(swapped), exprs: reorder })
        })
    }
}

/// Row-count estimate for a subplan, from catalog statistics plus coarse
/// per-operator selectivities. Only the *relative* order of the two sides of
/// a join matters, so the constants are deliberately crude.
fn estimate_rows(plan: &LogicalPlan, catalog: &dyn Catalog) -> f64 {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            catalog.table_rows(table).map(|r| r as f64).unwrap_or(DEFAULT_TABLE_ROWS).max(1.0)
        }
        LogicalPlan::Filter { input, .. } => FILTER_SELECTIVITY * estimate_rows(input, catalog),
        LogicalPlan::Project { input, .. } => estimate_rows(input, catalog),
        LogicalPlan::Join { build, probe, join_type, .. } => {
            let b = estimate_rows(build, catalog);
            let p = estimate_rows(probe, catalog);
            match join_type {
                // A foreign-key equi-join produces about as many rows as its
                // larger (fact) side.
                JoinType::Inner | JoinType::Left => b.max(p),
                JoinType::Semi | JoinType::Anti => 0.5 * p,
            }
        }
        LogicalPlan::Aggregate { input, group_by, .. } => {
            if group_by.is_empty() {
                1.0
            } else {
                0.25 * estimate_rows(input, catalog)
            }
        }
        LogicalPlan::Sort { input, limit, .. } => {
            let rows = estimate_rows(input, catalog);
            limit.map(|n| rows.min(n as f64)).unwrap_or(rows)
        }
        LogicalPlan::Limit { input, n } => estimate_rows(input, catalog).min(*n as f64),
    }
}

// -- rule 0: subquery decorrelation ------------------------------------------

/// Whether the plan still holds subquery expressions or correlated outer
/// references anywhere (used to skip the rewrite on plain plans and to
/// verify the rewrite left none behind).
pub fn contains_subqueries(plan: &LogicalPlan) -> bool {
    fn expr_has_subquery_or_outer(e: &Expr) -> bool {
        if e.contains_subquery() {
            return true;
        }
        let mut outer = Vec::new();
        e.collect_outer_refs(&mut outer);
        !outer.is_empty()
    }
    plan.expressions().iter().any(|e| expr_has_subquery_or_outer(e))
        || plan.children().iter().any(|c| contains_subqueries(c))
}

/// Rewrite every subquery expression in the plan into joins. This is the
/// mandatory lowering between the frontends (which may emit
/// [`Expr::Exists`] / [`Expr::InSubquery`] / [`Expr::ScalarSubquery`]) and
/// everything downstream: the stage compiler and the reference executor
/// only ever see plans without subquery nodes.
///
/// The rewrites mirror the decorrelations the hand-built TPC-H plans
/// perform by hand:
///
/// * `EXISTS (sq)` as a WHERE conjunct, with equality correlation
///   `inner = outer` inside `sq`, becomes `Join(build: sq', probe: input,
///   on: [(inner, outer)], Semi)` (`Anti` for `NOT EXISTS`).
/// * `col [NOT] IN (sq)` over a one-column subquery becomes a semi (anti)
///   join keyed on `(sq output column, col)` plus any correlation pairs.
/// * A correlated scalar aggregate `cmp(x, (SELECT agg(..) WHERE inner =
///   outer))` turns the subquery's global aggregate into a group-by over
///   the correlation columns and joins it in on `(key, outer)`; the
///   subquery expression is replaced by a reference to the joined value
///   column.
/// * An uncorrelated scalar aggregate is attached through a constant-key
///   join (both sides project a literal `1` key), keeping the join
///   hash-partitionable.
///
/// Rows whose correlated aggregate has no group (SQL: scalar subquery over
/// an empty set yields NULL, and any comparison with NULL is false) are
/// dropped by the inner join — the same semantics the hand-built plans
/// encode.
pub fn decorrelate(plan: LogicalPlan) -> Result<LogicalPlan> {
    if !contains_subqueries(&plan) {
        return Ok(plan);
    }
    let mut counter = 0usize;
    let rewritten = decorrelate_node(plan, &mut counter)?;
    if contains_subqueries(&rewritten) {
        return Err(QuokkaError::PlanError(format!(
            "decorrelation left subquery expressions behind (subqueries are only \
             supported as WHERE/HAVING conjuncts, with equality correlation)\n{}",
            rewritten.display_indent()
        )));
    }
    Ok(rewritten)
}

fn decorrelate_node(plan: LogicalPlan, counter: &mut usize) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| match node {
        LogicalPlan::Filter { input, predicate } if predicate.contains_subquery() => {
            rewrite_subquery_filter(*input, predicate, counter)
        }
        other => Ok(other),
    })
}

/// Rewrite one `Filter` whose predicate contains subquery expressions.
fn rewrite_subquery_filter(
    input: LogicalPlan,
    predicate: Expr,
    counter: &mut usize,
) -> Result<LogicalPlan> {
    let original_schema = input.schema()?;
    let mut plan = input;
    let mut residual: Vec<Expr> = Vec::new();
    let mut widened = false;
    for conjunct in predicate.split_conjuncts() {
        // Normalize `NOT EXISTS` / `NOT (x IN sq)` written through Expr::Not.
        let conjunct = match conjunct {
            Expr::Not(inner) => match *inner {
                Expr::Exists { plan, negated } => Expr::Exists { plan, negated: !negated },
                Expr::InSubquery { expr, plan, negated } => {
                    Expr::InSubquery { expr, plan, negated: !negated }
                }
                other => Expr::Not(Box::new(other)),
            },
            other => other,
        };
        match conjunct {
            Expr::Exists { plan: sq, negated } => {
                plan = apply_exists(plan, *sq, negated, Vec::new(), counter)?;
            }
            Expr::InSubquery { expr, plan: sq, negated } => {
                let Expr::Column(outer_col) = *expr else {
                    return Err(QuokkaError::PlanError(
                        "IN (SELECT ...) is only supported on a plain column".to_string(),
                    ));
                };
                let sq_schema = sq.schema()?;
                if sq_schema.len() != 1 {
                    return Err(QuokkaError::PlanError(format!(
                        "IN subquery must produce exactly one column, got {}",
                        sq_schema.len()
                    )));
                }
                let inner_col = sq_schema.field(0).name.clone();
                plan = apply_exists(plan, *sq, negated, vec![(inner_col, outer_col)], counter)?;
            }
            other if other.contains_subquery() => {
                let (rewritten, new_plan) = rewrite_scalar_subqueries(other, plan, counter)?;
                plan = new_plan;
                widened = true;
                residual.push(rewritten);
            }
            other => residual.push(other),
        }
    }
    if let Some(p) = Expr::conjoin(residual) {
        plan = LogicalPlan::Filter { input: Box::new(plan), predicate: p };
    }
    if widened {
        // Scalar rewrites joined extra columns in front of the input's; a
        // projection restores the pre-rewrite schema for everything above.
        let passthrough = original_schema
            .column_names()
            .iter()
            .map(|n| (Expr::Column(n.to_string()), n.to_string()))
            .collect();
        plan = LogicalPlan::Project { input: Box::new(plan), exprs: passthrough };
    }
    Ok(plan)
}

/// Attach `sq` to `plan` as a semi (anti) join: `extra_keys` are
/// `(subquery column, outer column)` pairs from an IN test, and `sq`'s own
/// correlated equalities contribute further pairs.
fn apply_exists(
    plan: LogicalPlan,
    sq: LogicalPlan,
    negated: bool,
    extra_keys: Vec<(String, String)>,
    counter: &mut usize,
) -> Result<LogicalPlan> {
    let sq = decorrelate_node(sq, counter)?;
    let (sq, mut pairs) = strip_correlation(sq)?;
    pairs.extend(extra_keys);
    // A row limit inside a *correlated* subquery applies per outer row in
    // SQL, but the decorrelated join would apply it globally — reject
    // rather than silently change which rows exist. (Uncorrelated limits
    // are fine: only emptiness matters to a semi/anti join.)
    if !pairs.is_empty() && has_row_limit(&sq) {
        return Err(QuokkaError::PlanError(
            "LIMIT inside a correlated EXISTS/IN subquery is not supported: the \
             decorrelated limit would apply globally instead of per outer row"
                .to_string(),
        ));
    }
    if pairs.is_empty() {
        // An uncorrelated EXISTS degenerates to a keyless semi/anti join
        // ("keep all rows iff the subquery is non-empty"), which the join
        // operator executes single-channel.
        let join_type = if negated { JoinType::Anti } else { JoinType::Semi };
        return Ok(LogicalPlan::Join {
            build: Box::new(sq),
            probe: Box::new(plan),
            on: vec![],
            join_type,
        });
    }
    let sq_schema = sq.schema()?;
    let plan_schema = plan.schema()?;
    for (inner, outer) in &pairs {
        let inner_type = sq_schema.data_type(inner).map_err(|_| {
            QuokkaError::PlanError(format!(
                "correlated column '{inner}' is not visible in the subquery's output \
                 (it may have been projected away); cannot decorrelate"
            ))
        })?;
        let outer_type = plan_schema.data_type(outer)?;
        if inner_type != outer_type {
            return Err(QuokkaError::PlanError(format!(
                "correlated join key type mismatch: '{inner}' is {inner_type} but \
                 '{outer}' is {outer_type}"
            )));
        }
    }
    let join_type = if negated { JoinType::Anti } else { JoinType::Semi };
    Ok(LogicalPlan::Join { build: Box::new(sq), probe: Box::new(plan), on: pairs, join_type })
}

/// Replace every [`Expr::ScalarSubquery`] inside `expr` with a column
/// reference to the subquery's joined-in value, extending `plan` with the
/// join that carries it.
fn rewrite_scalar_subqueries(
    expr: Expr,
    plan: LogicalPlan,
    counter: &mut usize,
) -> Result<(Expr, LogicalPlan)> {
    match expr {
        Expr::ScalarSubquery(sq) => {
            let id = *counter;
            *counter += 1;
            let sq = decorrelate_node(*sq, counter)?;
            let (sq, pairs) = strip_correlation(sq)?;
            let value_name = format!("__sq{id}_val");
            if pairs.is_empty() {
                let plan = attach_uncorrelated_scalar(plan, sq, id, &value_name)?;
                Ok((Expr::Column(value_name), plan))
            } else {
                let plan = attach_correlated_scalar(plan, sq, pairs, id, &value_name)?;
                Ok((Expr::Column(value_name), plan))
            }
        }
        Expr::Exists { .. } | Expr::InSubquery { .. } => Err(QuokkaError::PlanError(
            "EXISTS / IN subqueries are only supported as top-level WHERE or HAVING \
             conjuncts (not nested under OR, CASE, or other operators)"
                .to_string(),
        )),
        // The inner-join rewrite drops rows whose correlated aggregate has
        // no group *before* the predicate runs — sound only when the whole
        // conjunct is false without the value. Under OR (the other disjunct
        // could keep the row) or CASE (the ELSE branch could) that would
        // silently return wrong rows, so fail loudly instead.
        Expr::Or(l, r) if l.contains_subquery() || r.contains_subquery() => {
            Err(QuokkaError::PlanError(
                "scalar subqueries under OR are not supported: rows without a matching \
                 subquery value would be dropped before the other disjunct could keep them"
                    .to_string(),
            ))
        }
        e @ Expr::Case { .. } if e.contains_subquery() => Err(QuokkaError::PlanError(
            "scalar subqueries inside CASE are not supported: rows without a matching \
             subquery value would be dropped instead of taking another branch"
                .to_string(),
        )),
        other => {
            // Rebuild this node with each child rewritten, threading the
            // growing plan through.
            let mut plan = Some(plan);
            let mut error = None;
            let rewritten = other.map_children(&mut |child| {
                if error.is_some() {
                    return child;
                }
                match rewrite_scalar_subqueries(child, plan.take().expect("plan threaded"), counter)
                {
                    Ok((e, p)) => {
                        plan = Some(p);
                        e
                    }
                    Err(e) => {
                        error = Some(e);
                        Expr::Literal(ScalarValue::Bool(false))
                    }
                }
            });
            match error {
                Some(e) => Err(e),
                None => Ok((rewritten, plan.expect("plan threaded"))),
            }
        }
    }
}

/// Constant-key join for an uncorrelated scalar subquery: both sides gain a
/// literal `1` key column, so the value lands on every input row while the
/// join stays an ordinary hash join.
fn attach_uncorrelated_scalar(
    plan: LogicalPlan,
    sq: LogicalPlan,
    id: usize,
    value_name: &str,
) -> Result<LogicalPlan> {
    let sq_schema = sq.schema()?;
    if sq_schema.len() != 1 {
        return Err(QuokkaError::PlanError(format!(
            "scalar subquery must produce exactly one column, got {}",
            sq_schema.len()
        )));
    }
    let build_key = format!("__sq{id}_jkb");
    let probe_key = format!("__sq{id}_jkp");
    let build = LogicalPlan::Project {
        input: Box::new(sq),
        exprs: vec![
            (Expr::Column(sq_schema.field(0).name.clone()), value_name.to_string()),
            (Expr::Literal(ScalarValue::Int64(1)), build_key.clone()),
        ],
    };
    let plan_schema = plan.schema()?;
    let mut probe_exprs: Vec<(Expr, String)> = plan_schema
        .column_names()
        .iter()
        .map(|n| (Expr::Column(n.to_string()), n.to_string()))
        .collect();
    probe_exprs.push((Expr::Literal(ScalarValue::Int64(1)), probe_key.clone()));
    let probe = LogicalPlan::Project { input: Box::new(plan), exprs: probe_exprs };
    Ok(LogicalPlan::Join {
        build: Box::new(build),
        probe: Box::new(probe),
        on: vec![(build_key, probe_key)],
        join_type: JoinType::Inner,
    })
}

/// Group-by + join for a correlated scalar aggregate: the subquery's global
/// aggregate gains the correlation columns as group keys (fresh-named), the
/// single output value is renamed, and the result joins onto the outer plan
/// keyed on `(fresh key, outer column)`.
fn attach_correlated_scalar(
    plan: LogicalPlan,
    sq: LogicalPlan,
    pairs: Vec<(String, String)>,
    id: usize,
    value_name: &str,
) -> Result<LogicalPlan> {
    let sq_schema = sq.schema()?;
    if sq_schema.len() != 1 {
        return Err(QuokkaError::PlanError(format!(
            "scalar subquery must produce exactly one column, got {}",
            sq_schema.len()
        )));
    }
    let keys: Vec<(String, String, String)> = pairs
        .iter()
        .enumerate()
        .map(|(i, (inner, outer))| (inner.clone(), outer.clone(), format!("__sq{id}_k{i}")))
        .collect();
    let grouped = push_group_keys(sq, &keys, value_name)?;
    let grouped_schema = grouped.schema()?;
    let plan_schema = plan.schema()?;
    let mut on = Vec::with_capacity(keys.len());
    for (inner, outer, fresh) in &keys {
        let build_type = grouped_schema.data_type(fresh)?;
        let probe_type = plan_schema.data_type(outer).map_err(|_| {
            QuokkaError::PlanError(format!(
                "correlated scalar subquery references outer column '{outer}', which is \
                 not visible where the subquery appears"
            ))
        })?;
        if build_type != probe_type {
            return Err(QuokkaError::PlanError(format!(
                "correlated join key type mismatch: '{inner}' is {build_type} but \
                 '{outer}' is {probe_type}"
            )));
        }
        on.push((fresh.clone(), outer.clone()));
    }
    Ok(LogicalPlan::Join {
        build: Box::new(grouped),
        probe: Box::new(plan),
        on,
        join_type: JoinType::Inner,
    })
}

/// Turn the subquery's global aggregate into a group-by over the correlation
/// columns, threading the fresh key columns through any projection above the
/// aggregate and renaming the single value column to `value_name`.
///
/// Supported shapes (exactly what the SQL binder emits for a single-item
/// aggregate SELECT): `Aggregate` or `Project(Aggregate)`.
fn push_group_keys(
    sq: LogicalPlan,
    keys: &[(String, String, String)],
    value_name: &str,
) -> Result<LogicalPlan> {
    let group_by = |input: &LogicalPlan| -> Result<Vec<(Expr, String)>> {
        let input_schema = input.schema()?;
        keys.iter()
            .map(|(inner, _, fresh)| {
                input_schema.data_type(inner).map_err(|_| {
                    QuokkaError::PlanError(format!(
                        "correlated column '{inner}' is not visible at the subquery's \
                         aggregate input; cannot decorrelate"
                    ))
                })?;
                Ok((Expr::Column(inner.clone()), fresh.clone()))
            })
            .collect()
    };
    match sq {
        LogicalPlan::Aggregate { input, group_by: old, mut aggregates } if old.is_empty() => {
            if aggregates.len() != 1 {
                return Err(QuokkaError::PlanError(
                    "correlated scalar subquery must compute exactly one aggregate".to_string(),
                ));
            }
            let group_by = group_by(&input)?;
            aggregates[0].alias = value_name.to_string();
            Ok(LogicalPlan::Aggregate { input, group_by, aggregates })
        }
        LogicalPlan::Project { input, exprs } => {
            let LogicalPlan::Aggregate { input: agg_input, group_by: old, aggregates } = *input
            else {
                return Err(QuokkaError::PlanError(
                    "correlated scalar subqueries must be a single aggregate (optionally \
                     under one projection); cannot decorrelate this shape"
                        .to_string(),
                ));
            };
            if !old.is_empty() {
                return Err(QuokkaError::PlanError(
                    "correlated scalar subqueries cannot already have GROUP BY".to_string(),
                ));
            }
            if exprs.len() != 1 {
                return Err(QuokkaError::PlanError(format!(
                    "scalar subquery must produce exactly one column, got {}",
                    exprs.len()
                )));
            }
            let group_by = group_by(&agg_input)?;
            let aggregate =
                LogicalPlan::Aggregate { input: agg_input, group_by: group_by.clone(), aggregates };
            let mut projected: Vec<(Expr, String)> = group_by
                .iter()
                .map(|(_, fresh)| (Expr::Column(fresh.clone()), fresh.clone()))
                .collect();
            let (value_expr, _) = exprs.into_iter().next().expect("one expression");
            projected.push((value_expr, value_name.to_string()));
            Ok(LogicalPlan::Project { input: Box::new(aggregate), exprs: projected })
        }
        other => Err(QuokkaError::PlanError(format!(
            "correlated scalar subqueries must be a single aggregate (optionally under \
             one projection), got {} at the subquery root",
            other.name()
        ))),
    }
}

/// Whether the plan limits its row count anywhere (a `Limit` node or a
/// top-k sort).
fn has_row_limit(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::Limit { .. } | LogicalPlan::Sort { limit: Some(_), .. } => true,
        other => other.children().iter().any(|c| has_row_limit(c)),
    }
}

/// Remove equality conjuncts of the form `inner_column = OuterRef(outer)`
/// (either operand order) from the plan's filters, returning the stripped
/// plan and the `(inner, outer)` pairs. Any other use of an outer reference
/// is left in place and reported by [`decorrelate`]'s final check.
fn strip_correlation(plan: LogicalPlan) -> Result<(LogicalPlan, Vec<(String, String)>)> {
    let mut pairs: Vec<(String, String)> = Vec::new();
    let plan = plan.transform_up(&mut |node| {
        let LogicalPlan::Filter { input, predicate } = node else { return Ok(node) };
        let mut kept = Vec::new();
        for conjunct in predicate.split_conjuncts() {
            match as_correlation_pair(&conjunct) {
                Some(pair) => {
                    if !pairs.contains(&pair) {
                        pairs.push(pair);
                    }
                }
                None => kept.push(conjunct),
            }
        }
        Ok(match Expr::conjoin(kept) {
            Some(p) => LogicalPlan::Filter { input, predicate: p },
            None => *input,
        })
    })?;
    Ok((plan, pairs))
}

/// `(inner column, outer column)` if the conjunct is an equality between a
/// plain column and an outer reference.
fn as_correlation_pair(conjunct: &Expr) -> Option<(String, String)> {
    let Expr::Cmp { op: CmpOpKind::Eq, left, right } = conjunct else { return None };
    match (&**left, &**right) {
        (Expr::Column(inner), Expr::OuterRef { name, .. })
        | (Expr::OuterRef { name, .. }, Expr::Column(inner)) => Some((inner.clone(), name.clone())),
        _ => None,
    }
}

// -- rule 1: constant folding ------------------------------------------------

/// Fold constant subexpressions in every node; drop filters whose predicate
/// folded to `true`.
fn fold_constants(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let node = node.map_expressions(&mut |e| e.fold_constants());
        Ok(match node {
            LogicalPlan::Filter { input, predicate: Expr::Literal(ScalarValue::Bool(true)) } => {
                *input
            }
            other => other,
        })
    })
}

// -- rule 2: filter merging --------------------------------------------------

/// Collapse `Filter(Filter(x, a), b)` into `Filter(x, a AND b)`.
fn merge_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| match node {
        LogicalPlan::Filter { input, predicate } => match *input {
            LogicalPlan::Filter { input: inner, predicate: first } => {
                Ok(LogicalPlan::Filter { input: inner, predicate: first.and(predicate) })
            }
            other => Ok(LogicalPlan::Filter { input: Box::new(other), predicate }),
        },
        other => Ok(other),
    })
}

// -- rule 3: predicate pushdown ----------------------------------------------

/// Sink every filter as far toward the scans as semantics allow. A single
/// top-down pass suffices: a filter that sinks one level is revisited when
/// the traversal descends into its new position.
fn push_down_filters(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_down(&mut sink_filter)
}

/// Repeatedly push the filter at the top of `node` one level down, until it
/// stops being the top node or cannot sink further.
fn sink_filter(mut node: LogicalPlan) -> Result<LogicalPlan> {
    loop {
        let LogicalPlan::Filter { input, predicate } = node else { return Ok(node) };
        let (pushed, changed) = push_filter_step(*input, predicate)?;
        if !changed {
            return Ok(pushed);
        }
        node = pushed;
    }
}

/// One pushdown step for `Filter { input, predicate }`. Returns the new
/// subtree and whether anything moved.
fn push_filter_step(input: LogicalPlan, predicate: Expr) -> Result<(LogicalPlan, bool)> {
    let keep = |input: LogicalPlan, predicate: Expr| {
        (LogicalPlan::Filter { input: Box::new(input), predicate }, false)
    };
    Ok(match input {
        // Merge filter stacks as they sink.
        LogicalPlan::Filter { input, predicate: first } => {
            (LogicalPlan::Filter { input, predicate: first.and(predicate) }, true)
        }
        // Below a projection, with output-column references replaced by the
        // expressions that compute them.
        LogicalPlan::Project { input, exprs } => {
            let substituted = predicate
                .substitute(&|name| exprs.iter().find(|(_, n)| n == name).map(|(e, _)| e.clone()));
            let filtered = LogicalPlan::Filter { input, predicate: substituted };
            (LogicalPlan::Project { input: Box::new(filtered), exprs }, true)
        }
        // Below a full sort (a top-k sort must see all rows first).
        LogicalPlan::Sort { input, keys, limit: None } => {
            let filtered = LogicalPlan::Filter { input, predicate };
            (LogicalPlan::Sort { input: Box::new(filtered), keys, limit: None }, true)
        }
        // Into the join side(s) each conjunct references.
        LogicalPlan::Join { build, probe, on, join_type } => {
            let build_schema = build.schema()?;
            let probe_schema = probe.schema()?;
            let mut to_build = Vec::new();
            let mut to_probe = Vec::new();
            let mut residual = Vec::new();
            for conjunct in predicate.split_conjuncts() {
                let has_refs = !conjunct.referenced_columns().is_empty();
                let in_build = has_refs && conjunct.references_only(&build_schema);
                let in_probe = has_refs && conjunct.references_only(&probe_schema);
                // Build-side pushdown is unsound for Left (filtering the
                // build side turns matches into default-filled rows) and
                // meaningless for Semi/Anti (the filter sees probe columns
                // only). A name in both schemas is ambiguous: keep above.
                match (in_build && !in_probe, in_probe && !in_build, join_type) {
                    (true, false, JoinType::Inner) => to_build.push(conjunct),
                    (false, true, _) => to_probe.push(conjunct),
                    _ => residual.push(conjunct),
                }
            }
            let changed = !to_build.is_empty() || !to_probe.is_empty();
            let build = match Expr::conjoin(to_build) {
                Some(p) => Box::new(LogicalPlan::Filter { input: build, predicate: p }),
                None => build,
            };
            let probe = match Expr::conjoin(to_probe) {
                Some(p) => Box::new(LogicalPlan::Filter { input: probe, predicate: p }),
                None => probe,
            };
            let join = LogicalPlan::Join { build, probe, on, join_type };
            match Expr::conjoin(residual) {
                Some(p) => (LogicalPlan::Filter { input: Box::new(join), predicate: p }, changed),
                None => (join, changed),
            }
        }
        // Through an aggregation when every referenced column is a group
        // key: filtering whole groups by a key value is the same as
        // filtering their input rows by the key expression.
        LogicalPlan::Aggregate { input, group_by, aggregates } => {
            let key_names: BTreeSet<&str> = group_by.iter().map(|(_, n)| n.as_str()).collect();
            let refs = predicate.referenced_columns();
            if refs.is_empty() || !refs.iter().all(|c| key_names.contains(c.as_str())) {
                keep(LogicalPlan::Aggregate { input, group_by, aggregates }, predicate)
            } else {
                let substituted = predicate.substitute(&|name| {
                    group_by.iter().find(|(_, n)| n == name).map(|(e, _)| e.clone())
                });
                let filtered = LogicalPlan::Filter { input, predicate: substituted };
                (LogicalPlan::Aggregate { input: Box::new(filtered), group_by, aggregates }, true)
            }
        }
        other => keep(other, predicate),
    })
}

// -- rule 4: filter -> join conversion ---------------------------------------

/// Turn equality conjuncts relating the two sides of an inner join into
/// hash-join keys. A cross join (empty key list, as lowered from a
/// comma-separated FROM list) followed by `WHERE a = b` becomes a plain
/// equi-join; joins that already have keys gain extra ones (e.g. Q5's
/// `s_nationkey = c_nationkey` "local supplier" condition).
fn filter_to_join(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Filter { input, predicate } = node else { return Ok(node) };
        let LogicalPlan::Join { build, probe, mut on, join_type: JoinType::Inner } = *input else {
            return Ok(LogicalPlan::Filter { input, predicate });
        };
        let build_schema = build.schema()?;
        let probe_schema = probe.schema()?;
        let mut residual = Vec::new();
        for conjunct in predicate.split_conjuncts() {
            match as_join_key(&conjunct, &build_schema, &probe_schema) {
                Some(pair) => on.push(pair),
                None => residual.push(conjunct),
            }
        }
        let join = LogicalPlan::Join { build, probe, on, join_type: JoinType::Inner };
        Ok(match Expr::conjoin(residual) {
            Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
            None => join,
        })
    })
}

/// If `conjunct` is `a = b` with one plain column per join side (and equal
/// types, so hash equality matches comparison equality), the key pair in
/// `(build column, probe column)` order.
fn as_join_key(
    conjunct: &Expr,
    build_schema: &Schema,
    probe_schema: &Schema,
) -> Option<(String, String)> {
    let Expr::Cmp { op: CmpOpKind::Eq, left, right } = conjunct else { return None };
    let (Expr::Column(a), Expr::Column(b)) = (&**left, &**right) else { return None };
    // Each name must resolve on exactly one side, or hashing would read a
    // different column than the comparison did.
    let side = |name: &str| {
        match (build_schema.index_of(name).is_ok(), probe_schema.index_of(name).is_ok()) {
            (true, false) => Some(true),  // build
            (false, true) => Some(false), // probe
            _ => None,
        }
    };
    let (build_col, probe_col) = match (side(a)?, side(b)?) {
        (true, false) => (a.clone(), b.clone()),
        (false, true) => (b.clone(), a.clone()),
        _ => return None,
    };
    let same_type =
        build_schema.data_type(&build_col).ok()? == probe_schema.data_type(&probe_col).ok()?;
    same_type.then_some((build_col, probe_col))
}

// -- rule 6: top-k pushdown --------------------------------------------------

/// Fold `Limit` over `Sort` into a top-k sort, and collapse limit stacks.
fn push_down_topk(plan: LogicalPlan) -> Result<LogicalPlan> {
    plan.transform_up(&mut |node| {
        let LogicalPlan::Limit { input, n } = node else { return Ok(node) };
        Ok(match *input {
            LogicalPlan::Sort { input, keys, limit } => {
                let k = limit.map_or(n, |l| l.min(n));
                LogicalPlan::Sort { input, keys, limit: Some(k) }
            }
            LogicalPlan::Limit { input, n: m } => LogicalPlan::Limit { input, n: n.min(m) },
            other => LogicalPlan::Limit { input: Box::new(other), n },
        })
    })
}

// -- rule 7: projection pruning ----------------------------------------------

/// Narrow every scan to the columns required above it. `required` is the set
/// of output column names the parent needs from `plan`.
fn prune_scan_columns(plan: LogicalPlan, required: &BTreeSet<String>) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { table, schema } => {
            let kept: Vec<usize> = (0..schema.len())
                .filter(|&i| required.contains(schema.field(i).name.as_str()))
                .collect();
            // A scan that feeds pure row counting (e.g. COUNT(*)) references
            // no columns at all; keep one so batches still carry row counts.
            let narrowed =
                if kept.is_empty() { schema.project(&[0]) } else { schema.project(&kept) };
            LogicalPlan::Scan { table, schema: narrowed }
        }
        LogicalPlan::Filter { input, predicate } => {
            let mut child = required.clone();
            child.extend(predicate.referenced_columns());
            LogicalPlan::Filter { input: Box::new(prune_scan_columns(*input, &child)?), predicate }
        }
        LogicalPlan::Project { input, exprs } => {
            // Drop expressions nothing above needs (at the root, `required`
            // is the full output schema, so the final projection is kept
            // whole). This matters most for the reordering projections
            // build-side selection inserts, which would otherwise reference
            // every column and keep the whole subtree wide.
            let mut kept: Vec<(Expr, String)> =
                exprs.iter().filter(|(_, n)| required.contains(n)).cloned().collect();
            if kept.is_empty() {
                kept.push(exprs[0].clone());
            }
            let mut child = BTreeSet::new();
            for (e, _) in &kept {
                child.extend(e.referenced_columns());
            }
            LogicalPlan::Project {
                input: Box::new(prune_scan_columns(*input, &child)?),
                exprs: kept,
            }
        }
        LogicalPlan::Join { build, probe, on, join_type } => {
            let build_schema = build.schema()?;
            let probe_schema = probe.schema()?;
            // The probe side keeps its keys plus whatever the parent needs;
            // the build side of a semi/anti join contributes no output
            // columns, so only its keys stay alive.
            let mut build_req: BTreeSet<String> = on.iter().map(|(b, _)| b.clone()).collect();
            let mut probe_req: BTreeSet<String> = on.iter().map(|(_, p)| p.clone()).collect();
            if matches!(join_type, JoinType::Inner | JoinType::Left) {
                for name in required {
                    if build_schema.index_of(name).is_ok() {
                        build_req.insert(name.clone());
                    }
                    if probe_schema.index_of(name).is_ok() {
                        probe_req.insert(name.clone());
                    }
                }
            } else {
                probe_req.extend(required.iter().cloned());
            }
            LogicalPlan::Join {
                build: Box::new(prune_scan_columns(*build, &build_req)?),
                probe: Box::new(prune_scan_columns(*probe, &probe_req)?),
                on,
                join_type,
            }
        }
        LogicalPlan::Aggregate { input, group_by, aggregates } => {
            let mut child = BTreeSet::new();
            for (e, _) in &group_by {
                child.extend(e.referenced_columns());
            }
            for a in &aggregates {
                child.extend(a.expr.referenced_columns());
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune_scan_columns(*input, &child)?),
                group_by,
                aggregates,
            }
        }
        // Sort and Limit pass their input columns through; at the root,
        // `required` already names the full output schema, so nothing a
        // caller can observe is dropped.
        LogicalPlan::Sort { input, keys, limit } => {
            let mut child = required.clone();
            child.extend(keys.iter().map(|(k, _)| k.clone()));
            LogicalPlan::Sort { input: Box::new(prune_scan_columns(*input, &child)?), keys, limit }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(prune_scan_columns(*input, required)?), n }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{count, sum};
    use crate::catalog::MemoryCatalog;
    use crate::expr::{col, lit};
    use crate::logical::PlanBuilder;
    use crate::reference::{same_result, ReferenceExecutor};
    use quokka_batch::{Batch, Column, DataType};

    /// A small two-table catalog: a wide fact table and a narrow dim table.
    fn catalog() -> MemoryCatalog {
        let catalog = MemoryCatalog::new();
        let fact = Schema::from_pairs(&[
            ("f_key", DataType::Int64),
            ("f_val", DataType::Float64),
            ("f_tag", DataType::Utf8),
            ("f_pad", DataType::Utf8),
        ]);
        catalog.register(
            "fact",
            fact.clone(),
            vec![Batch::try_new(
                fact,
                vec![
                    Column::Int64((0..100).map(|i| i % 7).collect()),
                    Column::Float64((0..100).map(|i| i as f64 * 0.5).collect()),
                    Column::Utf8((0..100).map(|i| format!("t{}", i % 3)).collect()),
                    Column::Utf8((0..100).map(|_| "padding-padding".to_string()).collect()),
                ],
            )
            .unwrap()],
        );
        let dim = Schema::from_pairs(&[("d_key", DataType::Int64), ("d_name", DataType::Utf8)]);
        catalog.register(
            "dim",
            dim.clone(),
            vec![Batch::try_new(
                dim,
                vec![
                    Column::Int64((0..7).collect()),
                    Column::Utf8((0..7).map(|i| format!("dim-{i}")).collect()),
                ],
            )
            .unwrap()],
        );
        catalog
    }

    fn fact_scan(catalog: &MemoryCatalog) -> PlanBuilder {
        PlanBuilder::scan("fact", catalog.table_schema("fact").unwrap())
    }

    fn dim_scan(catalog: &MemoryCatalog) -> PlanBuilder {
        PlanBuilder::scan("dim", catalog.table_schema("dim").unwrap())
    }

    /// Optimize with stats and assert schema + reference-result parity.
    fn optimize_checked(catalog: &MemoryCatalog, plan: &LogicalPlan) -> LogicalPlan {
        let optimized = Optimizer::with_catalog(catalog).optimize(plan).unwrap();
        assert_eq!(optimized.schema().unwrap(), plan.schema().unwrap());
        let exec = ReferenceExecutor::new(catalog);
        let naive = exec.execute(plan).unwrap();
        let rewritten = exec.execute(&optimized).unwrap();
        assert!(
            same_result(&naive, &rewritten),
            "optimized plan diverged\nnaive:\n{}\noptimized:\n{}",
            plan.display_indent(),
            optimized.display_indent()
        );
        optimized
    }

    /// Collect every scan node's (table, column names).
    fn scans(plan: &LogicalPlan) -> Vec<(String, Vec<String>)> {
        let mut out = Vec::new();
        fn walk(plan: &LogicalPlan, out: &mut Vec<(String, Vec<String>)>) {
            if let LogicalPlan::Scan { table, schema } = plan {
                out.push((
                    table.clone(),
                    schema.column_names().iter().map(|s| s.to_string()).collect(),
                ));
            }
            for child in plan.children() {
                walk(child, out);
            }
        }
        walk(plan, &mut out);
        out
    }

    fn first_filter_predicate(plan: &LogicalPlan) -> Option<&Expr> {
        if let LogicalPlan::Filter { predicate, .. } = plan {
            return Some(predicate);
        }
        plan.children().iter().find_map(|c| first_filter_predicate(c))
    }

    #[test]
    fn constant_expressions_fold_to_literals() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .filter(col("f_val").gt(lit(1.0f64).add(lit(2.0f64))))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let predicate = first_filter_predicate(&optimized).expect("filter kept");
        assert_eq!(*predicate, col("f_val").gt(lit(3.0f64)));
    }

    #[test]
    fn always_true_filters_disappear() {
        let catalog = catalog();
        let plan = fact_scan(&catalog).filter(lit(1i64).lt(lit(2i64))).build().unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        assert!(first_filter_predicate(&optimized).is_none(), "{}", optimized.display_indent());
    }

    #[test]
    fn adjacent_filters_merge() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .filter(col("f_val").gt(lit(1.0f64)))
            .filter(col("f_key").gt(lit(2i64)))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // One Filter directly above the scan, containing both conjuncts.
        match &optimized {
            LogicalPlan::Filter { input, predicate } => {
                assert!(matches!(**input, LogicalPlan::Scan { .. }));
                assert_eq!(predicate.referenced_columns(), vec!["f_val", "f_key"]);
            }
            other => panic!("expected Filter(Scan), got {}", other.display_indent()),
        }
    }

    #[test]
    fn filters_push_below_projections_with_substitution() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .project(vec![(col("f_val").mul(lit(2.0f64)), "double"), (col("f_key"), "k")])
            .filter(col("double").gt(lit(50.0f64)))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // Project on top, filter (over the substituted expression) below.
        match &optimized {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, input } => {
                    assert_eq!(*predicate, col("f_val").mul(lit(2.0f64)).gt(lit(50.0f64)));
                    assert!(matches!(**input, LogicalPlan::Scan { .. }));
                }
                other => panic!("expected Filter below Project, got {}", other.name()),
            },
            other => panic!("expected Project on top, got {}", other.name()),
        }
    }

    #[test]
    fn filters_split_into_inner_join_sides() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Inner)
            .filter(col("d_name").like("dim-%").and(col("f_val").gt(lit(3.0f64))))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // No filter above the join any more; each side got its conjunct.
        match &optimized {
            LogicalPlan::Join { build, probe, .. } => {
                assert!(
                    matches!(**build, LogicalPlan::Filter { .. }),
                    "build side should be filtered: {}",
                    optimized.display_indent()
                );
                assert!(
                    matches!(**probe, LogicalPlan::Filter { .. }),
                    "probe side should be filtered: {}",
                    optimized.display_indent()
                );
            }
            other => panic!("expected bare Join on top, got {}", other.name()),
        }
    }

    #[test]
    fn left_join_build_side_is_not_filtered() {
        let catalog = catalog();
        // Probe (fact) rows must survive even when their dim match would be
        // filtered out; the predicate has to stay above the join.
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Left)
            .filter(col("d_name").like("dim-1%"))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        match &optimized {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Join { .. }));
            }
            other => panic!("expected Filter to stay above Left join, got {}", other.name()),
        }
    }

    #[test]
    fn group_key_filters_push_through_aggregates() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .aggregate(vec![(col("f_tag"), "tag")], vec![sum(col("f_val"), "total")])
            .filter(col("tag").eq(lit("t1")))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        // The filter lands below the aggregate, rewritten over f_tag.
        match &optimized {
            LogicalPlan::Aggregate { input, .. } => match &**input {
                LogicalPlan::Filter { predicate, .. } => {
                    assert_eq!(*predicate, col("f_tag").eq(lit("t1")));
                }
                other => panic!("expected Filter below Aggregate, got {}", other.name()),
            },
            other => panic!("expected Aggregate on top, got {}", other.name()),
        }
    }

    #[test]
    fn cross_join_plus_equality_becomes_equi_join() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![], JoinType::Inner)
            .filter(col("d_key").eq(col("f_key")).and(col("f_val").gt(lit(10.0f64))))
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        fn find_join(plan: &LogicalPlan) -> Option<&LogicalPlan> {
            if matches!(plan, LogicalPlan::Join { .. }) {
                return Some(plan);
            }
            plan.children().iter().find_map(|c| find_join(c))
        }
        let join = find_join(&optimized).expect("join survives");
        match join {
            LogicalPlan::Join { on, .. } => {
                assert_eq!(on, &vec![("d_key".to_string(), "f_key".to_string())]);
            }
            _ => unreachable!(),
        }
        // The non-equality conjunct was pushed into the fact side.
        assert!(first_filter_predicate(&optimized).is_some());
    }

    #[test]
    fn build_side_selection_puts_the_small_table_on_the_build_side() {
        let catalog = catalog();
        // fact (100 rows) as build, dim (7 rows) as probe: should swap, and
        // a projection must restore the original column order.
        let plan = fact_scan(&catalog)
            .join(dim_scan(&catalog), vec![("f_key", "d_key")], JoinType::Inner)
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        match &optimized {
            LogicalPlan::Project { input, .. } => match &**input {
                LogicalPlan::Join { build, on, .. } => {
                    assert_eq!(build.referenced_tables(), vec!["dim"]);
                    assert_eq!(on, &vec![("d_key".to_string(), "f_key".to_string())]);
                }
                other => panic!("expected swapped Join, got {}", other.name()),
            },
            other => panic!("expected reordering Project, got {}", other.name()),
        }
    }

    #[test]
    fn near_equal_sides_are_not_swapped() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Inner)
            .build()
            .unwrap();
        // dim (7) is already the build side; nothing to do.
        let optimized = optimize_checked(&catalog, &plan);
        assert!(matches!(optimized, LogicalPlan::Join { .. }));
    }

    #[test]
    fn limit_over_sort_becomes_top_k() {
        let catalog = catalog();
        let plan = fact_scan(&catalog).sort(vec![("f_val", false)]).limit(5).build().unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        match &optimized {
            LogicalPlan::Sort { limit, .. } => assert_eq!(*limit, Some(5)),
            other => panic!("expected top-k Sort, got {}", other.name()),
        }
        // And the result really is 5 rows.
        let exec = ReferenceExecutor::new(&catalog);
        assert_eq!(exec.execute(&optimized).unwrap().num_rows(), 5);
    }

    #[test]
    fn scans_read_only_referenced_columns() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Inner)
            .filter(col("f_val").gt(lit(3.0f64)))
            .aggregate(vec![(col("d_name"), "d_name")], vec![sum(col("f_val"), "total")])
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let scans = scans(&optimized);
        let fact_cols = &scans.iter().find(|(t, _)| t == "fact").unwrap().1;
        // f_tag and f_pad are never referenced; f_key (join) and f_val
        // (filter + aggregate) are.
        assert_eq!(fact_cols, &vec!["f_key".to_string(), "f_val".to_string()]);
    }

    #[test]
    fn count_star_scans_keep_one_column() {
        let catalog = catalog();
        let plan =
            fact_scan(&catalog).aggregate(vec![], vec![count(lit(1i64), "n")]).build().unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let scans = scans(&optimized);
        assert_eq!(scans[0].1.len(), 1, "a row-count scan still needs one column");
    }

    #[test]
    fn semi_join_build_side_keeps_only_its_keys() {
        let catalog = catalog();
        let plan = dim_scan(&catalog)
            .join(fact_scan(&catalog), vec![("d_key", "f_key")], JoinType::Semi)
            .build()
            .unwrap();
        let optimized = optimize_checked(&catalog, &plan);
        let scans = scans(&optimized);
        let dim_cols = &scans.iter().find(|(t, _)| t == "dim").unwrap().1;
        assert_eq!(dim_cols, &vec!["d_key".to_string()]);
    }

    #[test]
    fn optimizer_without_stats_skips_build_side_selection() {
        let catalog = catalog();
        let plan = fact_scan(&catalog)
            .join(dim_scan(&catalog), vec![("f_key", "d_key")], JoinType::Inner)
            .build()
            .unwrap();
        let optimized = Optimizer::new().optimize(&plan).unwrap();
        // No stats: no swap, no reordering projection.
        assert!(matches!(optimized, LogicalPlan::Join { .. }));
        assert_eq!(optimized.schema().unwrap(), plan.schema().unwrap());
    }

    #[test]
    fn rule_names_match_pipeline_length() {
        assert_eq!(RULE_NAMES.len(), 8);
    }

    // -- decorrelation -------------------------------------------------------

    /// `EXISTS (SELECT * FROM fact WHERE f_key = d_key)` over dim.
    #[test]
    fn correlated_exists_becomes_semi_join() {
        let catalog = catalog();
        let subquery = fact_scan(&catalog)
            .filter(
                col("f_key")
                    .eq(Expr::OuterRef { name: "d_key".into(), dtype: DataType::Int64 })
                    .and(col("f_val").gt(lit(10.0f64))),
            )
            .build()
            .unwrap();
        let plan = dim_scan(&catalog)
            .filter(Expr::Exists { plan: Box::new(subquery), negated: false })
            .build()
            .unwrap();
        let lowered = decorrelate(plan.clone()).unwrap();
        match &lowered {
            LogicalPlan::Join { on, join_type: JoinType::Semi, probe, .. } => {
                assert_eq!(on, &vec![("f_key".to_string(), "d_key".to_string())]);
                assert!(matches!(**probe, LogicalPlan::Scan { .. }));
            }
            other => panic!("expected Semi join, got {}", other.display_indent()),
        }
        // Schema unchanged and equivalent to the hand-decorrelated twin.
        assert_eq!(lowered.schema().unwrap(), plan.schema().unwrap());
        let twin = fact_scan(&catalog)
            .filter(col("f_val").gt(lit(10.0f64)))
            .join(dim_scan(&catalog), vec![("f_key", "d_key")], JoinType::Semi)
            .build()
            .unwrap();
        let exec = ReferenceExecutor::new(&catalog);
        assert!(same_result(&exec.execute(&lowered).unwrap(), &exec.execute(&twin).unwrap()));
        // The full pipeline accepts the subquery plan end to end.
        optimize_checked(&catalog, &plan);
    }

    /// `NOT EXISTS` (via Expr::Not) becomes an anti join.
    #[test]
    fn negated_exists_becomes_anti_join() {
        let catalog = catalog();
        let subquery = fact_scan(&catalog)
            .filter(
                col("f_key").eq(Expr::OuterRef { name: "d_key".into(), dtype: DataType::Int64 }),
            )
            .build()
            .unwrap();
        let plan = dim_scan(&catalog)
            .filter(Expr::Exists { plan: Box::new(subquery), negated: false }.not())
            .build()
            .unwrap();
        let lowered = decorrelate(plan.clone()).unwrap();
        assert!(
            matches!(&lowered, LogicalPlan::Join { join_type: JoinType::Anti, .. }),
            "{}",
            lowered.display_indent()
        );
        let twin = fact_scan(&catalog)
            .join(dim_scan(&catalog), vec![("f_key", "d_key")], JoinType::Anti)
            .build()
            .unwrap();
        let exec = ReferenceExecutor::new(&catalog);
        assert!(same_result(&exec.execute(&lowered).unwrap(), &exec.execute(&twin).unwrap()));
    }

    /// `d_key IN (SELECT f_key FROM fact WHERE f_val > 10)`.
    #[test]
    fn in_subquery_becomes_semi_join_on_the_output_column() {
        let catalog = catalog();
        let subquery = fact_scan(&catalog)
            .filter(col("f_val").gt(lit(10.0f64)))
            .project(vec![(col("f_key"), "f_key")])
            .build()
            .unwrap();
        let plan = dim_scan(&catalog)
            .filter(Expr::InSubquery {
                expr: Box::new(col("d_key")),
                plan: Box::new(subquery),
                negated: false,
            })
            .build()
            .unwrap();
        let lowered = decorrelate(plan.clone()).unwrap();
        match &lowered {
            LogicalPlan::Join { on, join_type: JoinType::Semi, .. } => {
                assert_eq!(on, &vec![("f_key".to_string(), "d_key".to_string())]);
            }
            other => panic!("expected Semi join, got {}", other.display_indent()),
        }
        optimize_checked(&catalog, &plan);
    }

    /// Uncorrelated scalar aggregate: constant-key join, schema restored.
    #[test]
    fn uncorrelated_scalar_subquery_becomes_constant_key_join() {
        let catalog = catalog();
        let subquery = fact_scan(&catalog)
            .aggregate(vec![], vec![crate::aggregate::avg(col("f_val"), "avg_val")])
            .build()
            .unwrap();
        let plan = fact_scan(&catalog)
            .filter(col("f_val").gt(Expr::ScalarSubquery(Box::new(subquery))))
            .build()
            .unwrap();
        let lowered = decorrelate(plan.clone()).unwrap();
        assert_eq!(lowered.schema().unwrap(), plan.schema().unwrap());
        // Equivalent hand-built constant-key join.
        let threshold = fact_scan(&catalog)
            .aggregate(vec![], vec![crate::aggregate::avg(col("f_val"), "avg_val")])
            .project(vec![(col("avg_val"), "avg_val"), (lit(1i64), "jk_b")]);
        let twin = threshold
            .join(
                fact_scan(&catalog).project(vec![
                    (col("f_key"), "f_key"),
                    (col("f_val"), "f_val"),
                    (col("f_tag"), "f_tag"),
                    (col("f_pad"), "f_pad"),
                    (lit(1i64), "jk_p"),
                ]),
                vec![("jk_b", "jk_p")],
                JoinType::Inner,
            )
            .filter(col("f_val").gt(col("avg_val")))
            .project(vec![
                (col("f_key"), "f_key"),
                (col("f_val"), "f_val"),
                (col("f_tag"), "f_tag"),
                (col("f_pad"), "f_pad"),
            ])
            .build()
            .unwrap();
        let exec = ReferenceExecutor::new(&catalog);
        assert!(same_result(&exec.execute(&lowered).unwrap(), &exec.execute(&twin).unwrap()));
        optimize_checked(&catalog, &plan);
    }

    /// Correlated scalar aggregate: per-key group-by + join (the Q17 shape).
    #[test]
    fn correlated_scalar_aggregate_becomes_group_by_plus_join() {
        let catalog = catalog();
        // f_val < 2 * (SELECT avg(f_val) FROM fact WHERE f_key = outer f_key)
        let subquery = LogicalPlan::Project {
            input: Box::new(
                fact_scan(&catalog)
                    .filter(
                        col("f_key")
                            .eq(Expr::OuterRef { name: "f_key".into(), dtype: DataType::Int64 }),
                    )
                    .aggregate(vec![], vec![crate::aggregate::avg(col("f_val"), "a")])
                    .build()
                    .unwrap(),
            ),
            exprs: vec![(lit(2.0f64).mul(col("a")), "doubled".to_string())],
        };
        let plan = fact_scan(&catalog)
            .filter(col("f_val").lt(Expr::ScalarSubquery(Box::new(subquery))))
            .build()
            .unwrap();
        let lowered = decorrelate(plan.clone()).unwrap();
        assert_eq!(lowered.schema().unwrap(), plan.schema().unwrap());
        // Equivalent hand decorrelation.
        let thresholds = fact_scan(&catalog)
            .aggregate(
                vec![(col("f_key"), "t_key")],
                vec![crate::aggregate::avg(col("f_val"), "a")],
            )
            .project(vec![(col("t_key"), "t_key"), (lit(2.0f64).mul(col("a")), "doubled")]);
        let twin = thresholds
            .join(fact_scan(&catalog), vec![("t_key", "f_key")], JoinType::Inner)
            .filter(col("f_val").lt(col("doubled")))
            .project(vec![
                (col("f_key"), "f_key"),
                (col("f_val"), "f_val"),
                (col("f_tag"), "f_tag"),
                (col("f_pad"), "f_pad"),
            ])
            .build()
            .unwrap();
        let exec = ReferenceExecutor::new(&catalog);
        assert!(same_result(&exec.execute(&lowered).unwrap(), &exec.execute(&twin).unwrap()));
        optimize_checked(&catalog, &plan);
    }

    /// A scalar subquery under OR cannot be rewritten soundly (the inner
    /// join would drop rows the other disjunct should keep) — fail loudly.
    #[test]
    fn scalar_subquery_under_or_is_rejected() {
        let catalog = catalog();
        let subquery = fact_scan(&catalog)
            .filter(
                col("f_key").eq(Expr::OuterRef { name: "f_key".into(), dtype: DataType::Int64 }),
            )
            .aggregate(vec![], vec![crate::aggregate::avg(col("f_val"), "a")])
            .build()
            .unwrap();
        let plan = fact_scan(&catalog)
            .filter(
                col("f_key")
                    .gt_eq(lit(0i64))
                    .or(col("f_val").gt(Expr::ScalarSubquery(Box::new(subquery)))),
            )
            .build()
            .unwrap();
        let err = decorrelate(plan).unwrap_err();
        assert!(err.to_string().contains("under OR"), "{err}");
    }

    /// A row limit inside a *correlated* existence subquery would apply
    /// globally after decorrelation instead of per outer row — rejected.
    /// Uncorrelated limits are fine (only emptiness matters): LIMIT 0
    /// makes EXISTS false and NOT EXISTS keep everything.
    #[test]
    fn limits_in_existence_subqueries() {
        let catalog = catalog();
        let correlated = fact_scan(&catalog)
            .filter(
                col("f_key").eq(Expr::OuterRef { name: "d_key".into(), dtype: DataType::Int64 }),
            )
            .limit(1)
            .build()
            .unwrap();
        let plan = dim_scan(&catalog)
            .filter(Expr::Exists { plan: Box::new(correlated), negated: false })
            .build()
            .unwrap();
        let err = decorrelate(plan).unwrap_err();
        assert!(err.to_string().contains("LIMIT inside a correlated"), "{err}");

        let empty = fact_scan(&catalog).limit(0).build().unwrap();
        let plan = dim_scan(&catalog)
            .filter(Expr::Exists { plan: Box::new(empty), negated: false })
            .build()
            .unwrap();
        let exec = ReferenceExecutor::new(&catalog);
        assert_eq!(exec.execute(&plan).unwrap().num_rows(), 0, "EXISTS over LIMIT 0 is false");
    }

    /// Unsupported correlation (non-equality) fails loudly instead of
    /// executing wrong.
    #[test]
    fn non_equality_correlation_is_rejected() {
        let catalog = catalog();
        let subquery = fact_scan(&catalog)
            .filter(
                col("f_key").gt(Expr::OuterRef { name: "d_key".into(), dtype: DataType::Int64 }),
            )
            .build()
            .unwrap();
        let plan = dim_scan(&catalog)
            .filter(Expr::Exists { plan: Box::new(subquery), negated: false })
            .build()
            .unwrap();
        let err = decorrelate(plan).unwrap_err();
        assert!(err.to_string().contains("equality"), "{err}");
    }

    /// Subquery plans execute directly on the reference oracle (it lowers
    /// them itself) and never reach stage compilation undecorrelated.
    #[test]
    fn reference_executor_accepts_subquery_plans() {
        let catalog = catalog();
        let subquery = fact_scan(&catalog)
            .filter(
                col("f_key").eq(Expr::OuterRef { name: "d_key".into(), dtype: DataType::Int64 }),
            )
            .build()
            .unwrap();
        let plan = dim_scan(&catalog)
            .filter(Expr::Exists { plan: Box::new(subquery), negated: false })
            .build()
            .unwrap();
        assert!(contains_subqueries(&plan));
        let exec = ReferenceExecutor::new(&catalog);
        let direct = exec.execute(&plan).unwrap();
        let lowered = decorrelate(plan.clone()).unwrap();
        assert!(!contains_subqueries(&lowered));
        assert!(same_result(&direct, &exec.execute(&lowered).unwrap()));
    }
}
