/root/repo/target/debug/deps/fig10-c11b69dc2d9bd667.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c11b69dc2d9bd667: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
