/root/repo/target/release/deps/serde-5b9d9cbc42143983.d: crates/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-5b9d9cbc42143983.rlib: crates/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-5b9d9cbc42143983.rmeta: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
