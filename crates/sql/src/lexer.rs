//! The SQL tokenizer.
//!
//! Produces a flat token stream with 1-based line/column positions attached
//! to every token, so the parser and binder can report exactly where a
//! problem is. Identifiers and keywords are case-insensitive and are
//! lowercased here; string literals keep their case.

use crate::error::{Pos, SqlError};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword, lowercased.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semi,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable rendering used in "found ..." error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("'{s}'"),
            TokenKind::Int(v) => format!("'{v}'"),
            TokenKind::Float(v) => format!("'{v}'"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::LParen => "'('".into(),
            TokenKind::RParen => "')'".into(),
            TokenKind::Comma => "','".into(),
            TokenKind::Dot => "'.'".into(),
            TokenKind::Star => "'*'".into(),
            TokenKind::Plus => "'+'".into(),
            TokenKind::Minus => "'-'".into(),
            TokenKind::Slash => "'/'".into(),
            TokenKind::Eq => "'='".into(),
            TokenKind::NotEq => "'<>'".into(),
            TokenKind::Lt => "'<'".into(),
            TokenKind::LtEq => "'<='".into(),
            TokenKind::Gt => "'>'".into(),
            TokenKind::GtEq => "'>='".into(),
            TokenKind::Semi => "';'".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token plus the position of its first character.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub pos: Pos,
}

/// Tokenize `sql` into a vector ending with an [`TokenKind::Eof`] token.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let chars: Vec<char> = sql.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let pos = Pos::new(line, col);
        match c {
            ' ' | '\t' | '\r' | '\n' => advance!(),
            '-' if i + 1 < chars.len() && chars[i + 1] == '-' => {
                // Line comment: skip to end of line.
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
            }
            '(' | ')' | ',' | '.' | '*' | '+' | '-' | '/' | '=' | ';' => {
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    ',' => TokenKind::Comma,
                    '.' => TokenKind::Dot,
                    '*' => TokenKind::Star,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '/' => TokenKind::Slash,
                    ';' => TokenKind::Semi,
                    _ => TokenKind::Eq,
                };
                tokens.push(Token { kind, pos });
                advance!();
            }
            '<' => {
                advance!();
                let kind = match chars.get(i) {
                    Some('=') => {
                        advance!();
                        TokenKind::LtEq
                    }
                    Some('>') => {
                        advance!();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                };
                tokens.push(Token { kind, pos });
            }
            '>' => {
                advance!();
                let kind = if chars.get(i) == Some(&'=') {
                    advance!();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                };
                tokens.push(Token { kind, pos });
            }
            '!' => {
                advance!();
                if chars.get(i) == Some(&'=') {
                    advance!();
                    tokens.push(Token { kind: TokenKind::NotEq, pos });
                } else {
                    return Err(SqlError::lex(pos, "unexpected character '!'"));
                }
            }
            '\'' => {
                advance!();
                let mut value = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(SqlError::lex(pos, "unterminated string literal")),
                        Some('\'') => {
                            advance!();
                            // '' is an escaped quote inside the literal.
                            if chars.get(i) == Some(&'\'') {
                                value.push('\'');
                                advance!();
                            } else {
                                break;
                            }
                        }
                        Some(&ch) => {
                            value.push(ch);
                            advance!();
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(value), pos });
            }
            '0'..='9' => {
                let mut text = String::new();
                while matches!(chars.get(i), Some('0'..='9')) {
                    text.push(chars[i]);
                    advance!();
                }
                // A '.' starts a fractional part only when followed by a
                // digit (so `1.foo` still lexes as `1 . foo`).
                let is_float =
                    chars.get(i) == Some(&'.') && matches!(chars.get(i + 1), Some('0'..='9'));
                if is_float {
                    text.push('.');
                    advance!();
                    while matches!(chars.get(i), Some('0'..='9')) {
                        text.push(chars[i]);
                        advance!();
                    }
                }
                // `1e6`, `1.5x`: an identifier character glued to a number
                // would otherwise silently lex as number + alias.
                if matches!(chars.get(i), Some(ch) if ch.is_ascii_alphanumeric() || *ch == '_') {
                    return Err(SqlError::lex(
                        pos,
                        format!(
                            "malformed numeric literal '{text}{}' (letters, underscores, and \
                             exponent notation are not allowed in numbers)",
                            chars[i]
                        ),
                    ));
                }
                if is_float {
                    let value: f64 = text
                        .parse()
                        .map_err(|_| SqlError::lex(pos, format!("bad numeric literal '{text}'")))?;
                    tokens.push(Token { kind: TokenKind::Float(value), pos });
                } else {
                    let value: i64 = text.parse().map_err(|_| {
                        SqlError::lex(pos, format!("integer literal '{text}' out of range"))
                    })?;
                    tokens.push(Token { kind: TokenKind::Int(value), pos });
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while matches!(chars.get(i), Some(ch) if ch.is_ascii_alphanumeric() || *ch == '_') {
                    text.push(chars[i].to_ascii_lowercase());
                    advance!();
                }
                tokens.push(Token { kind: TokenKind::Ident(text), pos });
            }
            other => {
                return Err(SqlError::lex(pos, format!("unexpected character '{other}'")));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: Pos::new(line, col) });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT a, 1.5 <> 'x''y'"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Float(1.5),
                TokenKind::NotEq,
                TokenKind::Str("x'y".into()),
                TokenKind::Eof,
            ]
        );
        assert_eq!(kinds("<= >= < > = !="), {
            use TokenKind::*;
            vec![LtEq, GtEq, Lt, Gt, Eq, NotEq, Eof]
        });
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let tokens = tokenize("SELECT a\n  FROM t").unwrap();
        assert_eq!(tokens[0].pos, Pos::new(1, 1));
        assert_eq!(tokens[1].pos, Pos::new(1, 8));
        assert_eq!(tokens[2].pos, Pos::new(2, 3)); // FROM
        assert_eq!(tokens[3].pos, Pos::new(2, 8)); // t
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment here\nb"),
            vec![TokenKind::Ident("a".into()), TokenKind::Ident("b".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lex_errors_carry_positions() {
        let err = tokenize("select 'oops").unwrap_err();
        assert_eq!(err.pos, Pos::new(1, 8));
        assert!(err.to_string().contains("unterminated"));
        let err = tokenize("a ? b").unwrap_err();
        assert_eq!(err.pos, Pos::new(1, 3));
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(kinds("42 42.0 0.25"), {
            use TokenKind::*;
            vec![Int(42), Float(42.0), Float(0.25), Eof]
        });
    }

    #[test]
    fn numbers_glued_to_identifiers_are_rejected() {
        // `1e6` must not silently lex as Int(1) + Ident("e6").
        for bad in ["1e6", "2.5x", "10_000"] {
            let err = tokenize(bad).unwrap_err();
            assert!(err.to_string().contains("malformed numeric literal"), "{bad}: {err}");
        }
    }
}
