//! All 22 TPC-H queries as SQL text for the `quokka-sql` frontend.
//!
//! Every query is kept in batch-level parity with its hand-built
//! [`PlanBuilder`](quokka_plan::logical::PlanBuilder) twin by the tests in
//! this module. The SELECT lists deliberately match the hand-built plans'
//! output column order so results compare positionally.
//!
//! The thirteen queries that need subqueries write them as SQL (`EXISTS`,
//! `IN (SELECT ...)`, correlated and uncorrelated scalar aggregates,
//! derived tables, aliased self-joins, `LEFT JOIN`); the shared optimizer's
//! decorrelation pass lowers them to the same semi/anti/constant-key join
//! shapes the hand-built plans use.
//!
//! Three documented departures from the literal specification text (all
//! shared with the hand-built twins, see `q12_q22`):
//!
//! * **Q15** takes the top revenue row directly (`ORDER BY total_revenue
//!   DESC LIMIT 1` inside the derived table) instead of recomputing the
//!   revenue view inside a `max(..)` subquery — recomputing would compare
//!   floating-point sums across two summation orders.
//! * **Q19** spells the air ship modes `'AIR'` / `'REG AIR'`, matching the
//!   data generator.
//! * **Q13** and **Q21** express "count of related rows" shapes the way the
//!   hand-built plans decorrelate them: Q13 counts matches of the engine's
//!   default-filling `LEFT JOIN` (no NULLs, so `o_orderkey > 0` marks a
//!   real match), and Q21's correlated EXISTS pair — whose correlation is
//!   an *inequality* (`l2.l_suppkey <> l1.l_suppkey`), outside the
//!   equality-only decorrelator — becomes per-order distinct-supplier
//!   counts in derived tables.

/// Query numbers available as SQL text: the full benchmark.
pub const SQL_QUERIES: [usize; 22] =
    [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22];

/// The SQL text for TPC-H query `number` (1-22).
pub fn sql_text(number: usize) -> Option<&'static str> {
    Some(match number {
        1 => Q1,
        2 => Q2,
        3 => Q3,
        4 => Q4,
        5 => Q5,
        6 => Q6,
        7 => Q7,
        8 => Q8,
        9 => Q9,
        10 => Q10,
        11 => Q11,
        12 => Q12,
        13 => Q13,
        14 => Q14,
        15 => Q15,
        16 => Q16,
        17 => Q17,
        18 => Q18,
        19 => Q19,
        20 => Q20,
        21 => Q21,
        22 => Q22,
        _ => return None,
    })
}

const Q1: &str = "\
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus";

/// The correlated scalar `min(ps_supplycost)` decorrelates into a per-part
/// minimum joined back on `p_partkey` — the shape `q01_q11::q2` builds by
/// hand.
const Q2: &str = "\
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
FROM part
JOIN partsupp ON p_partkey = ps_partkey
JOIN supplier ON ps_suppkey = s_suppkey
JOIN nation ON s_nationkey = n_nationkey
JOIN region ON n_regionkey = r_regionkey
WHERE p_size = 15
  AND p_type LIKE '%BRASS'
  AND r_name = 'EUROPE'
  AND ps_supplycost = (SELECT min(ps_supplycost)
                       FROM partsupp
                       JOIN supplier ON ps_suppkey = s_suppkey
                       JOIN nation ON s_nationkey = n_nationkey
                       JOIN region ON n_regionkey = r_regionkey
                       WHERE p_partkey = ps_partkey
                         AND r_name = 'EUROPE')
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100";

const Q3: &str = "\
SELECT l_orderkey, o_orderdate, o_shippriority,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < DATE '1995-03-15'
  AND l_shipdate > DATE '1995-03-15'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10";

/// The correlated `EXISTS` decorrelates into the semi join `q01_q11::q4`
/// builds by hand.
const Q4: &str = "\
SELECT o_orderpriority, count(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '1993-07-01'
  AND o_orderdate < DATE '1993-10-01'
  AND EXISTS (SELECT * FROM lineitem
              WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
GROUP BY o_orderpriority
ORDER BY o_orderpriority";

const Q5: &str = "\
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM region
JOIN nation ON r_regionkey = n_regionkey
JOIN customer ON n_nationkey = c_nationkey
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
JOIN supplier ON l_suppkey = s_suppkey
WHERE r_name = 'ASIA'
  AND o_orderdate >= DATE '1994-01-01'
  AND o_orderdate < DATE '1995-01-01'
  AND s_nationkey = c_nationkey
GROUP BY n_name
ORDER BY revenue DESC";

const Q6: &str = "\
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '1994-01-01'
  AND l_shipdate < DATE '1995-01-01'
  AND l_discount BETWEEN 0.05 AND 0.07
  AND l_quantity < 24";

/// The nation self-join uses aliases `n1`/`n2`; the binder renames the
/// colliding occurrence apart at its scan.
const Q7: &str = "\
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (SELECT n1.n_name AS supp_nation,
             n2.n_name AS cust_nation,
             EXTRACT(YEAR FROM l_shipdate) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM supplier
      JOIN lineitem ON s_suppkey = l_suppkey
      JOIN orders ON l_orderkey = o_orderkey
      JOIN customer ON o_custkey = c_custkey
      JOIN nation n1 ON s_nationkey = n1.n_nationkey
      JOIN nation n2 ON c_nationkey = n2.n_nationkey
      WHERE ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
          OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
        AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year";

const Q8: &str = "\
SELECT o_year,
       sum(CASE WHEN nation = 'BRAZIL' THEN volume ELSE 0.0 END) / sum(volume) AS mkt_share
FROM (SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) AS volume,
             n2.n_name AS nation
      FROM part
      JOIN lineitem ON p_partkey = l_partkey
      JOIN supplier ON l_suppkey = s_suppkey
      JOIN orders ON l_orderkey = o_orderkey
      JOIN customer ON o_custkey = c_custkey
      JOIN nation n1 ON c_nationkey = n1.n_nationkey
      JOIN region ON n1.n_regionkey = r_regionkey
      JOIN nation n2 ON s_nationkey = n2.n_nationkey
      WHERE r_name = 'AMERICA'
        AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
        AND p_type = 'ECONOMY ANODIZED STEEL') all_nations
GROUP BY o_year
ORDER BY o_year";

const Q9: &str = "\
SELECT n_name AS nation,
       EXTRACT(YEAR FROM o_orderdate) AS o_year,
       sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS sum_profit
FROM part
JOIN lineitem ON p_partkey = l_partkey
JOIN partsupp ON ps_partkey = l_partkey AND ps_suppkey = l_suppkey
JOIN supplier ON l_suppkey = s_suppkey
JOIN nation ON s_nationkey = n_nationkey
JOIN orders ON l_orderkey = o_orderkey
WHERE p_name LIKE '%green%'
GROUP BY nation, o_year
ORDER BY nation, o_year DESC";

const Q10: &str = "\
SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM nation
JOIN customer ON n_nationkey = c_nationkey
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
WHERE o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20";

/// The uncorrelated scalar threshold in HAVING decorrelates into the
/// constant-key join `q01_q11::q11` builds by hand.
const Q11: &str = "\
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp
JOIN supplier ON ps_suppkey = s_suppkey
JOIN nation ON s_nationkey = n_nationkey
WHERE n_name = 'GERMANY'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) >
       (SELECT sum(ps_supplycost * ps_availqty) * 0.0001
        FROM partsupp
        JOIN supplier ON ps_suppkey = s_suppkey
        JOIN nation ON s_nationkey = n_nationkey
        WHERE n_name = 'GERMANY')
ORDER BY value DESC";

const Q12: &str = "\
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END) AS high_line_count,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 0 ELSE 1 END) AS low_line_count
FROM orders
JOIN lineitem ON o_orderkey = l_orderkey
WHERE l_shipmode IN ('MAIL', 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '1994-01-01'
  AND l_receiptdate < DATE '1995-01-01'
GROUP BY l_shipmode
ORDER BY l_shipmode";

/// The engine's LEFT JOIN default-fills unmatched rows instead of
/// producing NULLs, so "customer has a matching order" is `o_orderkey > 0`
/// (real order keys start at 1) — the same convention as the hand-built
/// plan.
const Q13: &str = "\
SELECT c_count, count(*) AS custdist
FROM (SELECT c_custkey,
             sum(CASE WHEN o_orderkey > 0 THEN 1 ELSE 0 END) AS c_count
      FROM customer
      LEFT OUTER JOIN orders
        ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%requests%'
      GROUP BY c_custkey) c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC";

const Q14: &str = "\
SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE 0.0 END)
       / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue
FROM part
JOIN lineitem ON p_partkey = l_partkey
WHERE l_shipdate >= DATE '1995-09-01'
  AND l_shipdate < DATE '1995-10-01'";

/// See the module docs: the revenue view's top row is taken directly
/// instead of re-deriving it through `max(total_revenue)`.
const Q15: &str = "\
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM (SELECT l_suppkey AS supplier_no,
             sum(l_extendedprice * (1 - l_discount)) AS total_revenue
      FROM lineitem
      WHERE l_shipdate >= DATE '1996-01-01'
        AND l_shipdate < DATE '1996-04-01'
      GROUP BY l_suppkey
      ORDER BY total_revenue DESC
      LIMIT 1) revenue
JOIN supplier ON supplier_no = s_suppkey
ORDER BY s_suppkey";

/// The uncorrelated `NOT IN` decorrelates into the anti join
/// `q12_q22::q16` builds by hand.
const Q16: &str = "\
SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
FROM part
JOIN partsupp ON p_partkey = ps_partkey
WHERE p_brand <> 'Brand#45'
  AND p_type NOT LIKE 'MEDIUM POLISHED%'
  AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier
                         WHERE s_comment LIKE '%Customer%Complaints%')
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size";

/// The correlated `avg(l_quantity)` decorrelates into the per-part
/// threshold join `q12_q22::q17` builds by hand. The outer reference
/// `p_partkey` resolves through the enclosing scope; the subquery's own
/// `l_quantity`/`l_partkey` resolve to its own lineitem scan.
const Q17: &str = "\
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM part
JOIN lineitem ON p_partkey = l_partkey
WHERE p_brand = 'Brand#23'
  AND p_container = 'MED BOX'
  AND l_quantity < (SELECT 0.2 * avg(l_quantity) FROM lineitem
                    WHERE l_partkey = p_partkey)";

/// The `IN (GROUP BY ... HAVING)` subquery decorrelates into the semi join
/// `q12_q22::q18` builds by hand.
const Q18: &str = "\
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS sum_qty
FROM customer
JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
WHERE o_orderkey IN (SELECT l_orderkey FROM lineitem
                     GROUP BY l_orderkey
                     HAVING sum(l_quantity) > 300)
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100";

/// The generator spells the air ship modes `"AIR"` / `"REG AIR"`, matching
/// the hand-built plan (see `q12_q22::q19`).
const Q19: &str = "\
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM part
JOIN lineitem ON p_partkey = l_partkey
WHERE l_shipmode IN ('AIR', 'REG AIR')
  AND l_shipinstruct = 'DELIVER IN PERSON'
  AND ((p_brand = 'Brand#12'
        AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
        AND l_quantity >= 1 AND l_quantity <= 11
        AND p_size BETWEEN 1 AND 5)
    OR (p_brand = 'Brand#23'
        AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
        AND l_quantity >= 10 AND l_quantity <= 20
        AND p_size BETWEEN 1 AND 10)
    OR (p_brand = 'Brand#34'
        AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
        AND l_quantity >= 20 AND l_quantity <= 30
        AND p_size BETWEEN 1 AND 15))";

/// Three nesting levels: an IN subquery containing another IN subquery and
/// a doubly-correlated scalar aggregate — each level decorrelates
/// independently into the semi-join + threshold-join pipeline
/// `q12_q22::q20` builds by hand.
const Q20: &str = "\
SELECT s_name, s_address
FROM supplier
JOIN nation ON s_nationkey = n_nationkey
WHERE s_suppkey IN
      (SELECT ps_suppkey
       FROM partsupp
       WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%')
         AND ps_availqty > 0.5 * (SELECT sum(l_quantity)
                                  FROM lineitem
                                  WHERE l_partkey = ps_partkey
                                    AND l_suppkey = ps_suppkey
                                    AND l_shipdate >= DATE '1994-01-01'
                                    AND l_shipdate < DATE '1995-01-01'))
  AND s_nationkey = n_nationkey
  AND n_name = 'CANADA'
ORDER BY s_name";

/// See the module docs: the specification's EXISTS pair correlates on a
/// supplier *inequality*, which the equality-only decorrelator cannot
/// lower; the per-order distinct-supplier counts in the two derived tables
/// express exactly the hand-built decorrelation.
const Q21: &str = "\
SELECT s_name, count(*) AS numwait
FROM nation
JOIN supplier ON n_nationkey = s_nationkey
JOIN lineitem ON s_suppkey = l_suppkey
JOIN orders ON l_orderkey = o_orderkey
JOIN (SELECT l_orderkey AS all_orderkey,
             count(DISTINCT l_suppkey) AS all_supp_cnt
      FROM lineitem
      GROUP BY l_orderkey) alls ON o_orderkey = all_orderkey
JOIN (SELECT l_orderkey AS late_orderkey,
             count(DISTINCT l_suppkey) AS late_supp_cnt
      FROM lineitem
      WHERE l_receiptdate > l_commitdate
      GROUP BY l_orderkey) lates ON o_orderkey = late_orderkey
WHERE n_name = 'SAUDI ARABIA'
  AND o_orderstatus = 'F'
  AND l_receiptdate > l_commitdate
  AND all_supp_cnt > 1
  AND late_supp_cnt = 1
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100";

/// The uncorrelated average balance decorrelates into a constant-key join
/// and the correlated `NOT EXISTS` into an anti join — the two shapes
/// `q12_q22::q22` builds by hand.
const Q22: &str = "\
SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
FROM (SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
      FROM customer
      WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN ('13', '31', '23', '29', '30', '18', '17')
        AND c_acctbal > (SELECT avg(c_acctbal)
                         FROM customer
                         WHERE c_acctbal > 0.0
                           AND SUBSTRING(c_phone FROM 1 FOR 2)
                               IN ('13', '31', '23', '29', '30', '18', '17'))
        AND NOT EXISTS (SELECT * FROM orders WHERE o_custkey = c_custkey)) custsale
GROUP BY cntrycode
ORDER BY cntrycode";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TpchGenerator;
    use quokka_plan::optimizer::{contains_subqueries, Optimizer};
    use quokka_plan::reference::{same_result, ReferenceExecutor};
    use quokka_plan::stage::StageGraph;

    #[test]
    fn sql_texts_exist_exactly_for_the_sql_queries() {
        for q in 1..=22 {
            assert_eq!(sql_text(q).is_some(), SQL_QUERIES.contains(&q), "query {q}");
        }
        assert!(sql_text(0).is_none());
        assert!(sql_text(23).is_none());
        assert_eq!(SQL_QUERIES.len(), 22, "the SQL frontend covers the full benchmark");
    }

    /// Every SQL query must produce batch-identical results to its
    /// hand-built `PlanBuilder` twin on generated TPC-H data.
    #[test]
    fn sql_queries_match_their_plan_builder_twins() {
        let generator = TpchGenerator::new(0.005, 7).with_batch_rows(1024);
        let catalog = generator.catalog().unwrap();
        let executor = ReferenceExecutor::new(&catalog);
        for q in SQL_QUERIES {
            let sql = sql_text(q).unwrap();
            let sql_plan = quokka_sql::plan_query(sql, &catalog)
                .unwrap_or_else(|e| panic!("Q{q} failed to plan from SQL: {e}"));
            let hand_plan = super::super::query(q).unwrap();
            assert_eq!(
                sql_plan.schema().unwrap().column_names(),
                hand_plan.schema().unwrap().column_names(),
                "Q{q} output columns diverge from the hand-built plan"
            );
            let sql_result = executor
                .execute(&sql_plan)
                .unwrap_or_else(|e| panic!("Q{q} (SQL) failed to execute: {e}"));
            let hand_result = executor.execute(&hand_plan).unwrap();
            assert!(
                same_result(&sql_result, &hand_result),
                "Q{q}: SQL result ({} rows) != PlanBuilder result ({} rows)\nSQL plan:\n{}",
                sql_result.num_rows(),
                hand_result.num_rows(),
                sql_plan.display_indent(),
            );
        }
    }

    /// Decorrelation is a lowering, not an optimization: after it, no
    /// subquery expression survives, and the stage compiler accepts every
    /// query — both through the full optimizer pipeline and through the
    /// bare decorrelation pass a `optimize = false` run uses.
    #[test]
    fn no_subquery_survives_to_stage_compilation() {
        let generator = TpchGenerator::new(0.001, 7);
        let catalog = generator.catalog().unwrap();
        let mut bound_with_subqueries = 0;
        for q in SQL_QUERIES {
            let plan = quokka_sql::plan_query(sql_text(q).unwrap(), &catalog).unwrap();
            if contains_subqueries(&plan) {
                bound_with_subqueries += 1;
            }
            for lowered in [
                quokka_plan::optimizer::decorrelate(plan.clone())
                    .unwrap_or_else(|e| panic!("Q{q} failed to decorrelate: {e}")),
                Optimizer::with_catalog(&catalog)
                    .optimize(&plan)
                    .unwrap_or_else(|e| panic!("Q{q} failed to optimize: {e}")),
            ] {
                assert!(!contains_subqueries(&lowered), "Q{q} kept a subquery node");
                let graph = StageGraph::compile(&lowered)
                    .unwrap_or_else(|e| panic!("Q{q} failed stage compilation: {e}"));
                assert!(graph.num_stages() >= 1);
            }
        }
        // The subquery path is actually exercised: Q2, Q4, Q11, Q16, Q17,
        // Q18, Q20, and Q22 bind to plans carrying subquery expressions.
        assert!(
            bound_with_subqueries >= 8,
            "only {bound_with_subqueries} queries bound subqueries"
        );
    }
}
