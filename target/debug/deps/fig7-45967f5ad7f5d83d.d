/root/repo/target/debug/deps/fig7-45967f5ad7f5d83d.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-45967f5ad7f5d83d: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
