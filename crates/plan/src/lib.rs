//! Query plans and operators for the Quokka engine.
//!
//! The paper's system executes SQL-shaped dataflows: scans over object-store
//! tables feeding pipelines of joins and aggregations. This crate provides
//! everything between "a query" and "the distributed runtime":
//!
//! * [`expr`] — a small expression language (column references, literals,
//!   arithmetic, comparisons, boolean logic, `LIKE`, `IN`, `BETWEEN`,
//!   `CASE`, date extraction) with a columnar evaluator.
//! * [`aggregate`] — aggregate functions and their accumulators.
//! * [`logical`] — the logical plan DSL used to express the TPC-H queries.
//! * [`optimizer`] — the rule-based logical optimizer both frontends flow
//!   through: constant folding, filter merging, predicate pushdown,
//!   filter-to-join conversion, build-side selection from catalog row
//!   counts, top-k pushdown, and scan-column pruning.
//! * [`physical`] — stateful stage operators (filter/project, hash join,
//!   hash aggregate, sort/top-k, limit) implementing the channel state
//!   variables of the paper's execution model (Fig. 1).
//! * [`stage`] — compilation of a logical plan into a DAG of pipeline
//!   stages with hash-partitioned shuffles between them; this is the "stage
//!   / channel" structure that tasks are named after.
//! * [`mod@reference`] — a single-threaded row-oriented executor used as a
//!   correctness oracle for the distributed engine and as the
//!   "restart-from-scratch" baseline runtime.
//! * [`catalog`] — the table-provider abstraction shared by the reference
//!   executor and the distributed scan stages.

pub mod aggregate;
pub mod catalog;
pub mod expr;
pub mod logical;
pub mod optimizer;
pub mod physical;
pub mod reference;
pub mod stage;

pub use aggregate::{AggExpr, AggFunc};
pub use catalog::{Catalog, MemoryCatalog};
pub use expr::{Expr, NamedExpr};
pub use logical::{sort_by_exprs, JoinType, LogicalPlan, PlanBuilder};
pub use optimizer::Optimizer;
pub use physical::{CoreOp, OperatorSpec, StageOperator, Transform};
pub use reference::ReferenceExecutor;
pub use stage::{StageGraph, StageSpec};
