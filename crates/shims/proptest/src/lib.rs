//! Offline stand-in for `proptest`, covering the API subset the integration
//! tests use: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_flat_map`, `any::<T>()` for primitives, `collection::vec`, integer
//! ranges, and simple `[a-z]{m,n}`-style string patterns. Generation is
//! deterministic (seeded per test case) and there is no shrinking — a
//! failing case panics with the ordinary assertion message.

pub mod test_runner {
    /// Deterministic splitmix64-based RNG, seeded per test case.
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_case(case: u64) -> Self {
            TestRng(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case.wrapping_add(1)))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A value generator. Unlike real proptest there is no shrinking tree;
    /// `generate` produces one value directly.
    pub trait Strategy: Sized {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
            FlatMap { inner: self, f }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn generate(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// String pattern strategy supporting the `[c1-c2]{m,n}` subset of the
    /// regex syntax real proptest accepts for `&str` strategies.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi, min_len, max_len) = parse_char_class_pattern(self);
            let len = min_len + rng.below((max_len - min_len + 1) as u64) as usize;
            (0..len)
                .map(|_| {
                    let span = (hi as u32) - (lo as u32) + 1;
                    char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap()
                })
                .collect()
        }
    }

    fn parse_char_class_pattern(pattern: &str) -> (char, char, usize, usize) {
        fn bad(pattern: &str) -> ! {
            panic!("proptest shim only supports '[a-z]{{m,n}}' string patterns, got {pattern:?}")
        }
        let Some(rest) = pattern.strip_prefix('[') else { bad(pattern) };
        let Some((class, rest)) = rest.split_once(']') else { bad(pattern) };
        let chars: Vec<char> = class.chars().collect();
        let [lo, '-', hi] = chars[..] else { bad(pattern) };
        let (min_len, max_len) = if rest.is_empty() {
            (1, 1)
        } else {
            let Some(counts) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) else {
                bad(pattern)
            };
            let Some((m, n)) = counts.split_once(',') else { bad(pattern) };
            match (m.trim().parse(), n.trim().parse()) {
                (Ok(m), Ok(n)) => (m, n),
                _ => bad(pattern),
            }
        };
        (lo, hi, min_len, max_len)
    }

    /// Strategy for any value of a primitive type.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl Strategy for Any<i64> {
        type Value = i64;
        fn generate(&self, rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        // Finite values over a wide range (real proptest's default f64
        // strategy also excludes NaN and infinities).
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let mantissa = rng.next_u64() as i64 as f64;
            let exp = rng.below(41) as i32 - 20;
            mantissa * 2f64.powi(exp)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident : $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
}

pub mod arbitrary {
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// `any::<T>()` for the supported primitive types.
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Run configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_generation() {
        let mut rng = crate::test_runner::TestRng::for_case(7);
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn range_and_vec_strategies() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        for _ in 0..100 {
            let n = Strategy::generate(&(1usize..60), &mut rng);
            assert!((1..60).contains(&n));
        }
        let v = Strategy::generate(&crate::collection::vec(any::<i64>(), 5), &mut rng);
        assert_eq!(v.len(), 5);
        let f = Strategy::generate(&any::<f64>(), &mut rng);
        assert!(f.is_finite());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_round_trip(x in 0usize..10, v in crate::collection::vec(any::<bool>(), 3)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(v.len(), 4);
        }
    }
}
