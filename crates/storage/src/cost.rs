//! The cost model that turns bytes moved into simulated time.

use quokka_common::CostModelConfig;
use std::time::Duration;

/// Converts data-movement volumes into wall-clock delays.
///
/// Each `charge_*` method sleeps for `(fixed latency + bytes / bandwidth) *
/// time_scale`. With `time_scale == 0` the methods return immediately, which
/// is what correctness tests use; benchmarks use a small positive scale so
/// that the *relative* costs of the local-disk, network and durable paths
/// shape the results the same way they do on a real cluster.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    config: CostModelConfig,
}

impl CostModel {
    pub fn new(config: CostModelConfig) -> Self {
        CostModel { config }
    }

    /// A cost model that never sleeps.
    pub fn free() -> Self {
        CostModel { config: CostModelConfig::zero() }
    }

    pub fn config(&self) -> &CostModelConfig {
        &self.config
    }

    fn scaled(&self, latency: Duration, bytes: u64, bandwidth: f64) -> Duration {
        if self.config.time_scale <= 0.0 {
            return Duration::ZERO;
        }
        let transfer = if bandwidth > 0.0 { bytes as f64 / bandwidth } else { 0.0 };
        let total = (latency.as_secs_f64() + transfer) * self.config.time_scale;
        Duration::from_secs_f64(total)
    }

    fn charge(duration: Duration) {
        if !duration.is_zero() {
            std::thread::sleep(duration);
        }
    }

    /// Delay for pushing `bytes` over the network to another worker.
    pub fn network_delay(&self, bytes: u64) -> Duration {
        self.scaled(self.config.network_latency, bytes, self.config.network_bandwidth)
    }

    /// Delay for writing `bytes` to the worker's local disk.
    pub fn local_disk_delay(&self, bytes: u64) -> Duration {
        self.scaled(self.config.local_disk_latency, bytes, self.config.local_disk_bandwidth)
    }

    /// Delay for one durable-store request moving `bytes`.
    pub fn durable_delay(&self, bytes: u64) -> Duration {
        self.scaled(self.config.durable_latency, bytes, self.config.durable_bandwidth)
    }

    /// Delay of one GCS round trip.
    pub fn gcs_delay(&self) -> Duration {
        self.scaled(self.config.gcs_latency, 0, 1.0)
    }

    /// Sleep for a network push of `bytes`.
    pub fn charge_network(&self, bytes: u64) {
        Self::charge(self.network_delay(bytes));
    }

    /// Sleep for a local-disk write of `bytes`.
    pub fn charge_local_disk(&self, bytes: u64) {
        Self::charge(self.local_disk_delay(bytes));
    }

    /// Sleep for a durable PUT/GET of `bytes`.
    pub fn charge_durable(&self, bytes: u64) {
        Self::charge(self.durable_delay(bytes));
    }

    /// Sleep for one GCS round trip.
    pub fn charge_gcs(&self) {
        Self::charge(self.gcs_delay());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.network_delay(1 << 30), Duration::ZERO);
        assert_eq!(m.durable_delay(1 << 30), Duration::ZERO);
        assert_eq!(m.gcs_delay(), Duration::ZERO);
        // Must return instantly.
        let start = std::time::Instant::now();
        m.charge_durable(u64::MAX / 2);
        assert!(start.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn durable_path_is_much_more_expensive_than_local_disk() {
        let m = CostModel::new(CostModelConfig::realistic());
        let mb = 1 << 20;
        assert!(m.durable_delay(mb) > m.local_disk_delay(mb) * 5);
        assert!(m.durable_delay(mb) > m.network_delay(mb));
    }

    #[test]
    fn delays_scale_linearly_with_bytes_and_time_scale() {
        let full = CostModel::new(CostModelConfig::scaled(1.0));
        let tenth = CostModel::new(CostModelConfig::scaled(0.1));
        let big = full.durable_delay(10 << 20);
        let small = full.durable_delay(1 << 20);
        assert!(big > small);
        let ratio = tenth.durable_delay(10 << 20).as_secs_f64() / big.as_secs_f64();
        assert!((ratio - 0.1).abs() < 0.01);
    }

    #[test]
    fn charging_actually_sleeps() {
        let mut cfg = CostModelConfig::realistic();
        cfg.durable_latency = Duration::from_millis(5);
        cfg.time_scale = 1.0;
        let m = CostModel::new(cfg);
        let start = std::time::Instant::now();
        m.charge_durable(0);
        assert!(start.elapsed() >= Duration::from_millis(4));
    }
}
