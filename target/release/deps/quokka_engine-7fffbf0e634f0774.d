/root/repo/target/release/deps/quokka_engine-7fffbf0e634f0774.d: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/release/deps/libquokka_engine-7fffbf0e634f0774.rlib: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/release/deps/libquokka_engine-7fffbf0e634f0774.rmeta: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

crates/engine/src/lib.rs:
crates/engine/src/layout.rs:
crates/engine/src/recovery.rs:
crates/engine/src/runtime.rs:
crates/engine/src/worker.rs:
