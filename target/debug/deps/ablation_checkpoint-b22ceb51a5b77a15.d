/root/repo/target/debug/deps/ablation_checkpoint-b22ceb51a5b77a15.d: crates/bench/src/bin/ablation_checkpoint.rs

/root/repo/target/debug/deps/libablation_checkpoint-b22ceb51a5b77a15.rmeta: crates/bench/src/bin/ablation_checkpoint.rs

crates/bench/src/bin/ablation_checkpoint.rs:
