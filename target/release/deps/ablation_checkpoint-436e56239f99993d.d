/root/repo/target/release/deps/ablation_checkpoint-436e56239f99993d.d: crates/bench/src/bin/ablation_checkpoint.rs

/root/repo/target/release/deps/ablation_checkpoint-436e56239f99993d: crates/bench/src/bin/ablation_checkpoint.rs

crates/bench/src/bin/ablation_checkpoint.rs:
