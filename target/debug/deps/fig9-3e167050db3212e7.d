/root/repo/target/debug/deps/fig9-3e167050db3212e7.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-3e167050db3212e7: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
