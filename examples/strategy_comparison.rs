//! Compare the normal-execution cost of the fault-tolerance strategies the
//! paper discusses (§II-B, Fig. 9): no fault tolerance, write-ahead lineage,
//! Trino-style durable spooling, and periodic state checkpointing.
//!
//! The run uses the calibrated cost model (scaled down so it finishes
//! quickly) so that bytes written to the durable store actually cost time,
//! exactly like S3/HDFS writes cost time on a real cluster.
//!
//! Run with: `cargo run --release --example strategy_comparison`

use quokka::{CostModelConfig, EngineConfig, FaultStrategy, QuokkaSession};

fn main() -> quokka::Result<()> {
    let workers = 4;
    let session = QuokkaSession::tpch(0.01, workers)?;
    let plan = quokka::tpch::query(5)?; // a multi-join pipeline
    let expected = session.run_reference(&plan)?;
    let cost = CostModelConfig::scaled(0.05);

    let strategies: [(&str, FaultStrategy); 4] = [
        ("none (restart on failure)", FaultStrategy::None),
        ("write-ahead lineage", FaultStrategy::WriteAheadLineage),
        ("durable spooling", FaultStrategy::Spooling),
        ("checkpointing (every 4 tasks)", FaultStrategy::Checkpointing { interval_tasks: 4 }),
    ];

    println!(
        "{:<30} {:>10} {:>14} {:>14} {:>12}",
        "strategy", "time (s)", "durable bytes", "backup bytes", "lineage B"
    );
    let mut baseline = None;
    for (name, strategy) in strategies {
        let config = EngineConfig::quokka(workers).with_fault(strategy).with_cost(cost);
        let outcome = session.run_with(&plan, &config)?;
        assert!(quokka::same_result(&expected, &outcome.batch), "{name}: wrong result");
        let seconds = outcome.metrics.runtime.as_secs_f64();
        let overhead = match baseline {
            None => {
                baseline = Some(seconds);
                String::from("   (baseline)")
            }
            Some(base) => format!("   ({:.2}x)", seconds / base),
        };
        println!(
            "{:<30} {:>10.3} {:>14} {:>14} {:>12}{}",
            name,
            seconds,
            outcome.metrics.durable_bytes,
            outcome.metrics.backup_bytes,
            outcome.metrics.lineage_bytes,
            overhead
        );
    }
    println!("\nKB-sized lineage vs MB-sized spooling is the paper's core argument (Fig. 9).");
    Ok(())
}
