/root/repo/target/debug/deps/kernels-7602acf5b7ce6675.d: crates/bench/src/bin/kernels.rs

/root/repo/target/debug/deps/kernels-7602acf5b7ce6675: crates/bench/src/bin/kernels.rs

crates/bench/src/bin/kernels.rs:
