//! The query runner: wiring, streaming execution and the restart baseline.

use crate::admission::{estimate_query_memory, AdmissionController, AdmissionPermit};
use crate::layout::QueryLayout;
use crate::recovery::{Coordinator, CoordinatorOutcome};
use crate::stream::{BatchStream, StreamEvent};
use crate::worker::{spawn_workers, Services};
use parking_lot::Mutex;
use quokka_batch::codec::encode_partition;
use quokka_batch::Batch;
use quokka_common::chaos::ChaosPlan;
use quokka_common::config::{ClusterConfig, EngineConfig};
use quokka_common::ids::WorkerId;
use quokka_common::metrics::{MetricsRegistry, QueryMetrics};
use quokka_common::{QuokkaError, Result};
use quokka_gcs::tables::{ChannelState, TaskEntry};
use quokka_gcs::Gcs;
use quokka_net::DataPlane;
use quokka_plan::catalog::Catalog;
use quokka_plan::logical::LogicalPlan;
use quokka_plan::optimizer::Optimizer;
use quokka_plan::stage::StageGraph;
use quokka_storage::{CostModel, DurableObjectStore, LocalBackupStore};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Query result rows (concatenated sink output).
    pub batch: Batch,
    /// Execution metrics, including recovery statistics.
    pub metrics: QueryMetrics,
}

/// Runs logical plans on a simulated cluster under one [`EngineConfig`].
#[derive(Debug, Clone)]
pub struct QueryRunner {
    config: EngineConfig,
}

/// Serving-path options for [`QueryRunner::stream_opts`]. The default is
/// exactly [`QueryRunner::stream`]: lower the plan here, no admission.
#[derive(Debug, Default, Clone)]
pub struct StreamOptions {
    /// The plan is already lowered (optimized/decorrelated) — e.g. it came
    /// out of a plan cache. Skip both the optimizer and the mandatory
    /// decorrelation pass and compile it as-is.
    pub prelowered: bool,
    /// Stamped onto [`QueryMetrics::plan_cache_hit`] so callers can observe
    /// which plans skipped the frontend.
    pub plan_cache_hit: bool,
    /// When set, the query must be admitted before any cluster state is
    /// built: [`AdmissionController::acquire`] blocks in FIFO order while
    /// the queue has room and fails with
    /// [`QuokkaError::Overloaded`](quokka_common::QuokkaError) when it
    /// does not — synchronously, from `stream_opts` itself. The
    /// permit is released when the query finishes, however it finishes
    /// (success, failure, cancellation, chaos-induced restart).
    pub admission: Option<Arc<AdmissionController>>,
}

/// How one execution attempt ended, as seen by the supervisor loop.
enum AttemptOutcome {
    Completed(Box<QueryMetrics>),
    /// The fault strategy has no intra-query recovery; rerun from scratch.
    NeedsRestart {
        failed: Vec<WorkerId>,
        elapsed: Duration,
    },
    Failed(QuokkaError),
}

impl QueryRunner {
    pub fn new(config: EngineConfig) -> Self {
        QueryRunner { config }
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Execute `plan` to completion and return the full result — a
    /// convenience wrapper that drains [`stream`](Self::stream).
    pub fn run(&self, plan: &LogicalPlan, catalog: &dyn Catalog) -> Result<QueryOutcome> {
        self.stream(plan, catalog)?.collect()
    }

    /// Execute `plan` against the base tables provided by `catalog`,
    /// streaming result batches as the sink stage commits them.
    ///
    /// Unless [`EngineConfig::optimize`] is disabled, the plan first runs
    /// through the rule-based logical optimizer (with the catalog supplying
    /// row-count estimates for build-side selection), so the stage graph is
    /// compiled from the optimized plan.
    ///
    /// Plan errors (unknown tables/columns, uncompilable stages) surface
    /// here, before any worker thread starts; the returned [`BatchStream`]
    /// only reports runtime failures.
    pub fn stream(&self, plan: &LogicalPlan, catalog: &dyn Catalog) -> Result<BatchStream> {
        self.stream_opts(plan, catalog, StreamOptions::default())
    }

    /// [`stream`](Self::stream) with explicit serving-path options: a
    /// prelowered (cached) plan, cache-hit stamping, and admission control.
    pub fn stream_opts(
        &self,
        plan: &LogicalPlan,
        catalog: &dyn Catalog,
        opts: StreamOptions,
    ) -> Result<BatchStream> {
        // Resolve environment overrides up front, rejecting malformed values
        // loudly instead of silently falling back to defaults.
        let mut config = self.config.clone();
        config.resolve_env()?;
        let plan = if opts.prelowered {
            plan.clone()
        } else if self.config.optimize {
            Optimizer::with_catalog(catalog).optimize(plan)?
        } else {
            // Subquery decorrelation is a mandatory lowering, not an
            // optimization: even a "naive" run must turn the frontends'
            // subquery expressions into joins before stage compilation.
            quokka_plan::optimizer::decorrelate(plan.clone())?
        };
        let output_schema = plan.schema()?;
        // Fail fast on plans the stage compiler rejects; attempts reuse the
        // compiled graph instead of recompiling.
        let graph = StageGraph::compile(&plan)?;
        // Admission happens after planning (cheap, and errors should surface
        // as plan errors) but before the table snapshot — the first big
        // allocation a query makes. An Overloaded rejection propagates from
        // here synchronously; a queued query blocks its caller right here.
        let permit = match &opts.admission {
            Some(controller) => Some(controller.acquire(estimate_query_memory(&plan, catalog))?),
            None => None,
        };
        // Snapshot the referenced base tables so the query (and a potential
        // restart-baseline rerun) no longer needs the caller's catalog.
        let mut tables: BTreeMap<String, Vec<Batch>> = BTreeMap::new();
        for table in plan.referenced_tables() {
            tables.insert(table.clone(), catalog.table_batches(&table)?);
        }

        let (tx, rx) = std::sync::mpsc::channel();
        let cancel = Arc::new(AtomicBool::new(false));
        let stream = BatchStream::new(output_schema, rx, Arc::clone(&cancel));
        let plan_cache_hit = opts.plan_cache_hit;
        std::thread::Builder::new()
            .name("quokka-query".to_string())
            .spawn(move || supervise(config, graph, tables, tx, cancel, permit, plan_cache_hit))
            .expect("failed to spawn query supervisor thread");
        Ok(stream)
    }
}

/// Drive the query to completion on this (background) thread, rerunning it
/// on the surviving workers if the restart baseline demands it.
///
/// The admission permit (when admission control is active) lives here for
/// the whole supervision — across restarts of the same query — and is
/// released before the final event is announced, whatever the exit path. A
/// chaos-killed or failed query therefore can never strand its slot, and a
/// client that has observed its result can immediately admit a follow-up.
fn supervise(
    config: EngineConfig,
    graph: StageGraph,
    tables: BTreeMap<String, Vec<Batch>>,
    tx: Sender<StreamEvent>,
    cancel: Arc<AtomicBool>,
    permit: Option<AdmissionPermit>,
    plan_cache_hit: bool,
) {
    let final_event =
        supervise_inner(config, graph, tables, &tx, &cancel, permit.as_ref(), plan_cache_hit);
    drop(permit);
    let _ = tx.send(final_event);
}

/// The supervision loop proper; returns the stream's final event (sent by
/// [`supervise`] only after the admission slot is freed).
fn supervise_inner(
    mut config: EngineConfig,
    graph: StageGraph,
    tables: BTreeMap<String, Vec<Batch>>,
    tx: &Sender<StreamEvent>,
    cancel: &Arc<AtomicBool>,
    permit: Option<&AdmissionPermit>,
    plan_cache_hit: bool,
) -> StreamEvent {
    let mut restarts_left = 1u32;
    // The restart baseline charges the failed attempt's runtime and
    // failures on top of the rerun's metrics.
    let mut carried_runtime = Duration::ZERO;
    let mut carried_failures = 0u64;
    // The table snapshot only exists for restart-baseline reruns; attempts
    // drop it as soon as it can no longer be needed.
    let mut tables = Some(tables);
    loop {
        match run_attempt(&config, graph.clone(), &mut tables, tx, cancel) {
            Ok(AttemptOutcome::Completed(mut metrics)) => {
                metrics.runtime += carried_runtime;
                metrics.failures += carried_failures;
                // `time_to_first_batch` shares `runtime`'s origin, so the
                // failed attempt's elapsed time is charged to both.
                if let Some(first) = metrics.time_to_first_batch.as_mut() {
                    *first += carried_runtime;
                }
                metrics.plan_cache_hit = plan_cache_hit;
                if let Some(permit) = permit {
                    metrics.admission_wait = permit.wait();
                    metrics.admitted_memory_bytes = permit.estimate();
                }
                return StreamEvent::Finished(metrics);
            }
            Ok(AttemptOutcome::NeedsRestart { failed, elapsed }) => {
                if restarts_left == 0 {
                    return StreamEvent::Failed(QuokkaError::Internal(
                        "query failed and the restart budget is exhausted".to_string(),
                    ));
                }
                restarts_left -= 1;
                carried_runtime += elapsed;
                carried_failures += failed.len() as u64;
                // Rerun the whole query on the surviving workers, without
                // re-injecting the faults that already fired.
                let survivors = config.cluster.workers.saturating_sub(failed.len() as u32).max(1);
                config.failures.clear();
                config.chaos = ChaosPlan::new();
                config.cluster = ClusterConfig {
                    workers: survivors,
                    channels_per_stage: config.cluster.channels_per_stage,
                    ..config.cluster
                };
                let _ = tx.send(StreamEvent::Restarted);
            }
            Ok(AttemptOutcome::Failed(error)) | Err(error) => {
                return StreamEvent::Failed(error);
            }
        }
    }
}

/// One end-to-end execution attempt: wire the cluster, run the coordinator,
/// join every worker thread, and report how it ended.
fn run_attempt(
    config: &EngineConfig,
    graph: StageGraph,
    tables: &mut Option<BTreeMap<String, Vec<Batch>>>,
    tx: &Sender<StreamEvent>,
    cancel: &Arc<AtomicBool>,
) -> Result<AttemptOutcome> {
    let cost = CostModel::new(config.cost);
    let metrics = MetricsRegistry::new();
    let durable: Arc<dyn quokka_storage::ObjectStore> =
        Arc::new(DurableObjectStore::new(cost, Arc::clone(&metrics)));

    // Load the referenced base tables into the (durable) object store as
    // split objects — the data lake the paper's queries read from S3.
    let mut table_splits = BTreeMap::new();
    for (table, batches) in tables.as_ref().expect("table snapshot consumed") {
        for (index, batch) in batches.iter().enumerate() {
            durable.put_unmetered(
                Services::table_split_key(table, index as u64),
                encode_partition(std::slice::from_ref(batch)),
            );
        }
        table_splits.insert(table.clone(), batches.len() as u64);
    }
    // A restart (the only consumer of a second attempt) is only ever
    // requested when the fault strategy has no intra-query recovery; under
    // the recovering strategies the snapshot is dead weight for the rest of
    // the query — free it before execution starts.
    if config.fault.supports_intra_query_recovery() {
        *tables = None;
    }

    let layout = Arc::new(QueryLayout::new(graph, &config.cluster, &table_splits)?);
    let gcs = Arc::new(Gcs::new(cost.gcs_delay()));
    let plane = Arc::new(DataPlane::with_config(
        config.cluster.workers,
        cost,
        Arc::clone(&metrics),
        &config.transport,
    )?);
    let backups: Vec<Arc<LocalBackupStore>> = (0..config.cluster.workers)
        .map(|w| Arc::new(LocalBackupStore::new(w, cost, Arc::clone(&metrics))))
        .collect();

    // Register every channel and its first task in the GCS.
    for addr in layout.all_channels() {
        let worker = layout.initial_worker(addr);
        let state = ChannelState::new(addr, worker, layout.upstream_channels(addr.stage).len());
        gcs.put_channel(&state);
        gcs.put_task(&TaskEntry { task: addr.task(0), worker });
    }

    let services = Arc::new(Services {
        config: config.clone(),
        layout: Arc::clone(&layout),
        gcs: Arc::clone(&gcs),
        plane,
        backups,
        durable,
        sink: Mutex::new(tx.clone()),
        metrics: Arc::clone(&metrics),
        killed: (0..config.cluster.workers).map(|_| AtomicBool::new(false)).collect(),
        cancelled: Arc::clone(cancel),
        cost,
        heartbeats: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        heartbeat_suppressed: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        suspected: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        straggler_tasks: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        straggler_micros: (0..config.cluster.workers).map(|_| Default::default()).collect(),
        delivered_sinks: None,
    });

    let start = Instant::now();
    // Align the first-batch clock with `start`, so `time_to_first_batch`
    // and `runtime` measure from the same origin (excluding table loading).
    metrics.restart_clock();
    let handles = spawn_workers(&services);
    let outcome = Coordinator::new(Arc::clone(&services)).run();
    // Whatever happened, make every thread exit before we inspect state.
    if services.gcs.query_error().is_none() && !services.gcs.is_query_done() {
        services.gcs.set_query_done();
    }
    for handle in handles {
        let _ = handle.join();
    }
    let elapsed = start.elapsed();

    Ok(match outcome {
        CoordinatorOutcome::Completed => {
            let mut snapshot = metrics.snapshot(elapsed);
            snapshot.lineage_bytes = gcs.lineage_bytes();
            snapshot.gcs_transactions = gcs.transactions();
            // Surface the effective robustness settings so tests (and
            // callers) can assert what the run actually used.
            snapshot.effective_watchdog = config.watchdog;
            snapshot.effective_suspicion_timeout = config.cluster.suspicion_timeout;
            AttemptOutcome::Completed(Box::new(snapshot))
        }
        CoordinatorOutcome::Failed(error) => AttemptOutcome::Failed(error),
        CoordinatorOutcome::NeedsRestart { failed } => {
            AttemptOutcome::NeedsRestart { failed, elapsed }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{Column, DataType, Schema};
    use quokka_common::config::{ExecutionMode, FailureSpec, FaultStrategy, SchedulePolicy};
    use quokka_plan::aggregate::{count, sum};
    use quokka_plan::catalog::MemoryCatalog;
    use quokka_plan::expr::{col, lit};
    use quokka_plan::logical::{JoinType, PlanBuilder};
    use quokka_plan::reference::{same_result, ReferenceExecutor};

    /// A small synthetic catalog: a fact table and a dimension table, split
    /// into several batches so scans produce multiple input partitions.
    fn catalog(rows: i64) -> MemoryCatalog {
        let catalog = MemoryCatalog::new();
        let dim = Schema::from_pairs(&[("d_key", DataType::Int64), ("d_name", DataType::Utf8)]);
        let dim_batch = Batch::try_new(
            dim.clone(),
            vec![
                Column::Int64((0..10).collect()),
                Column::Utf8((0..10).map(|i| format!("group-{}", i % 3)).collect()),
            ],
        )
        .unwrap();
        catalog.register("dim", dim.clone(), dim_batch.chunks(4));

        let fact =
            Schema::from_pairs(&[("f_key", DataType::Int64), ("f_value", DataType::Float64)]);
        let fact_batch = Batch::try_new(
            fact.clone(),
            vec![
                Column::Int64((0..rows).map(|i| i % 10).collect()),
                Column::Float64((0..rows).map(|i| i as f64 * 0.5).collect()),
            ],
        )
        .unwrap();
        catalog.register("fact", fact.clone(), fact_batch.chunks(64));
        catalog
    }

    fn join_plan() -> quokka_plan::logical::LogicalPlan {
        let dim = Schema::from_pairs(&[("d_key", DataType::Int64), ("d_name", DataType::Utf8)]);
        let fact =
            Schema::from_pairs(&[("f_key", DataType::Int64), ("f_value", DataType::Float64)]);
        PlanBuilder::scan("dim", dim)
            .join(
                PlanBuilder::scan("fact", fact).filter(col("f_value").gt_eq(lit(1.0f64))),
                vec![("d_key", "f_key")],
                JoinType::Inner,
            )
            .aggregate(
                vec![(col("d_name"), "d_name")],
                vec![sum(col("f_value"), "total"), count(col("f_key"), "n")],
            )
            .sort(vec![("d_name", true)])
            .build()
            .unwrap()
    }

    fn check_against_reference(config: EngineConfig, rows: i64) {
        let catalog = catalog(rows);
        let plan = join_plan();
        let expected = ReferenceExecutor::new(&catalog).execute(&plan).unwrap();
        let outcome = QueryRunner::new(config).run(&plan, &catalog).unwrap();
        assert!(
            same_result(&expected, &outcome.batch),
            "distributed result diverged from the reference\nexpected: {expected:?}\nactual: {:?}",
            outcome.batch
        );
        assert!(outcome.metrics.tasks_executed > 0);
    }

    #[test]
    fn pipelined_wal_matches_reference() {
        check_against_reference(EngineConfig::quokka(3), 500);
    }

    #[test]
    fn stagewise_execution_matches_reference() {
        check_against_reference(EngineConfig::sparklike(3), 300);
    }

    #[test]
    fn static_batch_scheduling_matches_reference() {
        check_against_reference(
            EngineConfig::quokka(2).with_schedule(SchedulePolicy::StaticBatch { batch: 3 }),
            300,
        );
    }

    #[test]
    fn spooling_strategy_matches_reference_and_spools_bytes() {
        let catalog = catalog(300);
        let plan = join_plan();
        let expected = ReferenceExecutor::new(&catalog).execute(&plan).unwrap();
        let outcome = QueryRunner::new(EngineConfig::trinolike(3)).run(&plan, &catalog).unwrap();
        assert!(same_result(&expected, &outcome.batch));
        assert!(outcome.metrics.durable_bytes > 0, "spooling must write durable bytes");
        assert_eq!(outcome.metrics.backup_bytes, 0, "spooling does not use local backup");
    }

    #[test]
    fn wal_overhead_is_lineage_not_durable_bytes() {
        let catalog = catalog(300);
        let plan = join_plan();
        let outcome = QueryRunner::new(EngineConfig::quokka(3)).run(&plan, &catalog).unwrap();
        assert_eq!(outcome.metrics.durable_bytes, 0, "WAL never writes shuffle data durably");
        assert!(outcome.metrics.backup_bytes > 0, "WAL backs partitions up locally");
        assert!(outcome.metrics.lineage_bytes > 0);
        assert!(
            outcome.metrics.lineage_bytes < outcome.metrics.backup_bytes,
            "lineage must be far smaller than the data it describes"
        );
    }

    #[test]
    fn failure_with_wal_recovers_and_matches_reference() {
        let catalog = catalog(600);
        let plan = join_plan();
        let expected = ReferenceExecutor::new(&catalog).execute(&plan).unwrap();
        let config = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));
        let outcome = QueryRunner::new(config).run(&plan, &catalog).unwrap();
        assert!(
            same_result(&expected, &outcome.batch),
            "result after fault recovery diverged\nexpected: {expected:?}\nactual: {:?}",
            outcome.batch
        );
        assert_eq!(outcome.metrics.failures, 1);
        assert!(outcome.metrics.recovery_tasks > 0, "recovery should replay some tasks");
    }

    #[test]
    fn failure_with_restart_baseline_recovers_by_rerunning() {
        let catalog = catalog(400);
        let plan = join_plan();
        let expected = ReferenceExecutor::new(&catalog).execute(&plan).unwrap();
        let config = EngineConfig::quokka(3)
            .with_fault(FaultStrategy::None)
            .with_failure(FailureSpec::new(2, 0.3));
        let outcome = QueryRunner::new(config).run(&plan, &catalog).unwrap();
        assert!(same_result(&expected, &outcome.batch));
        assert_eq!(outcome.metrics.failures, 1);
    }

    #[test]
    fn stagewise_failure_recovers() {
        let catalog = catalog(400);
        let plan = join_plan();
        let expected = ReferenceExecutor::new(&catalog).execute(&plan).unwrap();
        let config = EngineConfig::sparklike(3).with_failure(FailureSpec::halfway(0));
        let outcome = QueryRunner::new(config).run(&plan, &catalog).unwrap();
        assert!(same_result(&expected, &outcome.batch));
    }

    #[test]
    fn single_stage_scan_query_works() {
        let catalog = catalog(100);
        let fact =
            Schema::from_pairs(&[("f_key", DataType::Int64), ("f_value", DataType::Float64)]);
        let plan = PlanBuilder::scan("fact", fact)
            .filter(col("f_key").eq(lit(3i64)))
            .project(vec![(col("f_value"), "v")])
            .build()
            .unwrap();
        let expected = ReferenceExecutor::new(&catalog).execute(&plan).unwrap();
        let outcome = QueryRunner::new(EngineConfig::quokka(2)).run(&plan, &catalog).unwrap();
        assert!(same_result(&expected, &outcome.batch));
    }

    #[test]
    fn checkpointing_strategy_writes_checkpoints() {
        let catalog = catalog(400);
        let plan = join_plan();
        let config =
            EngineConfig::quokka(2).with_fault(FaultStrategy::Checkpointing { interval_tasks: 2 });
        let outcome = QueryRunner::new(config).run(&plan, &catalog).unwrap();
        assert!(outcome.metrics.checkpoint_bytes > 0);
        assert!(outcome.metrics.durable_bytes > 0);
    }

    #[test]
    fn execution_modes_agree_with_each_other() {
        let catalog = catalog(500);
        let plan = join_plan();
        let pipelined = QueryRunner::new(EngineConfig::quokka(3)).run(&plan, &catalog).unwrap();
        let stagewise =
            QueryRunner::new(EngineConfig::quokka(3).with_mode(ExecutionMode::Stagewise))
                .run(&plan, &catalog)
                .unwrap();
        assert!(same_result(&pipelined.batch, &stagewise.batch));
    }
}
