//! Columnar data substrate for the Quokka engine.
//!
//! The paper's Quokka implementation delegates single-node kernels to DuckDB
//! and Polars over Apache Arrow batches. Those dependencies are not
//! available here, so this crate provides the minimal columnar toolkit the
//! engine needs, built from scratch:
//!
//! * [`DataType`] / [`ScalarValue`] — the supported value types (64-bit
//!   integers, 64-bit floats, UTF-8 strings, booleans, and dates stored as
//!   days since the Unix epoch). TPC-H does not require nullable columns, so
//!   nulls are intentionally not modelled; this is documented in DESIGN.md.
//! * [`Column`] — a single column of values.
//! * [`Schema`] / [`Field`] — named, typed column metadata.
//! * [`Batch`] — an immutable bundle of equal-length columns, the unit of
//!   data exchanged between tasks (the paper's "data partition" contains one
//!   or more batches).
//! * [`compute`] — element-wise and relational kernels (filter, take,
//!   concat, arithmetic, comparisons, LIKE, hashing, hash partitioning,
//!   sorting).
//! * [`encoding`] — compressed column representations (dictionary strings,
//!   bit-packed integers, XOR-compressed floats) that the kernels, the wire
//!   format, and the durable-backup codec all understand natively.
//! * [`rowkey`] — compact binary row-key encoding (with a `u64` fast path)
//!   backing the hash-based group-by and join operators.
//! * [`codec`] — a compact binary encoding used for upstream backup,
//!   spooling and checkpoints, so the storage cost model can charge for real
//!   byte counts.
//! * [`wire`] — the dependency-free length-prefixed encoding used by the
//!   transport data plane (TCP shuffle frames written into pooled slabs) and
//!   by every other hand-written protocol layer.

pub mod batch;
pub mod codec;
pub mod column;
pub mod compute;
pub mod datatype;
pub mod encoding;
pub mod rowkey;
pub mod schema;
pub mod wire;

pub use batch::Batch;
pub use column::Column;
pub use datatype::{DataType, ScalarValue};
pub use encoding::{DictColumn, PackedIntColumn, PackedLogical, XorFloatColumn};
pub use schema::{Field, Schema};
