//! A single-threaded reference executor.
//!
//! This executor evaluates a [`LogicalPlan`] directly against a [`Catalog`],
//! one operator at a time, with deliberately simple row-oriented join and
//! aggregation implementations. It serves two purposes:
//!
//! 1. **Correctness oracle** — every distributed execution mode and every
//!    fault-injection scenario must produce exactly the rows this executor
//!    produces (integration tests in `tests/` assert this for the TPC-H
//!    queries).
//! 2. **Restart baseline** — the paper's "restart the query from scratch"
//!    baseline (overhead ≈ 1.5x for a failure at 50%) is modelled by running
//!    a query once, discarding the work at the failure point, and running it
//!    again; the reference executor provides the single-machine runtime used
//!    in that model.

use crate::catalog::Catalog;
use crate::logical::{JoinType, LogicalPlan};
use crate::physical::{CoreOp, OperatorSpec};
use quokka_batch::compute::{sort_batch, SortKey};
use quokka_batch::datatype::ScalarValue;
use quokka_batch::{Batch, Schema};
use quokka_common::Result;
use std::collections::HashMap;

/// Executes logical plans on a single thread.
pub struct ReferenceExecutor<'a> {
    catalog: &'a dyn Catalog,
}

impl<'a> ReferenceExecutor<'a> {
    pub fn new(catalog: &'a dyn Catalog) -> Self {
        ReferenceExecutor { catalog }
    }

    /// Run the plan to completion, returning a single batch of results.
    ///
    /// Plans that still carry subquery expressions (as bound by the SQL
    /// frontend) are decorrelated first — the same mandatory lowering the
    /// distributed runtime applies — so the oracle accepts exactly the
    /// plans every frontend produces.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<Batch> {
        if crate::optimizer::contains_subqueries(plan) {
            let lowered = crate::optimizer::decorrelate(plan.clone())?;
            return self.execute_node(&lowered);
        }
        self.execute_node(plan)
    }

    fn execute_node(&self, plan: &LogicalPlan) -> Result<Batch> {
        match plan {
            LogicalPlan::Scan { table, schema } => {
                // The scan schema may be a column subset of the stored table
                // (projection pruning); read only those columns.
                let batches = self.catalog.table_batches(table)?;
                if batches.is_empty() {
                    Ok(Batch::empty(schema.clone()))
                } else {
                    Batch::concat(&batches)?.select_to(schema)
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                let batch = self.execute_node(input)?;
                let mask = predicate.evaluate_mask(&batch)?;
                batch.filter(&mask)
            }
            LogicalPlan::Project { input, exprs } => {
                let batch = self.execute_node(input)?;
                let schema = plan.schema()?;
                let columns =
                    exprs.iter().map(|(e, _)| e.evaluate(&batch)).collect::<Result<Vec<_>>>()?;
                Batch::try_new(schema, columns)
            }
            LogicalPlan::Join { build, probe, on, join_type } => {
                let build_batch = self.execute_node(build)?;
                let probe_batch = self.execute_node(probe)?;
                self.join(plan, &build_batch, &probe_batch, on, *join_type)
            }
            LogicalPlan::Aggregate { input, group_by, aggregates } => {
                let batch = self.execute_node(input)?;
                // Reuse the aggregate operator's logic through the spec (the
                // reference's independence matters most for joins, whose
                // distributed implementation involves partitioning; the
                // accumulator arithmetic is shared either way).
                let spec = OperatorSpec::new(CoreOp::HashAggregate {
                    input_schema: batch.schema().clone(),
                    group_by: group_by.clone(),
                    aggregates: aggregates.clone(),
                });
                let mut op = spec.instantiate()?;
                op.push(0, &batch)?;
                let out = op.finish()?;
                Batch::concat(&out)
            }
            LogicalPlan::Sort { input, keys, limit } => {
                let batch = self.execute_node(input)?;
                let schema = batch.schema().clone();
                let sort_keys = keys
                    .iter()
                    .map(|(name, asc)| {
                        Ok(SortKey { column: schema.index_of(name)?, ascending: *asc })
                    })
                    .collect::<Result<Vec<_>>>()?;
                let sorted = sort_batch(&batch, &sort_keys)?;
                Ok(match limit {
                    Some(n) if *n < sorted.num_rows() => sorted.slice(0, *n),
                    _ => sorted,
                })
            }
            LogicalPlan::Limit { input, n } => {
                let batch = self.execute_node(input)?;
                Ok(if batch.num_rows() > *n { batch.slice(0, *n) } else { batch })
            }
        }
    }

    /// Row-oriented hash join keyed on stringified key values — an
    /// implementation deliberately different from the columnar, hash-
    /// partitioned operator the distributed engine uses.
    fn join(
        &self,
        plan: &LogicalPlan,
        build: &Batch,
        probe: &Batch,
        on: &[(String, String)],
        join_type: JoinType,
    ) -> Result<Batch> {
        let build_keys: Vec<usize> =
            on.iter().map(|(b, _)| build.schema().index_of(b)).collect::<Result<Vec<_>>>()?;
        let probe_keys: Vec<usize> =
            on.iter().map(|(_, p)| probe.schema().index_of(p)).collect::<Result<Vec<_>>>()?;

        let key_of = |batch: &Batch, row: usize, cols: &[usize]| -> String {
            let mut key = String::new();
            for &c in cols {
                // Render numerics through f64 so Int64 and Float64 keys that
                // compare equal also join equal.
                let value = batch.value(row, c);
                match value.as_f64() {
                    Ok(f) => key.push_str(&format!("{f:.6}")),
                    Err(_) => key.push_str(&value.to_string()),
                }
                key.push('\u{1}');
            }
            key
        };

        let mut table: HashMap<String, Vec<usize>> = HashMap::new();
        for row in 0..build.num_rows() {
            table.entry(key_of(build, row, &build_keys)).or_default().push(row);
        }

        let output_schema = plan.schema()?;
        match join_type {
            JoinType::Inner | JoinType::Left => {
                let mut build_rows: Vec<usize> = Vec::new();
                let mut probe_rows: Vec<usize> = Vec::new();
                let mut unmatched_probe: Vec<usize> = Vec::new();
                for row in 0..probe.num_rows() {
                    match table.get(&key_of(probe, row, &probe_keys)) {
                        Some(matches) => {
                            for &b in matches {
                                build_rows.push(b);
                                probe_rows.push(row);
                            }
                        }
                        None => unmatched_probe.push(row),
                    }
                }
                let build_taken = build.take(&build_rows)?;
                let probe_taken = probe.take(&probe_rows)?;
                let mut columns = build_taken.columns().to_vec();
                columns.extend(probe_taken.columns().iter().cloned());
                let mut result = Batch::try_new(output_schema.clone(), columns)?;
                if join_type == JoinType::Left && !unmatched_probe.is_empty() {
                    let defaults = default_row(&build.schema().clone());
                    let probe_unmatched = probe.take(&unmatched_probe)?;
                    let mut columns = Vec::new();
                    for (i, default) in defaults.iter().enumerate() {
                        let values: Vec<ScalarValue> =
                            unmatched_probe.iter().map(|_| default.clone()).collect();
                        columns.push(quokka_batch::Column::from_scalars(
                            build.schema().field(i).data_type,
                            &values,
                        )?);
                    }
                    columns.extend(probe_unmatched.columns().iter().cloned());
                    let filler = Batch::try_new(output_schema, columns)?;
                    result = Batch::concat(&[result, filler])?;
                }
                Ok(result)
            }
            JoinType::Semi | JoinType::Anti => {
                let want = join_type == JoinType::Semi;
                let mask: Vec<bool> = (0..probe.num_rows())
                    .map(|row| table.contains_key(&key_of(probe, row, &probe_keys)) == want)
                    .collect();
                probe.filter(&mask)
            }
        }
    }
}

fn default_row(schema: &Schema) -> Vec<ScalarValue> {
    schema
        .fields()
        .iter()
        .map(|f| match f.data_type {
            quokka_batch::DataType::Int64 => ScalarValue::Int64(0),
            quokka_batch::DataType::Float64 => ScalarValue::Float64(0.0),
            quokka_batch::DataType::Utf8 => ScalarValue::Utf8(String::new()),
            quokka_batch::DataType::Bool => ScalarValue::Bool(false),
            quokka_batch::DataType::Date => ScalarValue::Date(0),
        })
        .collect()
}

/// Canonicalise a result batch for comparison: rows are rendered to strings
/// (floats rounded to 4 decimal places) and sorted, so two executions can be
/// compared regardless of row order and of tiny floating-point differences
/// introduced by different summation orders.
pub fn canonical_rows(batch: &Batch) -> Vec<String> {
    let mut rows: Vec<String> = (0..batch.num_rows())
        .map(|r| {
            let row: Vec<String> = (0..batch.num_columns())
                .map(|c| match batch.value(r, c) {
                    ScalarValue::Float64(f) => format!("{:.3}", round_for_compare(f)),
                    other => other.to_string(),
                })
                .collect();
            row.join("|")
        })
        .collect();
    rows.sort();
    rows
}

fn round_for_compare(f: f64) -> f64 {
    // Large aggregates accumulate floating-point error across different
    // summation orders (and fault recovery deliberately changes the order in
    // which partitions are folded into accumulators), so results are
    // compared with a relative tolerance: round to 8 significant digits.
    if f == 0.0 || !f.is_finite() {
        return 0.0;
    }
    let magnitude = f.abs().log10().floor();
    let scale = 10f64.powf(7.0 - magnitude);
    (f * scale).round() / scale
}

/// Assert-style helper: whether two result batches contain the same multiset
/// of rows (after canonicalisation).
pub fn same_result(a: &Batch, b: &Batch) -> bool {
    canonical_rows(a) == canonical_rows(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{count, sum};
    use crate::catalog::MemoryCatalog;
    use crate::expr::{col, lit};
    use crate::logical::PlanBuilder;
    use quokka_batch::{Column, DataType};

    fn catalog() -> MemoryCatalog {
        let catalog = MemoryCatalog::new();
        let customer =
            Schema::from_pairs(&[("c_custkey", DataType::Int64), ("c_name", DataType::Utf8)]);
        catalog.register(
            "customer",
            customer.clone(),
            vec![Batch::try_new(
                customer,
                vec![
                    Column::Int64(vec![1, 2, 3]),
                    Column::Utf8(vec!["alice".into(), "bob".into(), "carol".into()]),
                ],
            )
            .unwrap()],
        );
        let orders = Schema::from_pairs(&[
            ("o_orderkey", DataType::Int64),
            ("o_custkey", DataType::Int64),
            ("o_total", DataType::Float64),
        ]);
        catalog.register(
            "orders",
            orders.clone(),
            vec![Batch::try_new(
                orders,
                vec![
                    Column::Int64(vec![10, 11, 12, 13]),
                    Column::Int64(vec![1, 1, 2, 9]),
                    Column::Float64(vec![100.0, 50.0, 75.0, 20.0]),
                ],
            )
            .unwrap()],
        );
        catalog
    }

    #[test]
    fn scan_filter_project() {
        let catalog = catalog();
        let exec = ReferenceExecutor::new(&catalog);
        let plan = PlanBuilder::scan("orders", catalog.table_schema("orders").unwrap())
            .filter(col("o_total").gt_eq(lit(50.0f64)))
            .project(vec![(col("o_orderkey"), "key")])
            .build()
            .unwrap();
        let result = exec.execute(&plan).unwrap();
        assert_eq!(result.num_rows(), 3);
        assert_eq!(result.schema().column_names(), vec!["key"]);
    }

    #[test]
    fn inner_join_and_aggregate() {
        let catalog = catalog();
        let exec = ReferenceExecutor::new(&catalog);
        let plan = PlanBuilder::scan("customer", catalog.table_schema("customer").unwrap())
            .join(
                PlanBuilder::scan("orders", catalog.table_schema("orders").unwrap()),
                vec![("c_custkey", "o_custkey")],
                JoinType::Inner,
            )
            .aggregate(
                vec![(col("c_name"), "c_name")],
                vec![sum(col("o_total"), "revenue"), count(col("o_orderkey"), "orders")],
            )
            .sort(vec![("revenue", false)])
            .build()
            .unwrap();
        let result = exec.execute(&plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.value(0, 0), ScalarValue::Utf8("alice".into()));
        assert_eq!(result.value(0, 1), ScalarValue::Float64(150.0));
        assert_eq!(result.value(0, 2), ScalarValue::Int64(2));
        assert_eq!(result.value(1, 0), ScalarValue::Utf8("bob".into()));
    }

    #[test]
    fn semi_anti_and_left_joins() {
        let catalog = catalog();
        let exec = ReferenceExecutor::new(&catalog);
        // customers that have orders (semi): 1, 2
        let semi = PlanBuilder::scan("orders", catalog.table_schema("orders").unwrap())
            .join(
                PlanBuilder::scan("customer", catalog.table_schema("customer").unwrap()),
                vec![("o_custkey", "c_custkey")],
                JoinType::Semi,
            )
            .build()
            .unwrap();
        assert_eq!(exec.execute(&semi).unwrap().num_rows(), 2);

        // customers with no orders (anti): 3
        let anti = PlanBuilder::scan("orders", catalog.table_schema("orders").unwrap())
            .join(
                PlanBuilder::scan("customer", catalog.table_schema("customer").unwrap()),
                vec![("o_custkey", "c_custkey")],
                JoinType::Anti,
            )
            .build()
            .unwrap();
        let result = exec.execute(&anti).unwrap();
        assert_eq!(result.num_rows(), 1);
        assert_eq!(result.value(0, 1), ScalarValue::Utf8("carol".into()));

        // left join preserving all customers
        let left = PlanBuilder::scan("orders", catalog.table_schema("orders").unwrap())
            .join(
                PlanBuilder::scan("customer", catalog.table_schema("customer").unwrap()),
                vec![("o_custkey", "c_custkey")],
                JoinType::Left,
            )
            .build()
            .unwrap();
        let result = exec.execute(&left).unwrap();
        assert_eq!(result.num_rows(), 4); // 3 matches + carol unmatched
    }

    #[test]
    fn limit_and_sort_limit() {
        let catalog = catalog();
        let exec = ReferenceExecutor::new(&catalog);
        let plan = PlanBuilder::scan("orders", catalog.table_schema("orders").unwrap())
            .sort_limit(vec![("o_total", false)], 2)
            .build()
            .unwrap();
        let result = exec.execute(&plan).unwrap();
        assert_eq!(result.num_rows(), 2);
        assert_eq!(result.value(0, 2), ScalarValue::Float64(100.0));

        let plan = PlanBuilder::scan("orders", catalog.table_schema("orders").unwrap())
            .limit(3)
            .build()
            .unwrap();
        assert_eq!(exec.execute(&plan).unwrap().num_rows(), 3);
    }

    #[test]
    fn canonical_rows_ignore_order_and_float_jitter() {
        let schema = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Float64)]);
        let a = Batch::try_new(
            schema.clone(),
            vec![Column::Int64(vec![1, 2]), Column::Float64(vec![1.0, 2.0000000001])],
        )
        .unwrap();
        let b = Batch::try_new(
            schema,
            vec![Column::Int64(vec![2, 1]), Column::Float64(vec![2.0, 1.0])],
        )
        .unwrap();
        assert!(same_result(&a, &b));
        assert_eq!(canonical_rows(&a).len(), 2);
    }
}
