/root/repo/target/debug/deps/quokka_net-c02a1cce0287e0e3.d: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/debug/deps/libquokka_net-c02a1cce0287e0e3.rmeta: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

crates/net/src/lib.rs:
crates/net/src/flight.rs:
crates/net/src/plane.rs:
