//! The pluggable transport behind [`DataPlane`](crate::DataPlane).
//!
//! `DataPlane` keeps everything that is *policy* — fault injection, cost
//! charging, shuffle accounting, liveness — and delegates the actual
//! delivery of a push to a [`Transport`]. Two backends exist:
//!
//! * [`InprocTransport`] (default): delivery is a direct call into the
//!   destination worker's in-process [`FlightServer`] inbox. Zero copies,
//!   no sockets; the backend every unit test and chaos suite runs on.
//! * [`TcpTransport`](crate::tcp::TcpTransport): frames are encoded into
//!   pooled byte slabs and shipped over real TCP sockets with one send
//!   thread and a bounded queue per peer, so a stalled consumer blocks its
//!   producers.

use crate::flight::FlightServer;
use quokka_batch::Batch;
use quokka_common::ids::{ChannelAddr, PartitionName, WorkerId};
use quokka_common::Result;
use std::sync::Arc;

/// Delivery backend for the data plane.
///
/// `send` must deliver the slice into the destination worker's inbox —
/// either synchronously (in-process) or eventually (a wire transport may
/// return once the frame is queued; the engine's lineage gate plus the
/// pull-based repair path tolerate in-flight frames). Failures surface as
/// the engine's typed errors: [`QuokkaError::WorkerFailed`] for a dead
/// peer, [`QuokkaError::Transient`] for retryable delivery problems, so
/// the existing retry/suspicion machinery applies to every backend
/// unchanged.
///
/// [`QuokkaError::WorkerFailed`]: quokka_common::QuokkaError::WorkerFailed
/// [`QuokkaError::Transient`]: quokka_common::QuokkaError::Transient
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Deliver one pushed slice from `source` to `destination`.
    fn send(
        &self,
        source: WorkerId,
        destination: WorkerId,
        consumer: ChannelAddr,
        producer: PartitionName,
        batches: Vec<Batch>,
    ) -> Result<()>;

    /// Tear down any connection state towards a dead worker. Subsequent
    /// sends to it must fail with `WorkerFailed`.
    fn fail_peer(&self, worker: WorkerId);

    /// Short name for logs, metrics and bench output.
    fn kind(&self) -> &'static str;
}

/// The default in-process backend: a push is a method call on the
/// destination's [`FlightServer`].
pub struct InprocTransport {
    servers: Vec<Arc<FlightServer>>,
}

impl InprocTransport {
    pub fn new(servers: Vec<Arc<FlightServer>>) -> Self {
        InprocTransport { servers }
    }
}

impl std::fmt::Debug for InprocTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InprocTransport").field("workers", &self.servers.len()).finish()
    }
}

impl Transport for InprocTransport {
    fn send(
        &self,
        _source: WorkerId,
        destination: WorkerId,
        consumer: ChannelAddr,
        producer: PartitionName,
        batches: Vec<Batch>,
    ) -> Result<()> {
        // The plane validated the destination before delegating; a racing
        // kill still surfaces here as the server's own WorkerFailed.
        self.servers[destination as usize].push(consumer, producer, batches)
    }

    fn fail_peer(&self, _worker: WorkerId) {
        // No connections to tear down; the plane already failed the server.
    }

    fn kind(&self) -> &'static str {
        "inproc"
    }
}
