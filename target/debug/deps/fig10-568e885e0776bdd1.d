/root/repo/target/debug/deps/fig10-568e885e0776bdd1.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-568e885e0776bdd1: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
