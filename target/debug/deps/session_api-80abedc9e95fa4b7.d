/root/repo/target/debug/deps/session_api-80abedc9e95fa4b7.d: tests/session_api.rs Cargo.toml

/root/repo/target/debug/deps/libsession_api-80abedc9e95fa4b7.rmeta: tests/session_api.rs Cargo.toml

tests/session_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
