/root/repo/target/debug/deps/quokka_net-97386e2e209e2a6c.d: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/debug/deps/quokka_net-97386e2e209e2a6c: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

crates/net/src/lib.rs:
crates/net/src/flight.rs:
crates/net/src/plane.rs:
