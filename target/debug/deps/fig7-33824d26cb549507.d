/root/repo/target/debug/deps/fig7-33824d26cb549507.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-33824d26cb549507: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
