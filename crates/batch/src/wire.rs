//! Length-prefixed binary wire format for the transport data plane.
//!
//! [`codec`](crate::codec) serialises batches for *storage* (backup, spool,
//! checkpoint) and allocates a fresh buffer per call; this module serialises
//! batches for the *wire*. The difference that matters is allocation
//! discipline: the TCP transport encodes every push into a reusable slab
//! (`&mut Vec<u8>`) drawn from a pool, so nothing here allocates a transient
//! buffer. The primitives (`put_*` / [`WireReader`]) are also the foundation
//! for every other hand-written protocol in the engine — plan shipping and
//! the driver RPC in process mode — because the vendored `serde` shim is a
//! no-op and all serialisation is explicit.
//!
//! Properties:
//! * dependency-free: plain `Vec<u8>` and big-endian `to_be_bytes`, no
//!   `bytes` shim;
//! * round-trip exact for all column types: `Float64` travels as raw IEEE-754
//!   bits (`to_bits`/`from_bits`), so NaN payloads and signed zeros survive;
//! * corruption-safe: every decode failure is a typed
//!   [`QuokkaError::Storage`], never a panic, and length fields are bounds-
//!   checked against the remaining buffer before any allocation is sized
//!   from them.

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::DataType;
use crate::encoding::{
    width_for, BitReader, BitWriter, DictColumn, PackedIntColumn, PackedLogical, XorFloatColumn,
};
use crate::schema::{Field, Schema};
use quokka_common::{QuokkaError, Result};
use std::sync::Arc;

/// Magic prefix of a batch wire frame ("QKWF").
pub const WIRE_MAGIC: u32 = 0x514B_5746;

// Row-count allowance for frames whose compressed payload is smaller than
// one byte per row (e.g. all-equal bit-packed columns). Far above any batch
// the engine produces, far below anything that could size a harmful
// allocation.
pub(crate) const MAX_SMALL_FRAME_ROWS: usize = 1 << 22;

// Per-column encoding tags (one byte ahead of every column payload).
const ENC_PLAIN: u8 = 0;
const ENC_DICT: u8 = 1;
const ENC_PACKED: u8 = 2;
const ENC_XOR: u8 = 3;
const ENC_BOOL_PACKED: u8 = 4;
/// Floats that are exactly `n / 10^exp` for integral `n`, shipped as
/// bit-packed integers plus the exponent.
const ENC_SCALED: u8 = 5;

// ---------------------------------------------------------------------------
// Write primitives: append to a caller-owned slab.
// ---------------------------------------------------------------------------

pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Floats travel as raw bits so the round trip is bit-exact (NaN payloads
/// and `-0.0` included).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// `u32` length prefix followed by the raw bytes.
pub fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v);
}

/// `u32` length prefix followed by the UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_bytes(buf, v.as_bytes());
}

// ---------------------------------------------------------------------------
// Read primitives: a cursor with typed truncation errors.
// ---------------------------------------------------------------------------

/// Cursor over a received frame. Every accessor returns a typed
/// [`QuokkaError::Storage`] on truncation instead of panicking, so corrupted
/// or short frames surface as ordinary errors the retry machinery can see.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset, for error context.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn short(&self, what: &str, need: usize) -> QuokkaError {
        QuokkaError::Storage(format!(
            "wire: truncated frame reading {what} at offset {} (need {need} bytes, {} left)",
            self.pos,
            self.remaining()
        ))
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.short(what, n));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_be_bytes(self.take(2, "u16")?.try_into().expect("2 bytes")))
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_be_bytes(self.take(4, "u32")?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_be_bytes(self.take(8, "u64")?.try_into().expect("8 bytes")))
    }

    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_be_bytes(self.take(4, "i32")?.try_into().expect("4 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_be_bytes(self.take(8, "i64")?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Booleans must be exactly 0 or 1; anything else is corruption.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(QuokkaError::Storage(format!(
                "wire: invalid bool byte {other:#x} at offset {}",
                self.pos - 1
            ))),
        }
    }

    /// A `u32`-length-prefixed byte run; the length is validated against the
    /// remaining buffer before anything is sliced.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len, "length-prefixed bytes")
    }

    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec())
            .map_err(|e| QuokkaError::Storage(format!("wire: invalid utf8 string: {e}")))
    }

    /// Fail unless the frame was consumed exactly.
    pub fn expect_end(&self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(QuokkaError::Storage(format!(
                "wire: {} trailing bytes after frame at offset {}",
                self.remaining(),
                self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Batch frames.
// ---------------------------------------------------------------------------

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        4 => DataType::Date,
        other => return Err(QuokkaError::Storage(format!("wire: bad data type tag {other}"))),
    })
}

/// Upper bound on the byte length [`encode_batch_into`] will append for
/// `batch`, used to size slab reservations up front. Opportunistic column
/// compression can only shrink the frame below this bound.
pub fn encoded_batch_len(batch: &Batch) -> usize {
    let mut len = 4 + 4 + 8; // magic + ncols + nrows
    for field in batch.schema().fields() {
        len += 1 + 4 + field.name.len();
    }
    for col in batch.columns() {
        len += 1 // encoding tag
            + match col {
                Column::Int64(v) => v.len() * 8,
                Column::Float64(v) => v.len() * 8,
                Column::Date(v) => v.len() * 4,
                Column::Bool(v) => v.len().div_ceil(8),
                Column::Utf8(v) => v.iter().map(|s| 4 + s.len()).sum(),
                Column::Dict(d) => {
                    4 + d.values.iter().map(|s| 4 + s.len()).sum::<usize>()
                        + packed_byte_len(d.len(), d.code_width())
                }
                Column::Packed(p) => 8 + 1 + packed_byte_len(p.len(), p.width),
                Column::Xor(x) => 8 + (x.bit_len() as usize).div_ceil(8),
            };
    }
    len
}

fn packed_byte_len(rows: usize, width: u8) -> usize {
    (rows * width as usize).div_ceil(8)
}

/// Append `bits` bits of `words` (LSB-first within each word) as
/// `ceil(bits/8)` bytes. The bit writer zeroes trailing bits, so the byte
/// stream is deterministic.
fn put_bits(buf: &mut Vec<u8>, words: &[u64], bits: u64) {
    let nbytes = (bits as usize).div_ceil(8);
    let mut written = 0;
    for w in words {
        let raw = w.to_le_bytes();
        let take = (nbytes - written).min(8);
        buf.extend_from_slice(&raw[..take]);
        written += take;
        if written == nbytes {
            break;
        }
    }
}

/// Read `ceil(bits/8)` bytes back into LSB-first words.
fn take_bits(r: &mut WireReader<'_>, bits: u64, what: &str) -> Result<Vec<u64>> {
    let nbytes = usize::try_from(bits.div_ceil(8))
        .map_err(|_| QuokkaError::Storage(format!("wire: absurd bit length {bits}")))?;
    let raw = r.take(nbytes, what)?;
    let mut words = vec![0u64; nbytes.div_ceil(8)];
    for (i, &b) in raw.iter().enumerate() {
        words[i / 8] |= (b as u64) << (8 * (i % 8));
    }
    Ok(words)
}

/// Append one column's payload (encoding tag + bytes) to `buf`.
///
/// Already-encoded columns ship natively — no decode/re-encode at the
/// boundary. Plain columns are opportunistically compressed when that is
/// strictly smaller: Int64/Date bit-pack, Float64 XOR-compresses, Bool is
/// always bit-packed. The choice is deterministic, so re-encoding a decoded
/// frame reproduces the exact bytes.
pub(crate) fn encode_column_payload(col: &Column, buf: &mut Vec<u8>) {
    match col {
        Column::Int64(v) => {
            let p = PackedIntColumn::from_values(PackedLogical::Int64, v);
            if 8 + 1 + packed_byte_len(v.len(), p.width) < v.len() * 8 {
                put_packed(buf, &p);
            } else {
                put_u8(buf, ENC_PLAIN);
                for x in v {
                    put_i64(buf, *x);
                }
            }
        }
        Column::Date(v) => {
            let as_i64: Vec<i64> = v.iter().map(|&x| x as i64).collect();
            let p = PackedIntColumn::from_values(PackedLogical::Date, &as_i64);
            if 8 + 1 + packed_byte_len(v.len(), p.width) < v.len() * 4 {
                put_packed(buf, &p);
            } else {
                put_u8(buf, ENC_PLAIN);
                for x in v {
                    put_i32(buf, *x);
                }
            }
        }
        Column::Float64(v) => {
            let plain_len = v.len() * 8;
            let x = XorFloatColumn::from_values(v);
            let xor_len = 8 + (x.bit_len() as usize).div_ceil(8);
            let scaled = scaled_ints(v);
            let scaled_len = scaled
                .as_ref()
                .map(|(_, p)| 1 + 8 + 1 + packed_byte_len(p.len(), p.width))
                .unwrap_or(usize::MAX);
            // Deterministic choice (it depends only on the values), so
            // re-encoding a decoded frame reproduces the exact bytes.
            if scaled_len < xor_len.min(plain_len) {
                let (exp, p) = scaled.expect("scaled_len came from Some");
                put_u8(buf, ENC_SCALED);
                put_u8(buf, exp);
                put_i64(buf, p.base);
                put_u8(buf, p.width);
                put_bits(buf, p.words(), (p.len() * p.width as usize) as u64);
            } else if xor_len < plain_len {
                put_xor(buf, &x);
            } else {
                put_u8(buf, ENC_PLAIN);
                for f in v {
                    put_f64(buf, *f);
                }
            }
        }
        Column::Bool(v) => {
            put_u8(buf, ENC_BOOL_PACKED);
            let mut byte = 0u8;
            for (i, &b) in v.iter().enumerate() {
                byte |= (b as u8) << (i % 8);
                if i % 8 == 7 {
                    buf.push(byte);
                    byte = 0;
                }
            }
            if v.len() % 8 != 0 {
                buf.push(byte);
            }
        }
        Column::Utf8(v) => {
            put_u8(buf, ENC_PLAIN);
            for s in v {
                put_str(buf, s);
            }
        }
        Column::Dict(d) => {
            put_u8(buf, ENC_DICT);
            put_u32(buf, d.values.len() as u32);
            for s in d.values.iter() {
                put_str(buf, s);
            }
            // The code width is derived from the dictionary size on both
            // sides, so it is not stored.
            let width = d.code_width();
            let mut w = BitWriter::new();
            for &c in &d.codes {
                w.put(c as u64, width);
            }
            let (words, bits) = w.finish();
            put_bits(buf, &words, bits);
        }
        Column::Packed(p) => put_packed(buf, p),
        Column::Xor(x) => {
            // An in-memory XOR column may still ship smaller as scaled
            // decimals (integral quantities compress to a few bits each).
            let xor_len = 8 + (x.bit_len() as usize).div_ceil(8);
            let scaled = scaled_ints(&x.to_vec());
            let scaled_len = scaled
                .as_ref()
                .map(|(_, p)| 1 + 8 + 1 + packed_byte_len(p.len(), p.width))
                .unwrap_or(usize::MAX);
            // The plain-length guard keeps the choice aligned with the
            // `Float64` arm, so decode (to plain) + re-encode is byte-exact.
            if scaled_len < xor_len.min(x.len() * 8) {
                let (exp, p) = scaled.expect("scaled_len came from Some");
                put_u8(buf, ENC_SCALED);
                put_u8(buf, exp);
                put_i64(buf, p.base);
                put_u8(buf, p.width);
                put_bits(buf, p.words(), (p.len() * p.width as usize) as u64);
            } else {
                put_xor(buf, x);
            }
        }
    }
}

/// Try to represent every float exactly as `n / 10^exp` with integral `n` —
/// the shape of TPC-H monetary columns (two decimals) and integral
/// quantities, which XOR compression handles poorly. The reconstruction
/// `n as f64 / 10^exp` is checked bit-for-bit per value (so `-0.0`, NaN,
/// infinities and anything rounded by the division all fall back), and the
/// smallest workable exponent wins deterministically.
fn scaled_ints(values: &[f64]) -> Option<(u8, PackedIntColumn)> {
    if values.is_empty() {
        return None;
    }
    'exps: for (exp, factor) in [(0u8, 1.0f64), (2, 100.0)] {
        let mut ints = Vec::with_capacity(values.len());
        for &v in values {
            let n = (v * factor).round();
            // Beyond 2^53, f64 loses integer precision (also catches NaN).
            if n.is_nan() || n.abs() > 9_007_199_254_740_992.0 {
                continue 'exps;
            }
            let i = n as i64;
            if (i as f64 / factor).to_bits() != v.to_bits() {
                continue 'exps;
            }
            ints.push(i);
        }
        return Some((exp, PackedIntColumn::from_values(PackedLogical::Int64, &ints)));
    }
    None
}

fn put_packed(buf: &mut Vec<u8>, p: &PackedIntColumn) {
    put_u8(buf, ENC_PACKED);
    put_i64(buf, p.base);
    put_u8(buf, p.width);
    put_bits(buf, p.words(), (p.len() * p.width as usize) as u64);
}

fn put_xor(buf: &mut Vec<u8>, x: &XorFloatColumn) {
    put_u8(buf, ENC_XOR);
    put_u64(buf, x.bit_len());
    put_bits(buf, x.words(), x.bit_len());
}

/// Append the wire frame for one batch to `buf` (a reusable slab — this
/// never allocates a transient buffer of its own).
pub fn encode_batch_into(batch: &Batch, buf: &mut Vec<u8>) {
    buf.reserve(encoded_batch_len(batch));
    put_u32(buf, WIRE_MAGIC);
    put_u32(buf, batch.num_columns() as u32);
    put_u64(buf, batch.num_rows() as u64);
    for field in batch.schema().fields() {
        put_u8(buf, dtype_tag(field.data_type));
        put_str(buf, &field.name);
    }
    for col in batch.columns() {
        encode_column_payload(col, buf);
    }
}

/// Decode one batch frame from the reader, leaving the cursor just past it.
pub fn decode_batch_from(r: &mut WireReader<'_>) -> Result<Batch> {
    let magic = r.u32()?;
    if magic != WIRE_MAGIC {
        return Err(QuokkaError::Storage(format!("wire: bad batch magic {magic:#x}")));
    }
    let cols = r.u32()? as usize;
    let rows_raw = r.u64()?;
    let rows = usize::try_from(rows_raw)
        .map_err(|_| QuokkaError::Storage(format!("wire: absurd row count {rows_raw}")))?;
    // A corrupted count field must not size an allocation. Compressed
    // columns can legitimately carry almost no bytes per row (an all-equal
    // bit-packed column is ~9 bytes at any length), so small frames get a
    // fixed allowance instead of a strict bytes-per-row floor; anything
    // beyond both bounds is provably corrupt.
    if cols > r.remaining() || (rows > r.remaining().max(1) * 8 && rows > MAX_SMALL_FRAME_ROWS) {
        return Err(QuokkaError::Storage(format!(
            "wire: frame header claims {cols} cols x {rows} rows but only {} bytes follow",
            r.remaining()
        )));
    }
    let mut fields = Vec::with_capacity(cols);
    for _ in 0..cols {
        let dt = tag_dtype(r.u8()?)?;
        let name = r.str()?;
        fields.push(Field::new(name, dt));
    }
    let schema = Schema::new(fields);
    let mut columns = Vec::with_capacity(cols);
    for field in schema.fields() {
        columns.push(decode_column_payload(r, field.data_type, rows)?);
    }
    Batch::try_new(schema, columns)
}

/// Decode one column payload (encoding tag + bytes). Everything a frame
/// claims is validated before it is trusted: dictionary order, code ranges,
/// packed widths and value ranges, XOR stream integrity.
pub(crate) fn decode_column_payload(
    r: &mut WireReader<'_>,
    dt: DataType,
    rows: usize,
) -> Result<Column> {
    let enc = r.u8()?;
    match (enc, dt) {
        (ENC_PLAIN, _) => decode_plain_column(r, dt, rows),
        (ENC_DICT, DataType::Utf8) => decode_dict_column(r, rows),
        (ENC_PACKED, DataType::Int64) => decode_packed_column(r, PackedLogical::Int64, rows),
        (ENC_PACKED, DataType::Date) => decode_packed_column(r, PackedLogical::Date, rows),
        (ENC_XOR, DataType::Float64) => decode_xor_column(r, rows),
        (ENC_SCALED, DataType::Float64) => decode_scaled_column(r, rows),
        (ENC_BOOL_PACKED, DataType::Bool) => decode_packed_bool_column(r, rows),
        (enc, dt) => {
            Err(QuokkaError::Storage(format!("wire: encoding tag {enc} is invalid for {dt}")))
        }
    }
}

fn decode_dict_column(r: &mut WireReader<'_>, rows: usize) -> Result<Column> {
    let dict_len = r.u32()? as usize;
    if dict_len > r.remaining() {
        return Err(QuokkaError::Storage(format!(
            "wire: dictionary claims {dict_len} entries but only {} bytes follow",
            r.remaining()
        )));
    }
    if dict_len == 0 && rows > 0 {
        return Err(QuokkaError::Storage(format!("wire: empty dictionary for {rows} rows")));
    }
    let mut values = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let s = r.str()?;
        if let Some(prev) = values.last() {
            if *prev >= s {
                return Err(QuokkaError::Storage(
                    "wire: dictionary is not strictly ascending".into(),
                ));
            }
        }
        values.push(s);
    }
    let width = width_for((dict_len as u64).saturating_sub(1));
    let codes = if width == 0 {
        // Single-entry dictionary: every row is code 0, no bits on the wire.
        vec![0u32; rows]
    } else {
        let bits = rows as u64 * width as u64;
        let words = take_bits(r, bits, "dictionary codes")?;
        let mut reader = BitReader::new(&words, bits);
        let mut codes = Vec::with_capacity(rows);
        for _ in 0..rows {
            let code = reader
                .take(width)
                .ok_or_else(|| QuokkaError::Storage("wire: truncated dictionary codes".into()))?;
            if code >= dict_len as u64 {
                return Err(QuokkaError::Storage(format!(
                    "wire: dictionary code {code} out of range (dictionary has {dict_len} entries)"
                )));
            }
            codes.push(code as u32);
        }
        codes
    };
    Ok(Column::Dict(DictColumn::from_parts(codes, Arc::new(values))))
}

fn decode_packed_column(
    r: &mut WireReader<'_>,
    logical: PackedLogical,
    rows: usize,
) -> Result<Column> {
    let base = r.i64()?;
    let width = r.u8()?;
    if width > 64 {
        return Err(QuokkaError::Storage(format!("wire: packed width {width} exceeds 64")));
    }
    let bits = rows as u64 * width as u64;
    let words = take_bits(r, bits, "packed values")?;
    // Walk the deltas once so out-of-range values surface as typed errors
    // instead of silently wrapping at decode time. Width 0 means all rows
    // equal `base`, so only `base` itself needs the range check.
    let (lo, hi) = match logical {
        PackedLogical::Int64 => (i64::MIN as i128, i64::MAX as i128),
        PackedLogical::Date => (i32::MIN as i128, i32::MAX as i128),
    };
    let mut reader = BitReader::new(&words, bits);
    let checks = if width == 0 { (rows > 0) as usize } else { rows };
    for _ in 0..checks {
        let delta = reader
            .take(width)
            .ok_or_else(|| QuokkaError::Storage("wire: truncated packed values".into()))?;
        let value = base as i128 + delta as i128;
        if value < lo || value > hi {
            return Err(QuokkaError::Storage(format!(
                "wire: packed value {value} out of range for {logical:?}"
            )));
        }
    }
    Ok(Column::Packed(PackedIntColumn::from_parts(logical, base, width, rows, words)))
}

/// Decode scaled-decimal floats: bit-packed integers divided by `10^exp`.
/// Produces a plain `Float64` column — the scaling exists only on the wire.
fn decode_scaled_column(r: &mut WireReader<'_>, rows: usize) -> Result<Column> {
    let exp = r.u8()?;
    if exp > 18 {
        return Err(QuokkaError::Storage(format!("wire: scaled exponent {exp} exceeds 18")));
    }
    let factor = 10f64.powi(exp as i32);
    let base = r.i64()?;
    let width = r.u8()?;
    if width > 64 {
        return Err(QuokkaError::Storage(format!("wire: scaled width {width} exceeds 64")));
    }
    let bits = rows as u64 * width as u64;
    let words = take_bits(r, bits, "scaled values")?;
    let mut reader = BitReader::new(&words, bits);
    let mut out = Vec::with_capacity(rows);
    for _ in 0..rows {
        let delta = reader
            .take(width)
            .ok_or_else(|| QuokkaError::Storage("wire: truncated scaled values".into()))?;
        let value = base as i128 + delta as i128;
        if value < i64::MIN as i128 || value > i64::MAX as i128 {
            return Err(QuokkaError::Storage(format!(
                "wire: scaled value {value} out of range for Int64"
            )));
        }
        out.push(value as i64 as f64 / factor);
    }
    Ok(Column::Float64(out))
}

fn decode_xor_column(r: &mut WireReader<'_>, rows: usize) -> Result<Column> {
    let bits = r.u64()?;
    if bits.div_ceil(8) > r.remaining() as u64 {
        return Err(QuokkaError::Storage(format!(
            "wire: xor column claims {bits} bits but only {} bytes follow",
            r.remaining()
        )));
    }
    let words = take_bits(r, bits, "xor stream")?;
    let col = XorFloatColumn::from_parts(rows, bits, words);
    if !col.validate() {
        return Err(QuokkaError::Storage("wire: xor stream does not decode cleanly".into()));
    }
    Ok(Column::Xor(col))
}

fn decode_packed_bool_column(r: &mut WireReader<'_>, rows: usize) -> Result<Column> {
    let raw = r.take(rows.div_ceil(8), "packed bools")?;
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        out.push(raw[i / 8] >> (i % 8) & 1 == 1);
    }
    // Trailing pad bits must be zero so decode + re-encode is byte-exact.
    if !rows.is_multiple_of(8) && raw[rows / 8] >> (rows % 8) != 0 {
        return Err(QuokkaError::Storage("wire: nonzero pad bits in packed bools".into()));
    }
    Ok(Column::Bool(out))
}

fn decode_plain_column(r: &mut WireReader<'_>, dt: DataType, rows: usize) -> Result<Column> {
    Ok(match dt {
        DataType::Int64 => {
            let raw = r.take(checked_size(rows, 8)?, "Int64 column")?;
            Column::Int64(
                raw.chunks_exact(8)
                    .map(|c| i64::from_be_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            )
        }
        DataType::Float64 => {
            let raw = r.take(checked_size(rows, 8)?, "Float64 column")?;
            Column::Float64(
                raw.chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_be_bytes(c.try_into().expect("8 bytes"))))
                    .collect(),
            )
        }
        DataType::Date => {
            let raw = r.take(checked_size(rows, 4)?, "Date column")?;
            Column::Date(
                raw.chunks_exact(4)
                    .map(|c| i32::from_be_bytes(c.try_into().expect("4 bytes")))
                    .collect(),
            )
        }
        DataType::Bool => {
            let mut out = Vec::with_capacity(rows);
            for _ in 0..rows {
                out.push(r.bool()?);
            }
            Column::Bool(out)
        }
        DataType::Utf8 => {
            let mut out = Vec::with_capacity(rows.min(r.remaining() / 4 + 1));
            for _ in 0..rows {
                out.push(r.str()?);
            }
            Column::Utf8(out)
        }
    })
}

fn checked_size(rows: usize, width: usize) -> Result<usize> {
    rows.checked_mul(width)
        .ok_or_else(|| QuokkaError::Storage(format!("wire: column size overflow ({rows} rows)")))
}

/// Decode a standalone batch frame; the buffer must contain exactly one.
pub fn decode_batch(data: &[u8]) -> Result<Batch> {
    let mut r = WireReader::new(data);
    let batch = decode_batch_from(&mut r)?;
    r.expect_end()?;
    Ok(batch)
}

/// Append the wire frame for a slice of batches (one shuffle push) to `buf`.
pub fn encode_batches_into(batches: &[Batch], buf: &mut Vec<u8>) {
    put_u32(buf, batches.len() as u32);
    for b in batches {
        encode_batch_into(b, buf);
    }
}

/// Decode a multi-batch frame from the reader.
pub fn decode_batches_from(r: &mut WireReader<'_>) -> Result<Vec<Batch>> {
    let count = r.u32()? as usize;
    if count > r.remaining().max(1) {
        return Err(QuokkaError::Storage(format!(
            "wire: frame claims {count} batches but only {} bytes follow",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_batch_from(r)?);
    }
    Ok(out)
}

/// Decode a standalone multi-batch frame; the buffer must contain exactly one.
pub fn decode_batches(data: &[u8]) -> Result<Vec<Batch>> {
    let mut r = WireReader::new(data);
    let batches = decode_batches_from(&mut r)?;
    r.expect_end()?;
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::ScalarValue;

    fn sample() -> Batch {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("price", DataType::Float64),
            ("flag", DataType::Bool),
            ("ship", DataType::Date),
            ("comment", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![i64::MIN, -5, i64::MAX]),
                Column::Float64(vec![f64::NAN, -0.0, f64::INFINITY]),
                Column::Bool(vec![true, false, true]),
                Column::Date(vec![100, 0, -30]),
                Column::Utf8(vec!["hello".into(), "".into(), "unicode ✓".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let b = sample();
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        assert!(buf.len() <= encoded_batch_len(&b), "encoded_batch_len is an upper bound");
        let decoded = decode_batch(&buf).unwrap();
        // NaN != NaN under PartialEq, so compare the float column by bits.
        assert_eq!(decoded.schema(), b.schema());
        let (orig, got) =
            (b.columns()[1].to_f64_vec().unwrap(), decoded.columns()[1].to_f64_vec().unwrap());
        assert_eq!(
            orig.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(decoded.value(2, 4), ScalarValue::Utf8("unicode ✓".into()));
        // Re-encoding the decoded batch reproduces the exact bytes.
        let mut again = Vec::new();
        encode_batch_into(&decoded, &mut again);
        assert_eq!(buf, again);
    }

    #[test]
    fn encoded_columns_ship_natively() {
        let schema = Schema::from_pairs(&[
            ("mode", DataType::Utf8),
            ("qty", DataType::Int64),
            ("disc", DataType::Float64),
            ("day", DataType::Date),
        ]);
        let n = 64usize;
        let plain = Batch::try_new(
            schema.clone(),
            vec![
                Column::Utf8((0..n).map(|i| ["AIR", "MAIL", "SHIP"][i % 3].to_string()).collect()),
                Column::Int64((0..n).map(|i| (i % 50) as i64 + 1).collect()),
                Column::Float64((0..n).map(|i| (i % 8) as f64 * 0.125).collect()),
                Column::Date((0..n).map(|i| 9131 + (i % 30) as i32).collect()),
            ],
        )
        .unwrap();
        let encoded =
            Batch::try_new(schema, plain.columns().iter().map(Column::encode_auto).collect())
                .unwrap();
        assert!(encoded.columns().iter().all(Column::is_encoded));

        let mut buf = Vec::new();
        encode_batch_into(&encoded, &mut buf);
        assert!(buf.len() <= encoded_batch_len(&encoded));
        let decoded = decode_batch(&buf).unwrap();
        // The frame preserves the encodings and the logical content.
        assert!(decoded.columns().iter().all(Column::is_encoded));
        assert_eq!(&decoded, &plain);
        // Native pass-through: decode + re-encode is byte-exact.
        let mut again = Vec::new();
        encode_batch_into(&decoded, &mut again);
        assert_eq!(buf, again);
        // And the encoded frame is smaller than the plain frame.
        let mut plain_buf = Vec::new();
        encode_batch_into(&plain, &mut plain_buf);
        assert!(buf.len() < plain_buf.len(), "{} vs {}", buf.len(), plain_buf.len());
    }

    #[test]
    fn decimal_floats_ship_as_scaled_integers() {
        let schema = Schema::from_pairs(&[("price", DataType::Float64)]);
        // Two-decimal monetary values: XOR-incompressible, scaled-friendly.
        let prices: Vec<f64> = (0..512).map(|i| (90_000 + 37 * i) as f64 / 100.0).collect();
        let b = Batch::try_new(schema.clone(), vec![Column::Float64(prices.clone())]).unwrap();
        let mut frame = Vec::new();
        encode_batch_into(&b, &mut frame);
        assert!(
            frame.len() < 512 * 3,
            "scaled encoding should need ~2 bytes/value, got {} bytes",
            frame.len()
        );
        let decoded = decode_batch(&frame).unwrap();
        assert_eq!(decoded, b, "scaled round-trip changed the values");
        let mut again = Vec::new();
        encode_batch_into(&decoded, &mut again);
        assert_eq!(frame, again, "scaled re-encode must be byte-exact");

        // Integral quantities win the smaller exponent even when the column
        // arrives XOR-encoded in memory.
        let quantities: Vec<f64> = (0..512).map(|i| (1 + i % 50) as f64).collect();
        let xor = Column::Xor(XorFloatColumn::from_values(&quantities));
        let b = Batch::try_new(schema, vec![xor]).unwrap();
        frame.clear();
        encode_batch_into(&b, &mut frame);
        assert!(frame.len() < 512, "integral floats should pack to ~6 bits/value");
        let decoded = decode_batch(&frame).unwrap();
        assert_eq!(decoded, b);
        again.clear();
        encode_batch_into(&decoded, &mut again);
        assert_eq!(frame, again);

        // Values scaling cannot represent exactly (-0.0, NaN, irrationals)
        // fall back and still round-trip bit-exactly.
        let schema = Schema::from_pairs(&[("f", DataType::Float64)]);
        let b = Batch::try_new(
            schema,
            vec![Column::Float64(vec![-0.0, f64::NAN, std::f64::consts::PI, 1.0 / 3.0])],
        )
        .unwrap();
        frame.clear();
        encode_batch_into(&b, &mut frame);
        let decoded = decode_batch(&frame).unwrap();
        let bits: Vec<u64> =
            decoded.columns()[0].to_f64_vec().unwrap().iter().map(|f| f.to_bits()).collect();
        let expected: Vec<u64> =
            b.columns()[0].to_f64_vec().unwrap().iter().map(|f| f.to_bits()).collect();
        assert_eq!(bits, expected);
    }

    #[test]
    fn slab_reuse_appends_cleanly() {
        let b = sample();
        let mut slab = Vec::with_capacity(1024);
        encode_batch_into(&b, &mut slab);
        let first = slab.clone();
        slab.clear();
        encode_batch_into(&b, &mut slab);
        assert_eq!(slab, first);
        // Multi-frame: two batches written back to back decode in sequence.
        slab.clear();
        encode_batches_into(&[b.clone(), b.slice(0, 1)], &mut slab);
        let decoded = decode_batches(&slab).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[1].num_rows(), 1);
    }

    #[test]
    fn empty_batches_and_columns() {
        let b = Batch::empty(sample().schema().clone());
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        let decoded = decode_batch(&buf).unwrap();
        assert_eq!(decoded.num_rows(), 0);
        assert_eq!(decoded.schema(), b.schema());
        buf.clear();
        encode_batches_into(&[], &mut buf);
        assert!(decode_batches(&buf).unwrap().is_empty());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let b = sample();
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        for cut in 0..buf.len() {
            match decode_batch(&buf[..cut]) {
                Err(QuokkaError::Storage(_)) => {}
                other => panic!("truncation at {cut} produced {other:?}"),
            }
        }
    }

    #[test]
    fn corruption_is_rejected_not_panicked() {
        let b = sample();
        let mut buf = Vec::new();
        encode_batch_into(&b, &mut buf);
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Absurd row count must error before allocating.
        let mut bad = buf.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_be_bytes());
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Bad dtype tag.
        let mut bad = buf.clone();
        bad[16] = 99;
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Trailing garbage is rejected by the standalone decoder.
        let mut bad = buf.clone();
        bad.push(0);
        assert!(matches!(decode_batch(&bad), Err(QuokkaError::Storage(_))));
        // Any single-byte corruption must decode cleanly or error — never
        // panic (bad encoding tags, dictionary order, code ranges, pad bits).
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            match decode_batch(&bad) {
                Ok(_) | Err(QuokkaError::Storage(_)) => {}
                other => panic!("corruption at {i} produced {other:?}"),
            }
        }
    }

    #[test]
    fn reader_primitives_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX);
        put_i32(&mut buf, -4);
        put_i64(&mut buf, i64::MIN);
        put_f64(&mut buf, -0.0);
        put_bool(&mut buf, true);
        put_bytes(&mut buf, b"raw");
        put_str(&mut buf, "text ✓");
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i32().unwrap(), -4);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"raw");
        assert_eq!(r.str().unwrap(), "text ✓");
        r.expect_end().unwrap();
        assert!(WireReader::new(&[]).u8().is_err());
    }
}
