//! The simulated data plane.
//!
//! In the paper's implementation every worker machine runs an Apache Arrow
//! Flight server; producer tasks push their output slices directly to the
//! flight servers of all downstream consumer channels (§IV-A). This crate
//! reproduces that push-based shuffle in-process:
//!
//! * [`flight::FlightServer`] — one worker's inbox of pushed partition
//!   slices, keyed by the consuming channel and the producing task. Killing
//!   a worker drops its inbox (those cached slices are part of what recovery
//!   must reconstruct — Fig. 5's pink boxes).
//! * [`plane::DataPlane`] — the cluster-wide registry of flight servers plus
//!   the network cost model: pushes between different workers are charged to
//!   the network path and to the `shuffle_bytes` metric.

pub mod flight;
pub mod plane;

pub use flight::{FlightServer, SliceKey};
pub use plane::DataPlane;
