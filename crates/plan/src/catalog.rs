//! Table providers.

use parking_lot::RwLock;
use quokka_batch::{Batch, Schema};
use quokka_common::{QuokkaError, Result};
use std::collections::BTreeMap;

/// A source of base tables.
///
/// Both the reference executor and the distributed engine resolve `Scan`
/// nodes through this trait; the distributed engine additionally splits each
/// table into input partitions served from the durable object store.
pub trait Catalog: Send + Sync {
    /// Schema of the named table.
    fn table_schema(&self, name: &str) -> Result<Schema>;
    /// All data of the named table, as batches.
    fn table_batches(&self, name: &str) -> Result<Vec<Batch>>;
    /// Names of every registered table.
    fn table_names(&self) -> Vec<String>;
    /// Total number of rows in the named table.
    fn table_rows(&self, name: &str) -> Result<usize> {
        Ok(self.table_batches(name)?.iter().map(Batch::num_rows).sum())
    }
}

/// A simple in-memory catalog.
#[derive(Debug, Default)]
pub struct MemoryCatalog {
    tables: RwLock<BTreeMap<String, (Schema, Vec<Batch>)>>,
}

impl MemoryCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&self, name: impl Into<String>, schema: Schema, batches: Vec<Batch>) {
        self.tables.write().insert(name.into(), (schema, batches));
    }
}

impl Catalog for MemoryCatalog {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.tables
            .read()
            .get(name)
            .map(|(s, _)| s.clone())
            .ok_or_else(|| QuokkaError::PlanError(format!("unknown table '{name}'")))
    }

    fn table_batches(&self, name: &str) -> Result<Vec<Batch>> {
        self.tables
            .read()
            .get(name)
            .map(|(_, b)| b.clone())
            .ok_or_else(|| QuokkaError::PlanError(format!("unknown table '{name}'")))
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{Column, DataType};

    #[test]
    fn register_and_lookup() {
        let catalog = MemoryCatalog::new();
        let schema = Schema::from_pairs(&[("id", DataType::Int64)]);
        let batch = Batch::try_new(schema.clone(), vec![Column::Int64(vec![1, 2, 3])]).unwrap();
        catalog.register("t", schema.clone(), vec![batch.clone(), batch]);
        assert_eq!(catalog.table_schema("t").unwrap(), schema);
        assert_eq!(catalog.table_batches("t").unwrap().len(), 2);
        assert_eq!(catalog.table_rows("t").unwrap(), 6);
        assert_eq!(catalog.table_names(), vec!["t".to_string()]);
        assert!(catalog.table_schema("missing").is_err());
        assert!(catalog.table_batches("missing").is_err());
    }
}
