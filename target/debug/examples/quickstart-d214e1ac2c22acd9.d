/root/repo/target/debug/examples/quickstart-d214e1ac2c22acd9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d214e1ac2c22acd9: examples/quickstart.rs

examples/quickstart.rs:
