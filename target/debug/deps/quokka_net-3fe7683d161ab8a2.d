/root/repo/target/debug/deps/quokka_net-3fe7683d161ab8a2.d: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/debug/deps/libquokka_net-3fe7683d161ab8a2.rlib: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

/root/repo/target/debug/deps/libquokka_net-3fe7683d161ab8a2.rmeta: crates/net/src/lib.rs crates/net/src/flight.rs crates/net/src/plane.rs

crates/net/src/lib.rs:
crates/net/src/flight.rs:
crates/net/src/plane.rs:
