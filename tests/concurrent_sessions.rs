//! Concurrent queries on one shared `QuokkaSession`.
//!
//! The session is the intended unit of sharing: the catalog lives behind an
//! `Arc`, every execution builds its own cluster state, and per-query
//! metrics must not bleed between concurrent runs. These tests hammer one
//! session from many threads with a mix of frontends (DataFrame, SQL,
//! hand-built plans), with and without fault injection, and assert
//! result correctness plus metrics isolation for every query.

use quokka::dataframe::tpch::query as df_query;
use quokka::tpch::queries::sql::sql_text;
use quokka::{
    same_result, AdmissionConfig, Batch, EngineConfig, FailureSpec, QueryMetrics, QuokkaError,
    QuokkaSession,
};
use std::sync::Arc;

/// The mixed workload: every frontend, several plan shapes.
const QUERIES: [usize; 6] = [1, 3, 6, 10, 12, 14];

fn expected_results(session: &QuokkaSession) -> Vec<(usize, Batch)> {
    QUERIES
        .iter()
        .map(|&q| (q, session.tpch_query(q).unwrap().collect_reference().unwrap()))
        .collect()
}

/// Run query `q` through a frontend chosen by `thread_id`, so concurrent
/// threads exercise different entry points against the same session.
fn run_query(
    session: &QuokkaSession,
    q: usize,
    thread_id: usize,
    config: Option<&EngineConfig>,
) -> (Batch, QueryMetrics) {
    let outcome = match thread_id % 3 {
        0 => {
            let handle = session.tpch_query(q).unwrap();
            match config {
                Some(c) => handle.collect_with(c).unwrap(),
                None => handle.collect().unwrap(),
            }
        }
        1 => {
            let handle = session.sql(sql_text(q).unwrap()).unwrap();
            match config {
                Some(c) => handle.collect_with(c).unwrap(),
                None => handle.collect().unwrap(),
            }
        }
        _ => {
            let frame = df_query(session, q).unwrap();
            match config {
                Some(c) => frame.collect_with(c).unwrap(),
                None => frame.collect().unwrap(),
            }
        }
    };
    (outcome.batch, outcome.metrics)
}

#[test]
fn mixed_tpch_queries_run_concurrently_on_one_session() {
    let session = Arc::new(QuokkaSession::tpch(0.002, 2).unwrap());
    let expected = Arc::new(expected_results(&session));

    let handles: Vec<_> = (0..QUERIES.len())
        .map(|i| {
            let session = Arc::clone(&session);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let (q, oracle) = &expected[i];
                let (batch, metrics) = run_query(&session, *q, i, None);
                assert!(
                    same_result(&batch, oracle),
                    "Q{q} diverged from the oracle under concurrency (thread {i})"
                );
                // Metrics isolation: each execution's counters describe
                // exactly its own result, not a neighbour's.
                assert_eq!(
                    metrics.output_rows,
                    batch.num_rows() as u64,
                    "Q{q}: output_rows leaked across concurrent queries"
                );
                assert_eq!(metrics.failures, 0, "Q{q}: phantom failure recorded");
                assert!(metrics.tasks_executed > 0);
                metrics
            })
        })
        .collect();

    let all_metrics: Vec<QueryMetrics> =
        handles.into_iter().map(|h| h.join().expect("query thread panicked")).collect();
    // Distinct queries must produce distinct task counts somewhere — a
    // shared/global metrics registry would make them identical.
    let distinct: std::collections::BTreeSet<u64> =
        all_metrics.iter().map(|m| m.tasks_executed).collect();
    assert!(distinct.len() > 1, "per-query task counts look shared: {distinct:?}");
}

#[test]
fn concurrent_queries_with_fault_injection_stay_isolated() {
    let session = Arc::new(QuokkaSession::tpch(0.002, 3).unwrap());
    let expected = Arc::new(expected_results(&session));
    let faulty = EngineConfig::quokka(3).with_failure(FailureSpec::halfway(1));

    let handles: Vec<_> = (0..QUERIES.len())
        .map(|i| {
            let session = Arc::clone(&session);
            let expected = Arc::clone(&expected);
            let faulty = faulty.clone();
            std::thread::spawn(move || {
                let (q, oracle) = &expected[i];
                // Odd threads run under fault injection, even threads run
                // clean — on the same shared session, at the same time.
                let config = if i % 2 == 1 { Some(&faulty) } else { None };
                let (batch, metrics) = run_query(&session, *q, i, config);
                assert!(
                    same_result(&batch, oracle),
                    "Q{q} diverged under concurrent fault injection (thread {i})"
                );
                if i % 2 == 1 {
                    assert_eq!(
                        metrics.failures, 1,
                        "Q{q}: the injected failure must appear in its own metrics"
                    );
                    assert!(metrics.recovery_tasks > 0, "Q{q}: recovery did not replay");
                } else {
                    // Cross-talk check: a clean query must never observe a
                    // neighbour's injected failure or recovery work.
                    assert_eq!(metrics.failures, 0, "Q{q}: failure leaked from another query");
                    assert_eq!(metrics.recovery_tasks, 0, "Q{q}: recovery leaked");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("query thread panicked");
    }
}

/// Overload on a shared session: with both admission slots held and the
/// bounded queue saturated, late arrivals get a typed `Overloaded` error —
/// never a hang — and every admitted query still streams its exact result
/// (no batch lost to, or duplicated by, the queueing machinery).
#[test]
fn overloaded_session_rejects_excess_queries_without_losing_results() {
    let session = Arc::new(
        QuokkaSession::tpch(0.002, 2)
            .unwrap()
            .with_config(EngineConfig::quokka(2).with_admission(AdmissionConfig::bounded(2, 2))),
    );
    let expected = Arc::new(session.tpch_query(6).unwrap().collect_reference().unwrap());

    // Pin both admission slots so the eight client threads below contend
    // deterministically: the first two to arrive occupy the queue, the
    // other six must be turned away immediately.
    let slots =
        vec![session.admission().acquire(0).unwrap(), session.admission().acquire(0).unwrap()];

    let clients = 8;
    let threads: Vec<_> = (0..clients)
        .map(|i| {
            let session = Arc::clone(&session);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                // Mixed frontends: even threads collect via SQL, odd threads
                // stream via the DataFrame API. Both must surface the same
                // typed rejection.
                let result = if i % 2 == 0 {
                    session
                        .sql(sql_text(6).unwrap())
                        .unwrap()
                        .collect()
                        .map(|outcome| outcome.batch)
                } else {
                    df_query(&session, 6).unwrap().stream().and_then(|mut stream| {
                        let mut batches = Vec::new();
                        while let Some(batch) = stream.next_batch()? {
                            batches.push(batch);
                        }
                        Batch::concat(&batches)
                    })
                };
                match result {
                    Ok(batch) => {
                        assert!(
                            same_result(&batch, &expected),
                            "thread {i}: an admitted query lost or duplicated batches"
                        );
                        true
                    }
                    Err(QuokkaError::Overloaded { queued, queue_limit, .. }) => {
                        assert_eq!(
                            (queued, queue_limit),
                            (2, 2),
                            "thread {i}: rejection must report a saturated queue"
                        );
                        false
                    }
                    Err(other) => panic!("thread {i}: expected Overloaded, got {other}"),
                }
            })
        })
        .collect();

    // Every client has resolved once two are parked in the queue and six
    // were rejected; only then release the pinned slots.
    while session.admission().queue_depth() < 2
        || session.admission().stats().rejected < (clients - 2) as u64
    {
        std::thread::yield_now();
    }
    drop(slots);

    let completed = threads
        .into_iter()
        .map(|t| t.join().expect("client panicked"))
        .filter(|&admitted| admitted)
        .count();
    assert_eq!(completed, 2, "exactly the queued clients must complete");
    let stats = session.admission().stats();
    assert_eq!(stats.rejected, (clients - 2) as u64);
    assert_eq!(stats.peak_running, 2, "pinned slots bound concurrency");
    assert_eq!(session.admission().running(), 0, "drained session must hold no slots");
    assert_eq!(session.admission().queue_depth(), 0);
    // The session is healthy after the storm: a fresh query just runs.
    let after = session.run_tpch(6).unwrap();
    assert!(same_result(&after.batch, &expected));
}

#[test]
fn cloned_sessions_share_the_catalog_but_not_the_config() {
    let base = QuokkaSession::tpch(0.002, 2).unwrap();
    let tuned = base.clone().with_config(EngineConfig::quokka(4));
    // Same catalog behind both...
    assert_eq!(base.table_names(), tuned.table_names());
    // ...but independent configurations.
    assert_eq!(base.config().cluster.workers, 2);
    assert_eq!(tuned.config().cluster.workers, 4);
    let a = base.run_tpch(6).unwrap();
    let b = tuned.run_tpch(6).unwrap();
    assert!(same_result(&a.batch, &b.batch));
}

#[test]
fn concurrent_streams_interleave_without_crosstalk() {
    let session = Arc::new(QuokkaSession::tpch(0.002, 2).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let session = Arc::clone(&session);
            std::thread::spawn(move || {
                let q = [1, 6, 12, 14][i];
                let frame = df_query(&session, q).unwrap();
                let expected = frame.collect_reference().unwrap();
                let mut stream = frame.stream().unwrap();
                let mut batches = Vec::new();
                while let Some(batch) = stream.next_batch().unwrap() {
                    assert_eq!(
                        batch.schema(),
                        expected.schema(),
                        "Q{q}: a foreign query's batch leaked into this stream"
                    );
                    batches.push(batch);
                }
                let streamed = Batch::concat(&batches).unwrap();
                assert!(same_result(&streamed, &expected), "Q{q} diverged while streaming");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("stream thread panicked");
    }
}
