/root/repo/target/debug/deps/fig7-7127877a1400e7aa.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/libfig7-7127877a1400e7aa.rmeta: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
