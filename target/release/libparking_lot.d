/root/repo/target/release/libparking_lot.rlib: /root/repo/crates/shims/parking_lot/src/lib.rs
