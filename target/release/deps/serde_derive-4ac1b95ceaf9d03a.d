/root/repo/target/release/deps/serde_derive-4ac1b95ceaf9d03a.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-4ac1b95ceaf9d03a.so: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
