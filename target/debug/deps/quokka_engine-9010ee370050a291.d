/root/repo/target/debug/deps/quokka_engine-9010ee370050a291.d: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_engine-9010ee370050a291.rmeta: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/layout.rs:
crates/engine/src/recovery.rs:
crates/engine/src/runtime.rs:
crates/engine/src/worker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
