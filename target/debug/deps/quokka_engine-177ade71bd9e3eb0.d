/root/repo/target/debug/deps/quokka_engine-177ade71bd9e3eb0.d: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/debug/deps/libquokka_engine-177ade71bd9e3eb0.rlib: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/debug/deps/libquokka_engine-177ade71bd9e3eb0.rmeta: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

crates/engine/src/lib.rs:
crates/engine/src/layout.rs:
crates/engine/src/recovery.rs:
crates/engine/src/runtime.rs:
crates/engine/src/worker.rs:
