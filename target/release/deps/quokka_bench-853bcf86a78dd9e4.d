/root/repo/target/release/deps/quokka_bench-853bcf86a78dd9e4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libquokka_bench-853bcf86a78dd9e4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libquokka_bench-853bcf86a78dd9e4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
