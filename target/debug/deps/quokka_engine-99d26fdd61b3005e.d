/root/repo/target/debug/deps/quokka_engine-99d26fdd61b3005e.d: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

/root/repo/target/debug/deps/libquokka_engine-99d26fdd61b3005e.rmeta: crates/engine/src/lib.rs crates/engine/src/layout.rs crates/engine/src/recovery.rs crates/engine/src/runtime.rs crates/engine/src/worker.rs

crates/engine/src/lib.rs:
crates/engine/src/layout.rs:
crates/engine/src/recovery.rs:
crates/engine/src/runtime.rs:
crates/engine/src/worker.rs:
