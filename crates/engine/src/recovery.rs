//! The coordinator: chaos injection, failure detection and Algorithm 2.
//!
//! The coordinator never talks to TaskManagers directly (§IV-B/C): every
//! action is an edit of the GCS. On failure it raises the pause barrier,
//! reconciles the GCS to a consistent state — rewinding the channels that
//! lived on the failed worker, scheduling replay of the partitions they need
//! that still exist on live workers' disks (or in the durable store under
//! the spooling strategy), and rewinding producers whose partitions are
//! gone — then lowers the barrier and lets the TaskManagers carry on.
//! Rewound stateful channels of different stages land on different workers:
//! pipeline-parallel recovery (§III-B).
//!
//! Beyond deaths injected by the chaos plan, the coordinator runs a
//! heartbeat-based **failure detector**: every stage thread bumps its
//! worker's liveness counter on every poll, and a worker whose counter
//! stalls for longer than the configured suspicion timeout is *suspected*.
//! Suspicion is conservative — the worker is not killed (it may merely be
//! partitioned or slow); its channels are reconciled onto trusted workers,
//! and a compare-and-swap guard in the task commit ensures a suspect that
//! was alive all along cannot clobber the reconciled state. The coordinator
//! also enforces the per-query deadline (`EngineConfig::query_timeout`) and
//! repairs partitions reported lost by replay reads (deeper lineage replay).

use crate::chaos::ChaosEngine;
use crate::worker::Services;
use quokka_common::ids::{ChannelAddr, WorkerId};
use quokka_common::{QuokkaError, Result};
use quokka_gcs::tables::{ChannelState, ReplayRequest, TaskEntry};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the coordinator's supervision of one query ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorOutcome {
    /// The sink stage finished; every result batch has been streamed.
    Completed,
    /// The query failed with an unrecoverable (typed) error.
    Failed(QuokkaError),
    /// A worker died and the configured strategy has no intra-query
    /// recovery; the caller should restart the query on the surviving
    /// workers (the paper's restart baseline).
    NeedsRestart { failed: Vec<WorkerId> },
}

/// Per-worker failure-detector bookkeeping.
struct DetectorEntry {
    last_count: u64,
    last_change: Instant,
    /// Consecutive suspicions without a heartbeat in between. The first
    /// strike reconciles conservatively (the worker may be partitioned);
    /// a worker still silent after that is declared dead — the only way a
    /// worker whose *process* was killed (process mode) ever gets its
    /// lost backups converted into producer rewinds.
    strikes: u32,
}

/// The coordinator for one query execution.
pub struct Coordinator {
    services: Arc<Services>,
    /// Abort the query if it makes no progress for this long (defensive
    /// watchdog so a scheduling bug cannot hang the benchmark harness).
    /// Comes from `EngineConfig::watchdog`; `QUOKKA_WATCHDOG_SECS` is
    /// resolved into the config — loudly rejecting malformed values — before
    /// the coordinator is built.
    pub watchdog: Duration,
}

impl Coordinator {
    pub fn new(services: Arc<Services>) -> Self {
        let watchdog = services.config.watchdog;
        Coordinator { services, watchdog }
    }

    /// Fraction of all input splits consumed so far — the progress measure
    /// used to decide when to inject a failure ("a worker machine is killed
    /// halfway through the query", §V-D).
    pub fn progress(&self) -> f64 {
        let total = self.services.layout.total_splits();
        if total == 0 {
            return 1.0;
        }
        let mut consumed = 0u64;
        for stage in &self.services.layout.graph.stages {
            if !stage.is_scan() {
                continue;
            }
            for channel in self.services.layout.channels_of(stage.id) {
                if let Some(state) = self.services.gcs.get_channel(channel) {
                    consumed += state.splits_consumed as u64;
                }
            }
        }
        consumed as f64 / total as f64
    }

    fn sink_done(&self) -> bool {
        self.services
            .layout
            .channels_of(self.services.layout.sink())
            .iter()
            .all(|&c| self.services.gcs.get_channel(c).map(|s| s.done).unwrap_or(false))
    }

    /// Supervise the query until completion, failure or restart.
    pub fn run(&self) -> CoordinatorOutcome {
        let mut chaos = ChaosEngine::new(&self.services);
        let mut injected: Vec<WorkerId> = Vec::new();
        let heartbeat = self.services.config.cluster.heartbeat_interval;
        let suspicion_timeout = self.services.config.cluster.suspicion_timeout;
        let deadline = self.services.config.query_timeout;
        let start = Instant::now();
        let mut last_progress = (0u64, Instant::now());
        // Process mode: when the sinks look done but emissions are missing,
        // when the wait for them started (see the completion check below).
        let mut sink_wait: Option<Instant> = None;
        let mut detector: Vec<DetectorEntry> = (0..self.services.layout.workers())
            .map(|w| DetectorEntry {
                last_count: self.services.heartbeat_count(w),
                last_change: Instant::now(),
                strikes: 0,
            })
            .collect();

        loop {
            if let Some(error) = self.services.gcs.query_error() {
                return CoordinatorOutcome::Failed(QuokkaError::Internal(error));
            }
            if self.services.is_cancelled() {
                // The consuming stream was dropped; stop computing a result
                // nobody will read. Workers exit on the done flag.
                self.services.gcs.set_query_done();
                return CoordinatorOutcome::Failed(QuokkaError::Cancelled(
                    "result stream dropped".to_string(),
                ));
            }

            // Inject any chaos events whose trigger point has been reached.
            // This happens *before* the completion check: a fast query can
            // sprint from the trigger point to done within one heartbeat,
            // and an injection the configuration promised must still land
            // (killing a worker whose channels all finished is harmless —
            // recovery finds nothing to rewind). Non-kill events (suspicion,
            // lost backups, dropped/delayed pushes, stragglers) are applied
            // inside the poll; kills come back for the recovery protocol.
            let progress = self.progress();
            for worker in chaos.poll(&self.services, progress) {
                self.services.kill_worker(worker);
                injected.push(worker);
                if !self.services.config.fault.supports_intra_query_recovery() {
                    self.services.gcs.set_query_error(
                        "worker failed and the strategy has no intra-query recovery",
                    );
                    return CoordinatorOutcome::NeedsRestart { failed: injected.clone() };
                }
                // Failure detection (the heartbeat round trip), then recovery.
                std::thread::sleep(heartbeat);
                let planning_start = Instant::now();
                if let Err(e) = self.recover(worker) {
                    let error = QuokkaError::Internal(format!("recovery failed: {e}"));
                    self.services.gcs.set_query_error(&error.to_string());
                    return CoordinatorOutcome::Failed(error);
                }
                self.services.metrics.add_recovery_planning(planning_start.elapsed());
            }

            // Failure detector: suspect workers whose heartbeats stalled.
            if !self.services.gcs.is_paused() {
                for worker in 0..self.services.layout.workers() {
                    if self.services.is_killed(worker) || self.services.is_suspected(worker) {
                        continue;
                    }
                    let entry = &mut detector[worker as usize];
                    let count = self.services.heartbeat_count(worker);
                    if count != entry.last_count {
                        entry.last_count = count;
                        entry.last_change = Instant::now();
                        entry.strikes = 0;
                    } else if count > 0 && entry.last_change.elapsed() > suspicion_timeout {
                        let strikes = entry.strikes + 1;
                        detector[worker as usize] = DetectorEntry {
                            last_count: self.services.heartbeat_count(worker),
                            last_change: Instant::now(),
                            strikes,
                        };
                        if strikes >= 2
                            && self.services.config.fault.supports_intra_query_recovery()
                        {
                            // Silent straight through a suspicion-reconcile:
                            // a partition would have healed (suspicion lifts
                            // the heartbeat suppression), so the process is
                            // gone. Declare it dead — its local backups died
                            // with it, and only the kill path turns those
                            // into producer rewinds.
                            self.services.kill_worker(worker);
                            let planning_start = Instant::now();
                            if let Err(e) = self.recover(worker) {
                                let error = QuokkaError::Internal(format!("recovery failed: {e}"));
                                self.services.gcs.set_query_error(&error.to_string());
                                return CoordinatorOutcome::Failed(error);
                            }
                            self.services.metrics.add_recovery_planning(planning_start.elapsed());
                        } else if let Err(e) = self.suspect(worker) {
                            let error =
                                QuokkaError::Internal(format!("suspicion recovery failed: {e}"));
                            self.services.gcs.set_query_error(&error.to_string());
                            return CoordinatorOutcome::Failed(error);
                        }
                    }
                }
            }

            // Lost-partition repair: a replay read that found its backup
            // gone (e.g. chaos-wiped disk) flags the partition; rewind the
            // producers so the data is regenerated from lineage.
            let lost = self.services.gcs.take_lost_partitions();
            if !lost.is_empty() {
                let seeds: BTreeSet<ChannelAddr> = lost.iter().map(|p| p.channel_addr()).collect();
                let planning_start = Instant::now();
                if let Err(e) = self.reconcile(seeds) {
                    let error = QuokkaError::Internal(format!("lost-partition repair failed: {e}"));
                    self.services.gcs.set_query_error(&error.to_string());
                    return CoordinatorOutcome::Failed(error);
                }
                self.services.metrics.add_recovery_planning(planning_start.elapsed());
            }

            if self.sink_done() {
                match self.missing_sink_emissions() {
                    Some(missing) if !missing.is_empty() => {
                        // Process mode: a sink commit becomes visible in the
                        // GCS before its emitted partition crosses back to
                        // the driver, so completion must wait for the
                        // results themselves. Give in-flight emissions a
                        // grace period; if one never arrives (a SIGKILLed
                        // worker committed and died before emitting), rewind
                        // its channel — only a lineage replay can regenerate
                        // the partition.
                        match sink_wait {
                            None => sink_wait = Some(Instant::now()),
                            Some(since) if since.elapsed() > suspicion_timeout => {
                                sink_wait = None;
                                let planning_start = Instant::now();
                                if let Err(e) = self.reconcile(missing) {
                                    let error = QuokkaError::Internal(format!(
                                        "sink emission repair failed: {e}"
                                    ));
                                    self.services.gcs.set_query_error(&error.to_string());
                                    return CoordinatorOutcome::Failed(error);
                                }
                                self.services
                                    .metrics
                                    .add_recovery_planning(planning_start.elapsed());
                            }
                            Some(_) => {}
                        }
                    }
                    _ => {
                        self.services.gcs.set_query_done();
                        return CoordinatorOutcome::Completed;
                    }
                }
            } else {
                sink_wait = None;
            }

            // Per-query deadline: cancel cleanly with a typed error.
            if let Some(limit) = deadline {
                let elapsed = start.elapsed();
                if elapsed > limit {
                    let error = QuokkaError::Timeout { elapsed, limit };
                    self.services.gcs.set_query_error(&error.to_string());
                    return CoordinatorOutcome::Failed(error);
                }
            }

            // Watchdog: abort if the task counter stops moving for too long.
            let tasks = self.services.metrics.snapshot(Duration::ZERO).tasks_executed;
            if tasks != last_progress.0 {
                last_progress = (tasks, Instant::now());
            } else if last_progress.1.elapsed() > self.watchdog {
                let message = format!(
                    "watchdog: no task progress for {:?} (elapsed {:?})",
                    self.watchdog,
                    start.elapsed()
                );
                self.dump_stuck_state();
                self.services.gcs.set_query_error(&message);
                return CoordinatorOutcome::Failed(QuokkaError::Internal(message));
            }
            std::thread::sleep(heartbeat);
        }
    }

    /// Process mode only (`Services::delivered_sinks` is `Some`): the sink
    /// channels with committed partitions that have not reached the driver's
    /// result stream yet. `None` in-process, where emission is synchronous
    /// with the commit.
    fn missing_sink_emissions(&self) -> Option<BTreeSet<ChannelAddr>> {
        let delivered = self.services.delivered_sinks.as_ref()?;
        let delivered = delivered.lock();
        let sink = self.services.layout.sink();
        let mut missing = BTreeSet::new();
        for channel in self.services.layout.channels_of(sink) {
            let Some(state) = self.services.gcs.get_channel(channel) else { continue };
            let Some(committed) = state.committed_seq else { continue };
            for seq in 0..=committed {
                if !delivered.contains(&channel.task(seq)) {
                    missing.insert(channel);
                    break;
                }
            }
        }
        Some(missing)
    }

    /// Handle a suspected worker: reconcile its channels onto trusted
    /// workers *without* declaring it dead. If the worker was alive all
    /// along (false suspicion), the commit-time compare-and-swap on the
    /// channel state stops it from clobbering the reconciled assignment;
    /// if it really is unresponsive, its work continues elsewhere.
    fn suspect(&self, worker: WorkerId) -> Result<()> {
        let services = &self.services;
        services.set_suspected(worker, true);
        services.metrics.add_suspicion();
        let seeds: BTreeSet<ChannelAddr> = services
            .gcs
            .all_channels()
            .into_iter()
            .filter(|c| c.worker == worker && !c.done)
            .map(|c| c.addr)
            .collect();
        let planning_start = Instant::now();
        let result = if seeds.is_empty() { Ok(()) } else { self.reconcile(seeds) };
        services.metrics.add_recovery_planning(planning_start.elapsed());
        // The simulated partition heals once reconciliation is through:
        // stop suppressing the worker's heartbeats (a chaos injection may
        // have silenced them) and trust it again for future placement.
        services.suppress_heartbeats(worker, false);
        services.set_suspected(worker, false);
        result
    }

    /// Algorithm 2: reconcile the GCS after `failed` died. The worker must
    /// already have been killed ([`Services::kill_worker`]).
    pub fn recover(&self, failed: WorkerId) -> Result<()> {
        let gcs = &self.services.gcs;
        gcs.set_paused(true);
        gcs.mark_worker_failed(failed);
        // Give in-flight commits a moment to abort against the barrier.
        std::thread::sleep(Duration::from_millis(2));
        // R: channels that must be rewound. Start with every unfinished
        // channel hosted by the failed worker.
        let mut seeds: BTreeSet<ChannelAddr> = gcs
            .all_channels()
            .into_iter()
            .filter(|c| c.worker == failed && !c.done)
            .map(|c| c.addr)
            .collect();
        // Replays an earlier recovery routed to this worker can never be
        // served now (its backup disk died with it). Drain them and rewind
        // their consumers so reconciliation re-plans each partition from
        // whatever copies remain — this is how a single failure that takes
        // out several workers at once (a whole process) stays recoverable.
        for stranded in gcs.replays_for_worker(failed) {
            gcs.remove_replay(&stranded);
            seeds.insert(stranded.consumer);
        }
        let result = self.reconcile_locked(seeds);
        gcs.set_paused(false);
        result
    }

    /// Reconcile a set of channels without declaring any worker dead
    /// (suspicion handling and lost-partition repair).
    pub fn reconcile(&self, seeds: BTreeSet<ChannelAddr>) -> Result<()> {
        let gcs = &self.services.gcs;
        gcs.set_paused(true);
        std::thread::sleep(Duration::from_millis(2));
        let result = self.reconcile_locked(seeds);
        gcs.set_paused(false);
        result
    }

    /// The core of Algorithm 2, run under the raised pause barrier: rewind
    /// the seed channels, schedule replays of the partitions they need that
    /// still exist somewhere, and transitively rewind producers whose
    /// partitions are gone.
    fn reconcile_locked(&self, mut rewind: BTreeSet<ChannelAddr>) -> Result<()> {
        let services = &self.services;
        let layout = &services.layout;
        let gcs = &services.gcs;

        // Placement excludes suspects (they may be partitioned away); replay
        // owners only need their backup disk alive.
        let pool = services.placement_pool();
        if pool.is_empty() {
            return Err(QuokkaError::Unschedulable(ChannelAddr::new(0, 0)));
        }
        let live = services.live_workers();

        // Walk the stages in reverse topological order, scheduling replays
        // for the inputs every rewound channel needs, and rewinding the
        // producers whose partitions no longer exist anywhere.
        let mut replays: Vec<ReplayRequest> = Vec::new();
        for stage in layout.graph.reverse_topological() {
            for channel in layout.channels_of(stage) {
                if !rewind.contains(&channel) {
                    continue;
                }
                for (_, upstream) in layout.upstream_channels(stage) {
                    if rewind.contains(upstream) {
                        // The producer itself is being rewound; it will
                        // re-push everything.
                        continue;
                    }
                    let Some(upstream_state) = gcs.get_channel(*upstream) else { continue };
                    let mut lost_producer = false;
                    for seq in 0..upstream_state.outputs_produced() {
                        let partition = upstream.task(seq);
                        let entry = gcs.get_partition(partition);
                        match entry {
                            Some(e) if e.spooled => replays.push(ReplayRequest::new(
                                live[(seq as usize) % live.len()],
                                partition,
                                channel,
                            )),
                            Some(e) if e.backed_up && !services.is_killed(e.owner) => {
                                replays.push(ReplayRequest::new(e.owner, partition, channel))
                            }
                            _ => {
                                lost_producer = true;
                            }
                        }
                    }
                    if lost_producer {
                        rewind.insert(*upstream);
                    }
                }
            }
        }

        // Reassign and reset every rewound channel. Stateful channels of
        // different stages go to different workers — the degree of recovery
        // parallelism is therefore bounded by the number of stages
        // (pipeline-parallel recovery), exactly as §III-B describes.
        for channel in &rewind {
            let previous = gcs
                .get_channel(*channel)
                .ok_or_else(|| QuokkaError::NotFound(format!("channel {channel}")))?;
            let new_worker = pool[(channel.stage as usize + channel.channel as usize) % pool.len()];
            let mut state = ChannelState::new(
                *channel,
                new_worker,
                layout.upstream_channels(channel.stage).len(),
            );
            // A channel that dies *mid-replay* (a second failure during
            // recovery) must keep its original rewind target: its consumers'
            // logged lineage references the task boundaries of the first
            // incarnation, and a shorter rewind would let the channel resume
            // dynamic batching early and never regenerate those partitions.
            state.rewind_until = match (previous.rewind_until, previous.committed_seq) {
                (Some(rewind), Some(committed)) => Some(rewind.max(committed)),
                (Some(rewind), None) => Some(rewind),
                (None, committed) => committed,
            };
            gcs.put_channel(&state);
            gcs.put_task(&TaskEntry { task: channel.task(0), worker: new_worker });
        }

        // Replays only matter for partitions feeding rewound channels; they
        // can be served concurrently by their owner workers ("replay tasks
        // are pushed to TaskManagers that hold them").
        for replay in &replays {
            // Skip replays whose producer ended up rewound after all.
            if rewind.contains(&replay.partition.channel_addr()) {
                continue;
            }
            gcs.add_replay(replay);
        }

        Ok(())
    }

    /// Dump the stuck state when the watchdog fires: which channels are
    /// unfinished, where they are assigned, and what their watermarks look
    /// like.
    fn dump_stuck_state(&self) {
        eprintln!("[watchdog] paused={}", self.services.gcs.is_paused());
        let beats: Vec<u64> =
            (0..self.services.layout.workers()).map(|w| self.services.heartbeat_count(w)).collect();
        eprintln!("[watchdog] heartbeats={beats:?}");
        for state in self.services.gcs.all_channels() {
            if !state.done {
                eprintln!(
                    "[watchdog] stuck channel {} worker={} committed={:?} \
                     consumed={:?} splits={} rewind={:?} killed={}",
                    state.addr,
                    state.worker,
                    state.committed_seq,
                    state.consumed,
                    state.splits_consumed,
                    state.rewind_until,
                    self.services.is_killed(state.worker),
                );
                for (flat, (_, upstream)) in
                    self.services.layout.upstream_channels(state.addr.stage).iter().enumerate()
                {
                    let up = self.services.gcs.get_channel(*upstream);
                    let produced = up.as_ref().map(|u| u.outputs_produced()).unwrap_or(0);
                    let consumed = state.consumed.get(flat).copied().unwrap_or(0);
                    if consumed < produced {
                        let inbox = self
                            .services
                            .plane
                            .server(state.worker)
                            .map(|s| s.available_from(state.addr, *upstream, consumed).len())
                            .unwrap_or(0);
                        eprintln!(
                            "[watchdog]   waiting on {} ({}/{} consumed, {} in inbox, \
                             up done={:?})",
                            upstream,
                            consumed,
                            produced,
                            inbox,
                            up.map(|u| u.done),
                        );
                        for seq in consumed..produced {
                            let name = upstream.task(seq);
                            let in_inbox = self
                                .services
                                .plane
                                .server(state.worker)
                                .map(|s| s.has_slice(state.addr, name))
                                .unwrap_or(false);
                            let lineage = self.services.gcs.lineage_committed(name);
                            if !in_inbox || !lineage {
                                eprintln!(
                                    "[watchdog]     seq {seq}: in_inbox={in_inbox} \
                                     lineage_committed={lineage}"
                                );
                            }
                        }
                    }
                }
            }
        }
        for w in 0..self.services.layout.workers() {
            for r in self.services.gcs.replays_for_worker(w) {
                eprintln!(
                    "[watchdog] pending replay owner={} partition={} consumer={} attempts={} \
                     owner_killed={}",
                    w,
                    r.partition,
                    r.consumer,
                    r.attempts,
                    self.services.is_killed(w)
                );
            }
        }
    }
}
