//! Fig. 7: pipelined vs stagewise (blocking) execution on the eight
//! representative queries, 4- and 16-worker clusters.

use quokka::ExecutionMode;
use quokka_bench::{geomean, print_header, print_row, queries_from_env, workers_from_env, Harness};

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let queries = queries_from_env(&quokka::tpch::REPRESENTATIVE);
    let workers = workers_from_env(&[4, 16]);

    for &w in &workers {
        print_header(
            &format!("Fig. 7 — pipelined vs stagewise execution on {w} workers"),
            &["pipelined (s)", "stagewise (s)", "speedup"],
        );
        let mut speedups = Vec::new();
        for &q in &queries {
            let pipelined = harness.run("pipelined", q, &harness.quokka_config(w))?;
            let stagewise = harness.run(
                "stagewise",
                q,
                &harness.quokka_config(w).with_mode(ExecutionMode::Stagewise),
            )?;
            let speedup = stagewise.seconds / pipelined.seconds.max(1e-9);
            speedups.push(speedup);
            print_row(q, &[pipelined.seconds, stagewise.seconds, speedup]);
        }
        println!(
            "paper shape: pipelining wins ~22-26% geomean on join queries; measured geomean speedup {:.2}x",
            geomean(&speedups)
        );
    }
    Ok(())
}
