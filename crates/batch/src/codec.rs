//! Compact binary encoding of batches.
//!
//! Upstream backup, spooling and checkpointing all serialise batches to
//! bytes; the storage layer charges its cost model per byte written, so this
//! codec determines the byte volumes the experiments in Fig. 9 depend on.
//! The header is a simple length-prefixed layout; the per-column payloads
//! are shared with the [`wire`](crate::wire) format, so durable backups ship
//! encoded columns natively (dictionary, bit-packed, XOR) with no
//! decode/re-encode at the boundary. The encoding round-trips exactly and is
//! stable across runs (important because a replayed partition must be
//! byte-identical to the original).

use crate::batch::Batch;
use crate::datatype::DataType;
use crate::schema::{Field, Schema};
use crate::wire::{
    decode_column_payload, encode_column_payload, put_u16, put_u32, put_u64, put_u8, WireReader,
};
use bytes::Bytes;
use quokka_common::{QuokkaError, Result};

const MAGIC: u32 = 0x514B_4241; // "QKBA"

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int64,
        1 => DataType::Float64,
        2 => DataType::Utf8,
        3 => DataType::Bool,
        4 => DataType::Date,
        other => return Err(QuokkaError::Storage(format!("bad data type tag {other}"))),
    })
}

/// Encode a batch to bytes.
pub fn encode_batch(batch: &Batch) -> Bytes {
    let mut buf = Vec::with_capacity(batch.byte_size() + 64);
    put_u32(&mut buf, MAGIC);
    put_u32(&mut buf, batch.num_columns() as u32);
    put_u64(&mut buf, batch.num_rows() as u64);
    for field in batch.schema().fields() {
        put_u8(&mut buf, dtype_tag(field.data_type));
        let name = field.name.as_bytes();
        put_u16(&mut buf, name.len() as u16);
        buf.extend_from_slice(name);
    }
    for col in batch.columns() {
        encode_column_payload(col, &mut buf);
    }
    Bytes::from(buf)
}

/// Decode a batch previously produced by [`encode_batch`].
pub fn decode_batch(data: &[u8]) -> Result<Batch> {
    let mut r = WireReader::new(data);
    let magic = r.u32()?;
    if magic != MAGIC {
        return Err(QuokkaError::Storage(format!("bad batch magic {magic:#x}")));
    }
    let cols = r.u32()? as usize;
    let rows_raw = r.u64()?;
    let rows = usize::try_from(rows_raw)
        .map_err(|_| QuokkaError::Storage(format!("absurd row count {rows_raw}")))?;
    if cols > r.remaining()
        || (rows > r.remaining().max(1) * 8 && rows > crate::wire::MAX_SMALL_FRAME_ROWS)
    {
        return Err(QuokkaError::Storage(format!(
            "batch header claims {cols} cols x {rows} rows but only {} bytes follow",
            r.remaining()
        )));
    }
    let mut fields = Vec::with_capacity(cols);
    for _ in 0..cols {
        let dt = tag_dtype(r.u8()?)?;
        let name_len = r.u16()? as usize;
        let raw = r.take(name_len, "column name")?;
        let name = String::from_utf8(raw.to_vec())
            .map_err(|e| QuokkaError::Storage(format!("invalid column name: {e}")))?;
        fields.push(Field::new(name, dt));
    }
    let schema = Schema::new(fields);
    let mut columns = Vec::with_capacity(cols);
    for field in schema.fields() {
        columns.push(decode_column_payload(&mut r, field.data_type, rows)?);
    }
    Batch::try_new(schema, columns)
}

/// Encode several batches (one data partition) into a single payload.
pub fn encode_partition(batches: &[Batch]) -> Bytes {
    let mut buf = Vec::new();
    put_u32(&mut buf, batches.len() as u32);
    for b in batches {
        let encoded = encode_batch(b);
        put_u32(&mut buf, encoded.len() as u32);
        buf.extend_from_slice(&encoded);
    }
    Bytes::from(buf)
}

/// Decode a payload produced by [`encode_partition`].
pub fn decode_partition(data: &[u8]) -> Result<Vec<Batch>> {
    let mut r = WireReader::new(data);
    let count = r.u32()? as usize;
    if count > r.remaining().max(1) {
        return Err(QuokkaError::Storage(format!(
            "partition claims {count} batches but only {} bytes follow",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let payload = r.bytes()?;
        out.push(decode_batch(payload)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::datatype::ScalarValue;

    fn sample() -> Batch {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("price", DataType::Float64),
            ("flag", DataType::Bool),
            ("ship", DataType::Date),
            ("comment", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![1, -5, 300]),
                Column::Float64(vec![0.5, 2.25, -9.0]),
                Column::Bool(vec![true, false, true]),
                Column::Date(vec![100, 0, -30]),
                Column::Utf8(vec!["hello".into(), "".into(), "unicode ✓".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_batch() {
        let b = sample();
        let encoded = encode_batch(&b);
        let decoded = decode_batch(&encoded).unwrap();
        assert_eq!(b, decoded);
        assert_eq!(decoded.value(2, 4), ScalarValue::Utf8("unicode ✓".into()));
    }

    #[test]
    fn roundtrip_empty_batch() {
        let b = Batch::empty(sample().schema().clone());
        let decoded = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(decoded.num_rows(), 0);
        assert_eq!(decoded.schema(), b.schema());
    }

    #[test]
    fn roundtrip_partition() {
        let b = sample();
        let payload = encode_partition(&[b.clone(), b.slice(0, 1)]);
        let decoded = decode_partition(&payload).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], b);
        assert_eq!(decoded[1].num_rows(), 1);
    }

    #[test]
    fn roundtrip_encoded_columns() {
        let b = sample();
        let encoded_batch_cols = Batch::try_new(
            b.schema().clone(),
            b.columns().iter().map(Column::encode_auto).collect(),
        )
        .unwrap();
        let payload = encode_partition(std::slice::from_ref(&encoded_batch_cols));
        let decoded = decode_partition(&payload).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0], b, "backup round-trip preserves logical content");
    }

    #[test]
    fn corrupt_payloads_are_rejected() {
        let b = sample();
        let encoded = encode_batch(&b);
        assert!(decode_batch(&encoded[..10]).is_err());
        let mut tampered = encoded.to_vec();
        tampered[0] ^= 0xFF;
        assert!(decode_batch(&tampered).is_err());
        assert!(decode_partition(&[1, 2]).is_err());
        assert!(decode_batch(&[]).is_err());
    }

    #[test]
    fn encoding_is_deterministic() {
        let b = sample();
        assert_eq!(encode_batch(&b), encode_batch(&b));
        assert_eq!(encode_partition(std::slice::from_ref(&b)), encode_partition(&[b]));
    }
}
