/root/repo/target/debug/examples/tpch_benchmark-a9cbbad5a9e726c5.d: examples/tpch_benchmark.rs

/root/repo/target/debug/examples/libtpch_benchmark-a9cbbad5a9e726c5.rmeta: examples/tpch_benchmark.rs

examples/tpch_benchmark.rs:
