//! Kernel micro-benchmarks: scalar baseline vs vectorized hot paths.
//!
//! Measures the operators rewritten around typed key encoding and columnar
//! accumulators (group-by, join probe, sort, hash partition) against
//! self-contained replicas of the scalar-at-a-time implementations they
//! replaced (`BTreeMap<String, _>` group state, per-row `ScalarValue`
//! probe/stitch). Results go to `BENCH_kernels.json` so future PRs have a
//! perf trajectory to compare against.
//!
//! Run with: `cargo run --release -p quokka-bench --bin kernels`
//!
//! Environment knobs: `QUOKKA_BENCH_ROWS` (default 1_000_000),
//! `QUOKKA_BENCH_OUT` (default `BENCH_kernels.json`).

use quokka::batch::compute::{self, SortKey};
use quokka::plan::aggregate::{sum, Accumulator, AggFunc};
use quokka::plan::expr::col;
use quokka::plan::logical::JoinType;
use quokka::plan::physical::{CoreOp, OperatorSpec};
use quokka::{Batch, Column, DataType, ScalarValue, Schema};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Best-of-N wall-clock seconds for one closure.
fn time_best<F: FnMut() -> u64>(runs: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut checksum = 0u64;
    for _ in 0..runs {
        let start = Instant::now();
        checksum = std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, checksum)
}

fn group_by_input(rows: usize, groups: usize) -> Batch {
    let schema = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Float64)]);
    Batch::try_new(
        schema,
        vec![
            Column::Int64((0..rows as i64).map(|i| (i * 2_654_435_761) % groups as i64).collect()),
            Column::Float64((0..rows).map(|i| (i % 1000) as f64 * 0.25).collect()),
        ],
    )
    .unwrap()
}

/// The pre-rewrite group-by inner loop: stringified keys into a BTreeMap,
/// one `ScalarValue` per row for the key and one per row per aggregate.
fn scalar_group_by(batch: &Batch) -> u64 {
    let mut groups: BTreeMap<String, (Vec<ScalarValue>, Vec<Accumulator>)> = BTreeMap::new();
    for row in 0..batch.num_rows() {
        let key_values: Vec<ScalarValue> = vec![batch.column(0).get(row)];
        let mut key = String::new();
        for v in &key_values {
            key.push_str(&v.to_string());
            key.push('\u{1}');
        }
        let entry = groups.entry(key).or_insert_with(|| {
            (key_values.clone(), vec![Accumulator::new(AggFunc::Sum, DataType::Float64)])
        });
        entry.1[0].update(&batch.column(1).get(row)).expect("sum update");
    }
    groups.len() as u64
}

fn vectorized_group_by(spec: &OperatorSpec, batch: &Batch) -> u64 {
    let mut op = spec.instantiate().expect("instantiate aggregate");
    op.push(0, batch).expect("push");
    let out = op.finish().expect("finish");
    out.iter().map(|b| b.num_rows() as u64).sum()
}

fn join_inputs(build_rows: usize, probe_rows: usize) -> (Batch, Batch) {
    let build_schema =
        Schema::from_pairs(&[("b_key", DataType::Int64), ("b_val", DataType::Float64)]);
    let build = Batch::try_new(
        build_schema,
        vec![
            Column::Int64((0..build_rows as i64).collect()),
            Column::Float64((0..build_rows).map(|i| i as f64).collect()),
        ],
    )
    .unwrap();
    let probe_schema =
        Schema::from_pairs(&[("p_key", DataType::Int64), ("p_val", DataType::Float64)]);
    let probe = Batch::try_new(
        probe_schema,
        vec![
            Column::Int64(
                (0..probe_rows as i64).map(|i| (i * 48_271) % (build_rows as i64 * 2)).collect(),
            ),
            Column::Float64((0..probe_rows).map(|i| i as f64 * 0.5).collect()),
        ],
    )
    .unwrap();
    (build, probe)
}

/// The pre-rewrite probe loop: row-hash table with `ScalarValue` equality
/// checks per candidate and a `from_scalars` stitch of the build columns.
fn scalar_join_probe(build: &Batch, probe: &Batch) -> u64 {
    let build_hashes = compute::hash_rows(build, &[0]);
    let mut table: HashMap<u64, Vec<usize>> = HashMap::new();
    for (row, h) in build_hashes.iter().enumerate() {
        table.entry(*h).or_default().push(row);
    }
    let probe_hashes = compute::hash_rows(probe, &[0]);
    let mut build_rows: Vec<usize> = Vec::new();
    let mut probe_rows: Vec<usize> = Vec::new();
    for (row, h) in probe_hashes.iter().enumerate() {
        if let Some(candidates) = table.get(h) {
            for &b in candidates {
                let equal = build.column(0).get(b).total_cmp(&probe.column(0).get(row))
                    == std::cmp::Ordering::Equal;
                if equal {
                    build_rows.push(b);
                    probe_rows.push(row);
                }
            }
        }
    }
    let mut columns: Vec<Column> = Vec::new();
    for col_idx in 0..build.num_columns() {
        let dtype = build.schema().field(col_idx).data_type;
        let values: Vec<ScalarValue> =
            build_rows.iter().map(|&b| build.column(col_idx).get(b)).collect();
        columns.push(Column::from_scalars(dtype, &values).expect("stitch"));
    }
    let probe_taken = probe.take(&probe_rows).expect("take");
    columns.extend(probe_taken.columns().iter().cloned());
    columns.iter().map(|c| c.len() as u64).sum()
}

fn vectorized_join_probe(spec: &OperatorSpec, build: &Batch, probe: &Batch) -> u64 {
    let mut op = spec.instantiate().expect("instantiate join");
    op.push(0, build).expect("push build");
    op.finish_input(0).expect("seal build");
    let out = op.push(1, probe).expect("probe");
    out.iter().map(|b| b.num_rows() as u64).sum()
}

fn sort_input(rows: usize) -> Batch {
    let schema = Schema::from_pairs(&[("k", DataType::Int64), ("s", DataType::Utf8)]);
    Batch::try_new(
        schema,
        vec![
            Column::Int64((0..rows as i64).map(|i| (i * 2_654_435_761) % 100_000).collect()),
            Column::Utf8((0..rows).map(|i| format!("tag-{}", i % 977)).collect()),
        ],
    )
    .unwrap()
}

struct Entry {
    name: &'static str,
    rows: usize,
    scalar_s: f64,
    vectorized_s: f64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_s / self.vectorized_s
    }
}

fn main() {
    let rows = env_usize("QUOKKA_BENCH_ROWS", 1_000_000).max(1);
    let out_path =
        std::env::var("QUOKKA_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string());
    let runs = 3;
    let mut entries: Vec<Entry> = Vec::new();

    // Group-by: SUM over 10k integer groups.
    let batch = group_by_input(rows, 10_000);
    let agg_spec = OperatorSpec::new(CoreOp::HashAggregate {
        input_schema: batch.schema().clone(),
        group_by: vec![(col("k"), "k".to_string())],
        aggregates: vec![sum(col("v"), "total")],
    });
    let (scalar_s, scalar_groups) = time_best(runs, || scalar_group_by(&batch));
    let (vector_s, vector_groups) = time_best(runs, || vectorized_group_by(&agg_spec, &batch));
    assert_eq!(scalar_groups, vector_groups, "group counts must agree");
    entries.push(Entry { name: "group_by_sum_1m", rows, scalar_s, vectorized_s: vector_s });
    eprintln!(
        "group_by:    scalar {scalar_s:.3}s  vectorized {vector_s:.3}s  ({:.1}x)",
        scalar_s / vector_s
    );

    // Join probe: 100k build rows, `rows` probe rows, ~50% hit rate.
    let (build, probe) = join_inputs(100_000, rows);
    let join_spec = OperatorSpec::new(CoreOp::HashJoin {
        build_schema: build.schema().clone(),
        probe_schema: probe.schema().clone(),
        build_keys: vec![0],
        probe_keys: vec![0],
        join_type: JoinType::Inner,
    });
    let (scalar_s, scalar_out) = time_best(runs, || scalar_join_probe(&build, &probe));
    let (vector_s, vector_out) =
        time_best(runs, || vectorized_join_probe(&join_spec, &build, &probe));
    // The scalar checksum counts output column cells; normalize both to rows.
    assert_eq!(scalar_out / 4, vector_out, "join cardinalities must agree");
    entries.push(Entry { name: "join_probe_1m", rows, scalar_s, vectorized_s: vector_s });
    eprintln!(
        "join_probe:  scalar {scalar_s:.3}s  vectorized {vector_s:.3}s  ({:.1}x)",
        scalar_s / vector_s
    );

    // Sort: typed comparators vs per-comparison ScalarValue clones. The
    // scalar baseline is the old compare path (ScalarValue::get per key).
    let sortable = sort_input(rows.min(300_000));
    let keys = [SortKey::asc(0), SortKey::desc(1)];
    let (scalar_s, a) = time_best(runs, || {
        let mut indices: Vec<usize> = (0..sortable.num_rows()).collect();
        indices.sort_by(|&x, &y| {
            for key in &keys {
                let vx = sortable.column(key.column).get(x);
                let vy = sortable.column(key.column).get(y);
                let ord = vx.total_cmp(&vy);
                let ord = if key.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        indices[0] as u64
    });
    let (vector_s, b) = time_best(runs, || compute::sort_indices(&sortable, &keys)[0] as u64);
    assert_eq!(a, b, "sort orders must agree");
    entries.push(Entry {
        name: "sort_two_keys_300k",
        rows: sortable.num_rows(),
        scalar_s,
        vectorized_s: vector_s,
    });
    eprintln!(
        "sort:        scalar {scalar_s:.3}s  vectorized {vector_s:.3}s  ({:.1}x)",
        scalar_s / vector_s
    );

    // Hash partition: index-list + take baseline vs single-pass scatter.
    let (scalar_s, a) = time_best(runs, || {
        let hashes = compute::hash_rows(&batch, &[0]);
        let mut indices: Vec<Vec<usize>> = vec![Vec::new(); 16];
        for (row, h) in hashes.iter().enumerate() {
            indices[(h % 16) as usize].push(row);
        }
        indices.into_iter().map(|idx| batch.take(&idx).expect("take").num_rows() as u64).sum()
    });
    let (vector_s, b) = time_best(runs, || {
        compute::hash_partition(&batch, &[0], 16)
            .expect("partition")
            .iter()
            .map(|p| p.num_rows() as u64)
            .sum()
    });
    assert_eq!(a, b, "partition cardinalities must agree");
    entries.push(Entry { name: "hash_partition_16_1m", rows, scalar_s, vectorized_s: vector_s });
    eprintln!(
        "partition:   scalar {scalar_s:.3}s  vectorized {vector_s:.3}s  ({:.1}x)",
        scalar_s / vector_s
    );

    // Hand-rolled JSON (no serde in this environment).
    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"scalar_seconds\": {:.6}, \
             \"vectorized_seconds\": {:.6}, \"speedup\": {:.2}}}{}\n",
            e.name,
            e.rows,
            e.scalar_s,
            e.vectorized_s,
            e.speedup(),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");

    let group_by = entries.iter().find(|e| e.name.starts_with("group_by")).unwrap();
    let join = entries.iter().find(|e| e.name.starts_with("join_probe")).unwrap();
    assert!(
        group_by.speedup() >= 3.0 && join.speedup() >= 3.0,
        "vectorized kernels must be >= 3x the scalar baseline (group_by {:.2}x, join {:.2}x)",
        group_by.speedup(),
        join.speedup()
    );
}
