//! The Quokka distributed pipelined query engine with write-ahead lineage.
//!
//! This crate is the paper's contribution plus its immediate runtime: a
//! push-based, dynamically scheduled, pipelined query engine executing over
//! a simulated cluster, with intra-query fault tolerance provided by
//! **write-ahead lineage** (Algorithm 1) and **pipeline-parallel recovery**
//! (Algorithm 2), alongside the baseline strategies the paper compares
//! against (restart, spooling, checkpointing) and the baseline execution
//! modes (stagewise/blocking execution, static task dependencies).
//!
//! Module map:
//!
//! * [`layout`] — how a compiled [`StageGraph`](quokka_plan::stage::StageGraph)
//!   is laid out onto a cluster: channels per stage, initial worker
//!   placement, input-split assignment and the watermark indexing used by
//!   the lineage naming scheme.
//! * [`worker`] — the TaskManager side: each worker runs one thread per
//!   stage, executing Algorithm 1 for the channels currently assigned to it
//!   and serving replay requests during recovery.
//! * [`recovery`] — the coordinator side: failure detection, fault
//!   injection, and the Algorithm 2 reconciliation that rewinds lost
//!   channels and schedules replays.
//! * [`runtime`] — [`QueryRunner`]: wires the GCS,
//!   data plane, storage and threads together, runs one query under an
//!   [`EngineConfig`](quokka_common::EngineConfig), and returns the result
//!   batch plus [`QueryMetrics`](quokka_common::QueryMetrics).

pub mod layout;
pub mod recovery;
pub mod runtime;
pub mod worker;

pub use layout::QueryLayout;
pub use runtime::{QueryOutcome, QueryRunner};
