/root/repo/target/release/examples/quickstart-3fb13139040ec861.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3fb13139040ec861: examples/quickstart.rs

examples/quickstart.rs:
