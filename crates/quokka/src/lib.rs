//! High-level facade for the Quokka write-ahead-lineage query engine.
//!
//! [`QuokkaSession`] bundles a table catalog with an [`EngineConfig`] and is
//! the single place queries enter the system. All three frontends — the lazy
//! [`DataFrame`] API, SQL, and raw [`LogicalPlan`]s built with
//! [`PlanBuilder`] — lower to the same [`QueryHandle`], which executes
//! either incrementally ([`QueryHandle::stream`]) or to completion
//! ([`QueryHandle::collect`]):
//!
//! ```
//! use quokka::dataframe::{col, sum};
//! use quokka::QuokkaSession;
//!
//! // A tiny TPC-H data set on a 4-worker simulated cluster.
//! let session = QuokkaSession::tpch(0.002, 4).unwrap();
//! let outcome = session
//!     .table("lineitem").unwrap()
//!     .filter(col("l_quantity").lt(quokka::dataframe::lit(25.0f64))).unwrap()
//!     .group_by([col("l_returnflag")]).unwrap()
//!     .agg([sum(col("l_extendedprice")).alias("revenue")]).unwrap()
//!     .sort([(col("revenue"), false)]).unwrap()
//!     .collect().unwrap();
//! assert!(outcome.metrics.tasks_executed > 0);
//! ```
//!
//! Sessions are cheap to clone and safe to share: wrap one in an
//! [`Arc`] — or just clone one — and run queries from as many
//! threads as you like — each execution gets its own metrics and cluster
//! state.

pub use quokka_batch as batch;
pub use quokka_common as common;
pub use quokka_engine as engine;
pub use quokka_gcs as gcs;
pub use quokka_net as net;
pub use quokka_plan as plan;
pub use quokka_sql as sql;
pub use quokka_storage as storage;
pub use quokka_tpch as tpch;

pub mod dataframe;
pub mod plan_cache;
pub mod process;

pub use dataframe::DataFrame;
pub use plan_cache::{CachedPlan, PlanCache, PlanCacheStats};
pub use quokka_batch::{Batch, Column, DataType, ScalarValue, Schema};
pub use quokka_common::{
    AdmissionConfig, Backoff, ChaosEvent, ChaosInjection, ChaosPlan, ChaosTrigger, ClusterConfig,
    CostModelConfig, EngineConfig, ExecutionMode, FailureSpec, FaultStrategy, PeerWireStats,
    PlanCacheConfig, QueryMetrics, QuokkaError, Result, RetryPolicy, SchedulePolicy,
    TransportConfig, TransportKind,
};
pub use quokka_engine::{
    AdmissionController, AdmissionStats, BatchStream, QueryOutcome, QueryRunner, StreamOptions,
};
pub use quokka_plan::logical::{JoinType, LogicalPlan, PlanBuilder};
pub use quokka_plan::reference::{canonical_rows, same_result, ReferenceExecutor};
pub use quokka_sql::SqlError;
pub use quokka_tpch::TpchGenerator;

use quokka_plan::catalog::{Catalog, MemoryCatalog};
use std::sync::Arc;

/// The shared rendering for a plan that fails schema validation (used by
/// both the raw-plan entry point and the DataFrame frontend).
pub(crate) fn invalid_plan_error(error: QuokkaError, plan: &LogicalPlan) -> QuokkaError {
    QuokkaError::PlanError(format!("invalid plan: {error}\n{}", plan.display_indent()))
}

/// A session: a catalog of registered tables plus an engine configuration.
///
/// Cloning is cheap (the catalog, plan cache and admission controller are
/// shared behind [`Arc`]s) and clones are fully independent query entry
/// points, so one session can serve concurrent queries from many threads —
/// all of them hitting one plan cache and admitted by one controller.
/// [`with_config`](Self::with_config) affects only the clone it is called
/// on (rebuilding the cache/controller when their config sections change).
#[derive(Clone)]
pub struct QuokkaSession {
    catalog: Arc<MemoryCatalog>,
    config: EngineConfig,
    plan_cache: Arc<PlanCache>,
    admission: Arc<AdmissionController>,
}

impl QuokkaSession {
    /// An empty session with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        let plan_cache = PlanCache::new(config.plan_cache);
        let admission = AdmissionController::new(config.admission);
        QuokkaSession { catalog: Arc::new(MemoryCatalog::new()), config, plan_cache, admission }
    }

    /// A session pre-populated with a generated TPC-H data set at scale
    /// factor `sf` on a `workers`-worker cluster, using Quokka's defaults
    /// (pipelined execution, dynamic task dependencies, write-ahead lineage).
    pub fn tpch(sf: f64, workers: u32) -> Result<Self> {
        let session = QuokkaSession::new(EngineConfig::quokka(workers));
        TpchGenerator::new(sf, 0xC0FFEE).register_all(&session.catalog)?;
        Ok(session)
    }

    /// Replace the engine configuration (builder style).
    ///
    /// The shared plan cache and admission controller are rebuilt only when
    /// their config sections actually changed, so tuning unrelated knobs
    /// (fault strategy, chaos plans) keeps the warmed cache. Clones made
    /// *before* this call keep the previous cache/controller.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        if config.plan_cache != self.config.plan_cache {
            self.plan_cache = PlanCache::new(config.plan_cache);
        }
        if config.admission != self.config.admission {
            self.admission = AdmissionController::new(config.admission);
        }
        self.config = config;
        self
    }

    /// The current engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The session's shared plan cache (one per session and its clones).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plan_cache
    }

    /// The session's shared admission controller.
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// Register a table.
    pub fn register_table(&self, name: &str, schema: Schema, batches: Vec<Batch>) {
        self.catalog.register(name, schema, batches);
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &MemoryCatalog {
        &self.catalog
    }

    /// Names of the registered tables.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.table_names()
    }

    /// Start a lazy [`DataFrame`] over a registered table.
    ///
    /// Every transformation on the frame is validated against the catalog's
    /// schemas as it is added (unknown names and type errors surface at
    /// build time with "did you mean" suggestions), and nothing executes
    /// until [`DataFrame::collect`] or [`DataFrame::stream`] is called.
    ///
    /// ```
    /// use quokka::QuokkaSession;
    ///
    /// let session = QuokkaSession::tpch(0.002, 2).unwrap();
    /// let err = session.table("lineitems").unwrap_err();
    /// assert!(err.to_string().contains("did you mean 'lineitem'"));
    /// ```
    pub fn table(&self, name: &str) -> Result<DataFrame> {
        DataFrame::table(self.clone(), name)
    }

    /// Wrap an already-built logical plan in a [`QueryHandle`] — the common
    /// entry point the DataFrame and SQL frontends also lower to. The plan
    /// is schema-checked here, so the handle's failure modes are runtime
    /// ones.
    pub fn query(&self, plan: LogicalPlan) -> Result<QueryHandle> {
        plan.schema().map_err(|e| invalid_plan_error(e, &plan))?;
        Ok(QueryHandle { session: self.clone(), plan, explain: false, prepared: None })
    }

    /// A handle over a plan that is already known to be schema-valid
    /// (used by the DataFrame frontend, which validates at every step).
    pub(crate) fn query_validated(&self, plan: LogicalPlan) -> QueryHandle {
        QueryHandle { session: self.clone(), plan, explain: false, prepared: None }
    }

    /// The hand-built logical plan of TPC-H query `number` (1-22), as a
    /// [`QueryHandle`].
    pub fn tpch_query(&self, number: usize) -> Result<QueryHandle> {
        self.query(quokka_tpch::query(number)?)
    }

    /// Execute a logical plan on the simulated cluster. Like every
    /// session-level execution path, the query passes through the session's
    /// admission controller first.
    pub fn run(&self, plan: &LogicalPlan) -> Result<QueryOutcome> {
        self.run_with(plan, &self.config)
    }

    /// Execute a plan under an explicit configuration (without mutating the
    /// session's default).
    pub fn run_with(&self, plan: &LogicalPlan, config: &EngineConfig) -> Result<QueryOutcome> {
        let opts =
            StreamOptions { admission: Some(Arc::clone(&self.admission)), ..Default::default() };
        QueryRunner::new(config.clone()).stream_opts(plan, self.catalog.as_ref(), opts)?.collect()
    }

    /// Execute TPC-H query `number` (1-22) to completion.
    pub fn run_tpch(&self, number: usize) -> Result<QueryOutcome> {
        self.tpch_query(number)?.collect()
    }

    /// Execute a plan on the single-threaded reference executor (the
    /// correctness oracle / restart baseline).
    pub fn run_reference(&self, plan: &LogicalPlan) -> Result<Batch> {
        ReferenceExecutor::new(self.catalog.as_ref()).execute(plan)
    }

    /// Parse and bind a SQL `SELECT` statement against the session's
    /// catalog, returning a [`QueryHandle`] that can be executed on the
    /// simulated cluster or the reference executor.
    ///
    /// Malformed SQL returns a positioned error (line and column of the
    /// offending token) rather than panicking:
    ///
    /// ```
    /// use quokka::{EngineConfig, QuokkaSession};
    ///
    /// let session = QuokkaSession::tpch(0.002, 2).unwrap();
    /// let handle = session
    ///     .sql("SELECT count(*) AS orders FROM orders WHERE o_orderdate >= DATE '1995-01-01'")
    ///     .unwrap();
    /// let outcome = handle.collect().unwrap();
    /// assert_eq!(outcome.batch.schema().column_names(), vec!["orders"]);
    ///
    /// let err = session.sql("SELECT o_orderkey FROM oders").unwrap_err();
    /// assert!(err.to_string().contains("line 1"));
    /// ```
    /// When the session's plan cache is enabled, a repeated statement
    /// (modulo whitespace, case and comments — and, for re-planning
    /// purposes, literal values) skips parse, bind, decorrelation and
    /// optimization entirely; the executed query stamps
    /// [`QueryMetrics::plan_cache_hit`]. `EXPLAIN` statements and
    /// statements the cache cannot normalize fall through to the regular
    /// path.
    pub fn sql(&self, query: &str) -> Result<QueryHandle> {
        if !self.plan_cache.is_enabled() {
            let (explain, plan) = quokka_sql::plan_statement(query, self.catalog.as_ref())?;
            return Ok(QueryHandle { session: self.clone(), plan, explain, prepared: None });
        }
        // Normalization fails only where the lexer fails; let the regular
        // path report that identical, positioned error.
        let normalized = match quokka_sql::normalize(query) {
            Ok(n) if !n.is_explain() => n,
            _ => {
                let (explain, plan) = quokka_sql::plan_statement(query, self.catalog.as_ref())?;
                return Ok(QueryHandle { session: self.clone(), plan, explain, prepared: None });
            }
        };
        let generation = self.catalog.generation();
        let fingerprint = self.config.planning_fingerprint();
        if let Some(cached) = self.plan_cache.lookup(
            &normalized.template,
            generation,
            fingerprint,
            &normalized.literals,
        ) {
            return Ok(QueryHandle {
                session: self.clone(),
                plan: cached.naive.as_ref().clone(),
                explain: false,
                prepared: Some(PreparedPlan {
                    lowered: cached.lowered,
                    fingerprint,
                    cache_hit: true,
                }),
            });
        }
        let plan = quokka_sql::plan_query(query, self.catalog.as_ref())?;
        let lowered = Arc::new(self.lower(&plan)?);
        let naive = Arc::new(plan);
        self.plan_cache.insert(
            &normalized.template,
            generation,
            fingerprint,
            normalized.literals,
            CachedPlan { naive: Arc::clone(&naive), lowered: Arc::clone(&lowered) },
        );
        Ok(QueryHandle {
            session: self.clone(),
            plan: naive.as_ref().clone(),
            explain: false,
            // The lowering work is already done — the miss uses it too.
            prepared: Some(PreparedPlan { lowered, fingerprint, cache_hit: false }),
        })
    }

    /// Lower a bound plan exactly as the engine would before compiling it:
    /// the full optimizer when [`EngineConfig::optimize`] is on, otherwise
    /// just the mandatory subquery decorrelation.
    fn lower(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        if self.config.optimize {
            quokka_plan::Optimizer::with_catalog(self.catalog.as_ref()).optimize(plan)
        } else {
            quokka_plan::optimizer::decorrelate(plan.clone())
        }
    }

    /// Optimize a plan with the session's catalog statistics (the same
    /// rewrite [`run`](Self::run) applies before execution unless
    /// [`EngineConfig::optimize`] is disabled).
    pub fn optimize(&self, plan: &LogicalPlan) -> Result<LogicalPlan> {
        quokka_plan::Optimizer::with_catalog(self.catalog.as_ref()).optimize(plan)
    }

    /// Render a SQL statement's logical plan before and after optimization
    /// (a leading `EXPLAIN` keyword is accepted and ignored).
    ///
    /// ```
    /// use quokka::QuokkaSession;
    ///
    /// let session = QuokkaSession::tpch(0.002, 2).unwrap();
    /// let text = session
    ///     .explain("SELECT o_orderpriority FROM orders WHERE o_orderkey < 100")
    ///     .unwrap();
    /// assert!(text.contains("== Logical plan =="));
    /// assert!(text.contains("== Optimized plan =="));
    /// ```
    pub fn explain(&self, query: &str) -> Result<String> {
        let (_, plan) = quokka_sql::plan_statement(query, self.catalog.as_ref())?;
        self.explain_plan(&plan)
    }

    fn explain_plan(&self, plan: &LogicalPlan) -> Result<String> {
        let optimized = self.optimize(plan)?;
        Ok(format!(
            "== Logical plan ==\n{}== Optimized plan ==\n{}",
            plan.display_indent(),
            optimized.display_indent()
        ))
    }
}

impl std::fmt::Debug for QuokkaSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuokkaSession")
            .field("tables", &self.table_names())
            .field("config", &self.config)
            .finish()
    }
}

/// A bound query attached to its session, ready to execute.
///
/// Every frontend produces one: [`QuokkaSession::sql`],
/// [`QuokkaSession::query`] (raw plans / [`PlanBuilder`]),
/// [`QuokkaSession::tpch_query`], and [`DataFrame::handle`]. The plan has
/// already been parsed, name-resolved, and type-checked, so the remaining
/// failure modes are runtime ones (fault injection, storage errors).
///
/// The handle owns a (cheap) clone of its session, so it is `'static`:
/// it can outlive the binding it was created from, move across threads, and
/// back a long-lived [`BatchStream`]. A handle for an `EXPLAIN`-prefixed
/// statement does not execute: collecting or streaming it returns the plan
/// rendering (before and after optimization) as a one-column batch.
pub struct QueryHandle {
    session: QuokkaSession,
    plan: LogicalPlan,
    explain: bool,
    /// The already-lowered plan, when the SQL path planned (or cache-hit)
    /// this statement. Used iff the executing config's planning fingerprint
    /// still matches; otherwise the naive plan is lowered afresh.
    prepared: Option<PreparedPlan>,
}

/// A lowered plan carried by a [`QueryHandle`], with the fingerprint of the
/// planning-relevant config it was lowered under.
struct PreparedPlan {
    lowered: Arc<LogicalPlan>,
    fingerprint: u64,
    cache_hit: bool,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle").field("plan", &self.plan).finish_non_exhaustive()
    }
}

impl QueryHandle {
    /// The bound logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The session this handle executes against.
    pub fn session(&self) -> &QuokkaSession {
        &self.session
    }

    /// Whether the statement carried an `EXPLAIN` prefix.
    pub fn is_explain(&self) -> bool {
        self.explain
    }

    /// The plan rendered before and after optimization.
    pub fn explain(&self) -> String {
        self.session.explain_plan(&self.plan).unwrap_or_else(|e| {
            // A bound plan always renders; optimization errors are bugs but
            // must not panic an EXPLAIN. Show the naive plan and the error.
            format!(
                "== Logical plan ==\n{}== Optimizer error ==\n{e}\n",
                self.plan.display_indent()
            )
        })
    }

    /// The EXPLAIN rendering as a one-column result batch.
    fn explain_batch(&self) -> Batch {
        let lines: Vec<String> = self.explain().lines().map(|l| l.to_string()).collect();
        let schema = Schema::from_pairs(&[("plan", DataType::Utf8)]);
        Batch::try_new(schema.clone(), vec![Column::Utf8(lines)])
            .unwrap_or_else(|_| Batch::empty(schema))
    }

    /// Execute on the simulated cluster, streaming result batches as the
    /// sink stage commits them. The first batch is available while upstream
    /// stages are still running; [`BatchStream::metrics`] carries the final
    /// counters once the stream is exhausted.
    pub fn stream(&self) -> Result<BatchStream> {
        self.stream_with(&self.session.config)
    }

    /// Whether executing this handle will skip planning because the
    /// session's plan cache already held the lowered plan.
    pub fn is_plan_cache_hit(&self) -> bool {
        self.prepared.as_ref().is_some_and(|p| p.cache_hit)
    }

    /// Stream under an explicit engine configuration.
    pub fn stream_with(&self, config: &EngineConfig) -> Result<BatchStream> {
        if self.explain {
            let batch = self.explain_batch();
            let schema = batch.schema().clone();
            return Ok(BatchStream::ready(schema, vec![batch], QueryMetrics::default()));
        }
        let mut opts = StreamOptions {
            admission: Some(Arc::clone(&self.session.admission)),
            ..Default::default()
        };
        // A prepared plan is only valid under the config it was lowered
        // for; a different fingerprint (e.g. `collect_with` an
        // optimize-toggled config) falls back to lowering the naive plan.
        let plan = match &self.prepared {
            Some(prepared) if prepared.fingerprint == config.planning_fingerprint() => {
                opts.prelowered = true;
                opts.plan_cache_hit = prepared.cache_hit;
                prepared.lowered.as_ref()
            }
            _ => &self.plan,
        };
        QueryRunner::new(config.clone()).stream_opts(plan, self.session.catalog.as_ref(), opts)
    }

    /// Execute on the simulated cluster with the session's configuration,
    /// materializing the full result (a drained [`stream`](Self::stream)).
    /// For an `EXPLAIN` statement, return the plan rendering instead.
    pub fn collect(&self) -> Result<QueryOutcome> {
        self.collect_with(&self.session.config)
    }

    /// Execute under an explicit engine configuration.
    pub fn collect_with(&self, config: &EngineConfig) -> Result<QueryOutcome> {
        if self.explain {
            return Ok(QueryOutcome {
                batch: self.explain_batch(),
                metrics: QueryMetrics::default(),
            });
        }
        self.stream_with(config)?.collect()
    }

    /// Execute on the single-threaded reference executor.
    pub fn collect_reference(&self) -> Result<Batch> {
        if self.explain {
            return Ok(self.explain_batch());
        }
        self.session.run_reference(&self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_registers_and_lists_tables() {
        let session = QuokkaSession::new(EngineConfig::quokka(2));
        assert!(session.table_names().is_empty());
        let schema = Schema::from_pairs(&[("x", DataType::Int64)]);
        session.register_table(
            "t",
            schema.clone(),
            vec![Batch::try_new(schema, vec![Column::Int64(vec![1, 2, 3])]).unwrap()],
        );
        assert_eq!(session.table_names(), vec!["t".to_string()]);
        assert_eq!(session.config().cluster.workers, 2);
    }

    #[test]
    fn tpch_session_runs_a_simple_query() {
        let session = QuokkaSession::tpch(0.002, 2).unwrap();
        let outcome = session.run_tpch(6).unwrap();
        let expected = session.run_reference(&quokka_tpch::query(6).unwrap()).unwrap();
        assert!(same_result(&outcome.batch, &expected));
    }

    #[test]
    fn query_handles_outlive_their_session_binding() {
        let handle = {
            let session = QuokkaSession::tpch(0.002, 2).unwrap();
            session.sql("SELECT count(*) AS n FROM orders").unwrap()
        };
        // The original binding is gone; the handle's session clone keeps the
        // catalog alive.
        let outcome = handle.collect().unwrap();
        assert_eq!(outcome.batch.schema().column_names(), vec!["n"]);
    }

    #[test]
    fn all_frontends_share_one_handle_type() {
        let session = QuokkaSession::tpch(0.002, 2).unwrap();
        let from_plan = session.tpch_query(6).unwrap();
        let from_sql = session.sql(tpch::queries::sql::sql_text(6).unwrap()).unwrap();
        let from_df = dataframe::tpch::query(&session, 6).unwrap().handle();
        let a = from_plan.collect_reference().unwrap();
        let b = from_sql.collect_reference().unwrap();
        let c = from_df.collect_reference().unwrap();
        assert!(same_result(&a, &b));
        assert!(same_result(&b, &c));
    }
}
