/root/repo/target/debug/examples/tpch_benchmark-144eb925abcb7d9f.d: examples/tpch_benchmark.rs Cargo.toml

/root/repo/target/debug/examples/libtpch_benchmark-144eb925abcb7d9f.rmeta: examples/tpch_benchmark.rs Cargo.toml

examples/tpch_benchmark.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
