/root/repo/target/debug/deps/quokka_storage-de5f3f947bf59299.d: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/debug/deps/libquokka_storage-de5f3f947bf59299.rmeta: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

crates/storage/src/lib.rs:
crates/storage/src/backup.rs:
crates/storage/src/cost.rs:
crates/storage/src/durable.rs:
