/root/repo/target/debug/deps/table1-0c75f7de75a13ee2.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0c75f7de75a13ee2: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
