/root/repo/target/debug/deps/quokka_gcs-ae51eaf62cadc7c2.d: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

/root/repo/target/debug/deps/libquokka_gcs-ae51eaf62cadc7c2.rmeta: crates/gcs/src/lib.rs crates/gcs/src/kv.rs crates/gcs/src/tables.rs

crates/gcs/src/lib.rs:
crates/gcs/src/kv.rs:
crates/gcs/src/tables.rs:
