//! Run a selection of TPC-H queries with Quokka (pipelined + write-ahead
//! lineage) and with the SparkSQL-like baseline (stagewise execution), and
//! print the speedups — a miniature of the paper's Fig. 6.
//!
//! Run with: `cargo run --release --example tpch_benchmark`
//! Environment: `QUOKKA_SF` overrides the scale factor (default 0.01).

use quokka::{EngineConfig, QuokkaSession};
use std::time::Instant;

fn main() -> quokka::Result<()> {
    let scale_factor = std::env::var("QUOKKA_SF").ok().and_then(|v| v.parse().ok()).unwrap_or(0.01);
    let workers = 4;
    println!("generating TPC-H data at scale factor {scale_factor} ...");
    let session = QuokkaSession::tpch(scale_factor, workers)?;

    let queries = [1usize, 3, 5, 6, 9, 10, 12, 14, 18];
    println!("{:<6} {:>12} {:>14} {:>9}", "query", "quokka (s)", "stagewise (s)", "speedup");
    for q in queries {
        let plan = quokka::tpch::query(q)?;

        let start = Instant::now();
        let quokka_outcome = session.run(&plan)?;
        let quokka_time = start.elapsed();

        let start = Instant::now();
        let stagewise_outcome = session.run_with(&plan, &EngineConfig::sparklike(workers))?;
        let stagewise_time = start.elapsed();

        assert!(
            quokka::same_result(&quokka_outcome.batch, &stagewise_outcome.batch),
            "Q{q}: execution modes disagree"
        );
        println!(
            "Q{:<5} {:>12.3} {:>14.3} {:>8.2}x",
            q,
            quokka_time.as_secs_f64(),
            stagewise_time.as_secs_f64(),
            stagewise_time.as_secs_f64() / quokka_time.as_secs_f64().max(1e-9),
        );
    }
    Ok(())
}
