//! The unified error type used across the workspace.

use crate::ids::{ChannelAddr, TaskName, WorkerId};
use std::fmt;
use std::time::Duration;

/// Convenience alias used by every crate in the workspace.
pub type Result<T, E = QuokkaError> = std::result::Result<T, E>;

/// Errors produced by the engine and its substrates.
#[derive(Debug, Clone, PartialEq)]
pub enum QuokkaError {
    /// A GCS transaction aborted because a precondition failed
    /// (e.g. compare-and-swap mismatch on a versioned key).
    TransactionAborted(String),
    /// A required object (partition, key, table, ...) was not found.
    NotFound(String),
    /// The target of a push or read was a failed worker.
    WorkerFailed(WorkerId),
    /// A task attempted to consume an input whose lineage has not been
    /// committed — this is a bug if it ever surfaces, because Algorithm 1
    /// must skip such tasks instead.
    UncommittedInput { task: TaskName, input: TaskName },
    /// A schema mismatch between an operator and the batch it received.
    SchemaMismatch { expected: String, actual: String },
    /// Expression or plan level type error.
    TypeError(String),
    /// The plan is malformed (unknown column, invalid join keys, ...).
    PlanError(String),
    /// A channel has no live worker to run on after a failure.
    Unschedulable(ChannelAddr),
    /// The query was cancelled (e.g. the restart baseline abandoning a run).
    Cancelled(String),
    /// The query exceeded its configured deadline (`EngineConfig::query_timeout`).
    Timeout { elapsed: Duration, limit: Duration },
    /// Admission control rejected the query: the concurrent-admission limit
    /// is saturated and the bounded wait queue is full. This is the typed
    /// "shed load" signal — the engine refuses up front instead of queueing
    /// unboundedly or timing out under overload. Clients may retry later;
    /// the engine's own retry loops must not.
    Overloaded {
        /// Queries executing when this one was rejected.
        running: u32,
        /// Queries already waiting for admission.
        queued: u32,
        /// The configured bound on the wait queue.
        queue_limit: u32,
    },
    /// A transient transport fault (e.g. a chaos-injected dropped push).
    /// Always worth retrying.
    Transient(String),
    /// A retryable operation was retried up to its bounded attempt budget
    /// and still failed. Fatal: carries the last underlying error.
    RetriesExhausted { operation: String, attempts: u32, last: Box<QuokkaError> },
    /// Invalid configuration (bad builder input or a malformed environment
    /// override such as `QUOKKA_WATCHDOG_SECS`).
    Config(String),
    /// Failure of the underlying (simulated) storage service.
    Storage(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for QuokkaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuokkaError::TransactionAborted(msg) => write!(f, "GCS transaction aborted: {msg}"),
            QuokkaError::NotFound(what) => write!(f, "not found: {what}"),
            QuokkaError::WorkerFailed(w) => write!(f, "worker {w} has failed"),
            QuokkaError::UncommittedInput { task, input } => {
                write!(f, "task {task} tried to consume input {input} with uncommitted lineage")
            }
            QuokkaError::SchemaMismatch { expected, actual } => {
                write!(f, "schema mismatch: expected [{expected}], got [{actual}]")
            }
            QuokkaError::TypeError(msg) => write!(f, "type error: {msg}"),
            QuokkaError::PlanError(msg) => write!(f, "plan error: {msg}"),
            QuokkaError::Unschedulable(ch) => {
                write!(f, "channel {ch} cannot be scheduled on any live worker")
            }
            QuokkaError::Cancelled(msg) => write!(f, "cancelled: {msg}"),
            QuokkaError::Timeout { elapsed, limit } => {
                write!(f, "query deadline exceeded: ran {elapsed:?}, limit {limit:?}")
            }
            QuokkaError::Overloaded { running, queued, queue_limit } => {
                write!(
                    f,
                    "overloaded: {running} queries running and {queued} queued \
                     (queue limit {queue_limit}); retry later"
                )
            }
            QuokkaError::Transient(msg) => write!(f, "transient fault: {msg}"),
            QuokkaError::RetriesExhausted { operation, attempts, last } => {
                write!(f, "{operation} failed after {attempts} attempts; last error: {last}")
            }
            QuokkaError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            QuokkaError::Storage(msg) => write!(f, "storage error: {msg}"),
            QuokkaError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for QuokkaError {}

impl QuokkaError {
    /// Shorthand for an [`QuokkaError::Internal`] with a formatted message.
    pub fn internal(msg: impl Into<String>) -> Self {
        QuokkaError::Internal(msg.into())
    }

    /// Shorthand for a [`QuokkaError::PlanError`] with a formatted message.
    pub fn plan(msg: impl Into<String>) -> Self {
        QuokkaError::PlanError(msg.into())
    }

    /// Shorthand for a [`QuokkaError::Config`] with a formatted message.
    pub fn config(msg: impl Into<String>) -> Self {
        QuokkaError::Config(msg.into())
    }

    /// True if this error is transient from the point of view of a
    /// TaskManager: the operation should be retried (with backoff) rather
    /// than the query failing — input lineage not yet visible, a downstream
    /// worker currently failed (recovery will reassign it), a CAS abort on
    /// a contended GCS key, or an injected transport fault.
    ///
    /// Every error is either retryable or fatal ([`QuokkaError::is_fatal`]
    /// is the exact complement); retry loops must give up with a typed
    /// fatal error — usually [`QuokkaError::RetriesExhausted`] — once their
    /// bounded attempt budget is spent.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            QuokkaError::TransactionAborted(_)
                | QuokkaError::WorkerFailed(_)
                | QuokkaError::NotFound(_)
                | QuokkaError::Transient(_)
        )
    }

    /// True if retrying cannot help: plan/type/config errors, invariant
    /// violations, exhausted retry budgets, cancellation, deadline expiry
    /// and admission rejection (overload is the *client's* signal to back
    /// off — the engine retrying internally would amplify the overload).
    /// The complement of [`QuokkaError::is_retryable`].
    pub fn is_fatal(&self) -> bool {
        !self.is_retryable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TaskName;

    #[test]
    fn display_is_informative() {
        let e = QuokkaError::UncommittedInput {
            task: TaskName::new(1, 0, 2),
            input: TaskName::new(0, 3, 7),
        };
        let s = e.to_string();
        assert!(s.contains("(1,0,2)"));
        assert!(s.contains("(0,3,7)"));
    }

    #[test]
    fn retryability_classification() {
        assert!(QuokkaError::WorkerFailed(3).is_retryable());
        assert!(QuokkaError::TransactionAborted("cas".into()).is_retryable());
        assert!(QuokkaError::Transient("dropped push".into()).is_retryable());
        assert!(!QuokkaError::TypeError("x".into()).is_retryable());
        assert!(!QuokkaError::Internal("x".into()).is_retryable());
    }

    #[test]
    fn fatal_is_the_complement_of_retryable() {
        let timeout =
            QuokkaError::Timeout { elapsed: Duration::from_secs(3), limit: Duration::from_secs(2) };
        let exhausted = QuokkaError::RetriesExhausted {
            operation: "replay push".into(),
            attempts: 8,
            last: Box::new(QuokkaError::WorkerFailed(1)),
        };
        let overloaded = QuokkaError::Overloaded { running: 4, queued: 8, queue_limit: 8 };
        for e in [
            timeout.clone(),
            exhausted.clone(),
            overloaded.clone(),
            QuokkaError::Config("QUOKKA_WATCHDOG_SECS=abc".into()),
            QuokkaError::Cancelled("dropped".into()),
            QuokkaError::WorkerFailed(0),
            QuokkaError::Transient("x".into()),
        ] {
            assert_ne!(e.is_fatal(), e.is_retryable(), "{e} must be exactly one of the two");
        }
        assert!(timeout.is_fatal());
        assert!(exhausted.is_fatal());
        assert!(overloaded.is_fatal(), "overload must surface to the client, not be retried");
        assert!(timeout.to_string().contains("deadline"));
        assert!(exhausted.to_string().contains("8 attempts"));
        assert!(overloaded.to_string().contains("queue limit 8"));
    }
}
