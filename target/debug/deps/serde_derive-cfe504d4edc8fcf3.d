/root/repo/target/debug/deps/serde_derive-cfe504d4edc8fcf3.d: crates/shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde_derive-cfe504d4edc8fcf3.rmeta: crates/shims/serde_derive/src/lib.rs Cargo.toml

crates/shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
