//! Multi-process cluster tests: real `quokka-workerd` OS processes shuffle
//! over real TCP sockets, and SIGKILLing one mid-query must leave the
//! result batch-exact — the paper's machine-failure experiment (§V-D) run
//! against actual process death instead of simulated worker kills.

use quokka::engine::cluster::{run_process_query, KillPlan, ProcessQuery};
use quokka::process::tpch_process_inputs;
use quokka::{same_result, EngineConfig, QuokkaSession, TransportConfig};
use std::time::Duration;

fn workerd_bin() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_BIN_EXE_quokka-workerd"))
}

fn process_config(workers: u32, suspicion_ms: u64) -> EngineConfig {
    let mut config = EngineConfig::quokka(workers)
        .with_transport(TransportConfig::tcp())
        .with_watchdog(Duration::from_secs(20));
    config.cluster.suspicion_timeout = Duration::from_millis(suspicion_ms);
    config
}

fn run(
    query: usize,
    sf: f64,
    workers: u32,
    processes: u32,
    suspicion_ms: u64,
    kill: Option<KillPlan>,
) -> quokka::QueryOutcome {
    let config = process_config(workers, suspicion_ms);
    let inputs = tpch_process_inputs(query, sf, &config).expect("plan the query");
    run_process_query(ProcessQuery {
        config,
        graph: inputs.graph,
        output_schema: inputs.output_schema,
        tables: inputs.tables,
        workerd: workerd_bin(),
        workerd_args: vec![
            "--query".into(),
            query.to_string(),
            "--sf".into(),
            sf.to_string(),
            "--workers".into(),
            workers.to_string(),
            "--suspicion-ms".into(),
            suspicion_ms.to_string(),
        ],
        processes,
        kill,
    })
    .expect("process-mode query")
}

/// Clean run: a query split over two worker processes matches the
/// single-threaded reference executor, and the per-peer wire stats prove
/// the shuffle actually crossed process boundaries.
#[test]
fn two_process_cluster_matches_reference() {
    let sf = 0.002;
    let session = QuokkaSession::tpch(sf, 3).expect("generate TPC-H data");
    let plan = quokka::tpch::query(3).unwrap();
    let expected = session.run_reference(&plan).unwrap();

    // Three workers over two processes: the ranges are uneven (2 + 1), so
    // this also exercises the remainder-spreading worker placement.
    let outcome = run(3, sf, 3, 2, 1_000, None);
    assert!(
        same_result(&expected, &outcome.batch),
        "Q3 across two worker processes diverged from the reference executor"
    );
    let peers = &outcome.metrics.transport_peers;
    assert!(!peers.is_empty(), "cross-process shuffle must report wire traffic");
    let bytes: u64 = peers.iter().map(|p| p.bytes_sent).sum();
    assert!(bytes > 0, "cross-process shuffle sent no bytes");
}

/// SIGKILL one worker process mid-query. The driver's failure detector
/// notices the silence, escalates suspicion to a kill, reassigns the dead
/// process's channels and replays from lineage — and the answer is still
/// batch-exact. The kill point is derived from a printed seed, so any
/// failure reproduces by rerunning with that seed.
#[test]
fn sigkill_worker_process_mid_query_recovers_exactly() {
    let sf = 0.005;
    let (workers, processes) = (4u32, 2u32);
    let session = QuokkaSession::tpch(sf, workers).expect("generate TPC-H data");
    let plan = quokka::tpch::query(3).unwrap();
    let expected = session.run_reference(&plan).unwrap();

    let seed: u64 = match std::env::var("QUOKKA_PROC_SEED") {
        Ok(v) => v.parse().expect("QUOKKA_PROC_SEED must be an integer"),
        Err(_) => 42,
    };
    // Deterministic mapping from seed to the kill point: which process dies
    // and after how many GCS commits. Progress-based, so the kill lands at
    // the same logical point on every run with this seed.
    let victim_process = (seed % processes as u64) as usize;
    let after_transactions = 5 + seed % 16;
    println!(
        "process chaos case: QUOKKA_PROC_SEED={seed} -> victim_process={victim_process} \
         after_transactions={after_transactions}"
    );

    let outcome =
        run(3, sf, workers, processes, 150, Some(KillPlan { victim_process, after_transactions }));
    assert!(
        same_result(&expected, &outcome.batch),
        "Q3 diverged after SIGKILLing worker process {victim_process}; \
         reproduce with QUOKKA_PROC_SEED={seed}"
    );
    assert!(
        outcome.metrics.failures >= 1,
        "the detector never registered the killed process (seed {seed})"
    );
    assert!(
        outcome.metrics.recovery_tasks > 0,
        "recovery replayed nothing after a process kill (seed {seed})"
    );
}
