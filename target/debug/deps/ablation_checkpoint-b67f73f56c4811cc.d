/root/repo/target/debug/deps/ablation_checkpoint-b67f73f56c4811cc.d: crates/bench/src/bin/ablation_checkpoint.rs

/root/repo/target/debug/deps/libablation_checkpoint-b67f73f56c4811cc.rmeta: crates/bench/src/bin/ablation_checkpoint.rs

crates/bench/src/bin/ablation_checkpoint.rs:
