//! The Global Control Store (GCS).
//!
//! The paper's Quokka implementation uses a Redis server on the head node as
//! a persistent, transactional data store (§IV-B): it holds the committed
//! lineage, the outstanding task table, the location of data partitions, and
//! control flags, and it is the *single source of truth* for the execution
//! state of the whole system. Individual TaskManagers are stateless and
//! poll the GCS; the coordinator performs fault recovery purely by editing
//! the GCS ("reconciliation", §IV-C).
//!
//! This crate provides:
//!
//! * [`kv`] — a small in-memory transactional key-value store with versioned
//!   keys, optimistic compare-and-set preconditions, prefix scans and atomic
//!   multi-key commits (the Redis `MULTI`/`EXEC` analogue). A configurable
//!   per-operation latency models the head-node round trip.
//! * [`remote`] — the process-mode protocol: a pooled TCP client plus the
//!   opcode/framing vocabulary that lets worker processes run against the
//!   driver's authoritative store through [`KvStore::remote`], mirroring how
//!   TaskManagers reach the head-node Redis over the network.
//! * [`tables`] — typed views over the KV store matching the schema Quokka
//!   needs: the lineage table (`G.L` in Algorithm 1), the task table
//!   (`G.T`), the channel registry, the partition directory and the control
//!   flags used to pause TaskManagers during recovery.
//!
//! The GCS is assumed not to fail (it lives on the head node, like the
//! paper's Redis), which is why committing lineage to it counts as
//! "persistent" in the write-ahead-lineage protocol.

pub mod kv;
pub mod remote;
pub mod tables;

pub use kv::{KvStore, Transaction, Version};
pub use remote::ControlClient;
pub use tables::{
    ChannelState, Gcs, LineageRecord, LineageSource, PartitionEntry, ReplayRequest, TaskCommit,
    TaskEntry,
};
