/root/repo/target/debug/deps/quokka_bench-e6af409b21192066.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_bench-e6af409b21192066.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
