/root/repo/target/debug/deps/quokka_plan-c934bbe06f2e927e.d: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs Cargo.toml

/root/repo/target/debug/deps/libquokka_plan-c934bbe06f2e927e.rmeta: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs Cargo.toml

crates/plan/src/lib.rs:
crates/plan/src/aggregate.rs:
crates/plan/src/catalog.rs:
crates/plan/src/expr.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
crates/plan/src/reference.rs:
crates/plan/src/stage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
