//! Compute kernels over [`Column`]s and [`Batch`]es.
//!
//! These are the "single-node kernels" the paper's implementation borrows
//! from DuckDB/Polars: element-wise arithmetic and comparisons, boolean
//! logic, LIKE matching, row hashing, hash partitioning (the basis of every
//! shuffle) and multi-key sorting.

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::{DataType, ScalarValue};
use quokka_common::{QuokkaError, Result};
use std::cmp::Ordering;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

/// Element-wise arithmetic between two columns of equal length.
///
/// Integer inputs stay integer for `+ - *`; division and any float input
/// produce `Float64`.
pub fn arith(op: ArithOp, left: &Column, right: &Column) -> Result<Column> {
    if left.len() != right.len() {
        return Err(QuokkaError::internal(format!(
            "arith length mismatch: {} vs {}",
            left.len(),
            right.len()
        )));
    }
    match (left, right, op) {
        (Column::Int64(a), Column::Int64(b), ArithOp::Add) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x + y).collect()))
        }
        (Column::Int64(a), Column::Int64(b), ArithOp::Sub) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x - y).collect()))
        }
        (Column::Int64(a), Column::Int64(b), ArithOp::Mul) => {
            Ok(Column::Int64(a.iter().zip(b).map(|(x, y)| x * y).collect()))
        }
        _ => {
            let a = left.to_f64_vec()?;
            let b = right.to_f64_vec()?;
            let out: Vec<f64> = a
                .iter()
                .zip(&b)
                .map(|(x, y)| match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                })
                .collect();
            Ok(Column::Float64(out))
        }
    }
}

/// Element-wise comparison between two columns of equal length, producing a
/// boolean mask. Numeric types (Int64/Float64/Date) are coerced to f64;
/// strings and booleans compare directly.
pub fn compare(op: CmpOp, left: &Column, right: &Column) -> Result<Column> {
    if left.len() != right.len() {
        return Err(QuokkaError::internal(format!(
            "compare length mismatch: {} vs {}",
            left.len(),
            right.len()
        )));
    }
    let mask: Vec<bool> = match (left, right) {
        (Column::Utf8(a), Column::Utf8(b)) => {
            a.iter().zip(b).map(|(x, y)| apply_ord(op, x.cmp(y))).collect()
        }
        (Column::Bool(a), Column::Bool(b)) => {
            a.iter().zip(b).map(|(x, y)| apply_ord(op, x.cmp(y))).collect()
        }
        _ => {
            let a = left.to_f64_vec()?;
            let b = right.to_f64_vec()?;
            a.iter().zip(&b).map(|(x, y)| apply_ord(op, x.total_cmp(y))).collect()
        }
    };
    Ok(Column::Bool(mask))
}

fn apply_ord(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::NotEq => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::LtEq => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::GtEq => ord != Ordering::Less,
    }
}

/// Broadcast a scalar to a column of length `len`.
pub fn broadcast(value: &ScalarValue, len: usize) -> Column {
    match value {
        ScalarValue::Int64(v) => Column::Int64(vec![*v; len]),
        ScalarValue::Float64(v) => Column::Float64(vec![*v; len]),
        ScalarValue::Utf8(v) => Column::Utf8(vec![v.clone(); len]),
        ScalarValue::Bool(v) => Column::Bool(vec![*v; len]),
        ScalarValue::Date(v) => Column::Date(vec![*v; len]),
    }
}

/// Element-wise logical AND.
pub fn and(left: &Column, right: &Column) -> Result<Column> {
    let a = left.as_bool()?;
    let b = right.as_bool()?;
    Ok(Column::Bool(a.iter().zip(b).map(|(x, y)| *x && *y).collect()))
}

/// Element-wise logical OR.
pub fn or(left: &Column, right: &Column) -> Result<Column> {
    let a = left.as_bool()?;
    let b = right.as_bool()?;
    Ok(Column::Bool(a.iter().zip(b).map(|(x, y)| *x || *y).collect()))
}

/// Element-wise logical NOT.
pub fn not(col: &Column) -> Result<Column> {
    Ok(Column::Bool(col.as_bool()?.iter().map(|x| !x).collect()))
}

/// SQL `LIKE` with `%` (any substring) and `_` (any single char) wildcards.
pub fn like(col: &Column, pattern: &str) -> Result<Column> {
    let values = col.as_utf8()?;
    Ok(Column::Bool(values.iter().map(|v| like_match(v, pattern)).collect()))
}

/// Whether `value` matches the SQL LIKE `pattern`.
pub fn like_match(value: &str, pattern: &str) -> bool {
    fn rec(v: &[u8], p: &[u8]) -> bool {
        if p.is_empty() {
            return v.is_empty();
        }
        match p[0] {
            b'%' => {
                // Match zero or more characters.
                (0..=v.len()).any(|skip| rec(&v[skip..], &p[1..]))
            }
            b'_' => !v.is_empty() && rec(&v[1..], &p[1..]),
            c => !v.is_empty() && v[0] == c && rec(&v[1..], &p[1..]),
        }
    }
    rec(value.as_bytes(), pattern.as_bytes())
}

/// `value IN (list)` membership test.
pub fn in_list(col: &Column, list: &[ScalarValue]) -> Result<Column> {
    let n = col.len();
    let mut mask = vec![false; n];
    for (i, m) in mask.iter_mut().enumerate() {
        let v = col.get(i);
        *m = list.iter().any(|item| v.total_cmp(item) == Ordering::Equal);
    }
    Ok(Column::Bool(mask))
}

/// Row-wise hash of the key columns at `key_indices`.
pub fn hash_rows(batch: &Batch, key_indices: &[usize]) -> Vec<u64> {
    let mut hashes = vec![0xA5A5_5A5A_DEAD_BEEFu64; batch.num_rows()];
    for &k in key_indices {
        batch.column(k).hash_into(&mut hashes);
    }
    hashes
}

/// Partition a batch into `partitions` output batches by hashing the key
/// columns. Every input row lands in exactly one output batch; rows keep
/// their relative order within a partition (important for determinism of
/// lineage replay).
pub fn hash_partition(batch: &Batch, key_indices: &[usize], partitions: usize) -> Result<Vec<Batch>> {
    assert!(partitions > 0);
    if partitions == 1 {
        return Ok(vec![batch.clone()]);
    }
    let hashes = hash_rows(batch, key_indices);
    let mut indices: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for (row, h) in hashes.iter().enumerate() {
        indices[(h % partitions as u64) as usize].push(row);
    }
    indices.into_iter().map(|idx| batch.take(&idx)).collect()
}

/// A sort key: column index plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub ascending: bool,
}

impl SortKey {
    pub fn asc(column: usize) -> Self {
        SortKey { column, ascending: true }
    }
    pub fn desc(column: usize) -> Self {
        SortKey { column, ascending: false }
    }
}

/// Stable argsort of a batch by the given sort keys.
pub fn sort_indices(batch: &Batch, keys: &[SortKey]) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
    indices.sort_by(|&a, &b| compare_rows(batch, a, batch, b, keys));
    indices
}

/// Compare row `a` of `left` with row `b` of `right` under `keys` (the
/// column indices refer to both batches, which must share a schema).
pub fn compare_rows(left: &Batch, a: usize, right: &Batch, b: usize, keys: &[SortKey]) -> Ordering {
    for key in keys {
        let va = left.column(key.column).get(a);
        let vb = right.column(key.column).get(b);
        let ord = va.total_cmp(&vb);
        let ord = if key.ascending { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Sort a batch by the given keys.
pub fn sort_batch(batch: &Batch, keys: &[SortKey]) -> Result<Batch> {
    let idx = sort_indices(batch, keys);
    batch.take(&idx)
}

/// Cast a column to another data type. Supports the numeric/date coercions
/// the TPC-H plans need.
pub fn cast(col: &Column, to: DataType) -> Result<Column> {
    if col.data_type() == to {
        return Ok(col.clone());
    }
    match (col, to) {
        (Column::Int64(v), DataType::Float64) => {
            Ok(Column::Float64(v.iter().map(|&x| x as f64).collect()))
        }
        (Column::Float64(v), DataType::Int64) => {
            Ok(Column::Int64(v.iter().map(|&x| x as i64).collect()))
        }
        (Column::Date(v), DataType::Int64) => {
            Ok(Column::Int64(v.iter().map(|&x| x as i64).collect()))
        }
        (Column::Int64(v), DataType::Date) => {
            Ok(Column::Date(v.iter().map(|&x| x as i32).collect()))
        }
        (from, to) => Err(QuokkaError::TypeError(format!(
            "unsupported cast {} -> {}",
            from.data_type(),
            to
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn batch() -> Batch {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int64),
            ("v", DataType::Float64),
            ("s", DataType::Utf8),
        ]);
        Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![3, 1, 2, 1]),
                Column::Float64(vec![1.0, 4.0, 2.0, 3.0]),
                Column::Utf8(vec!["c".into(), "a".into(), "b".into(), "a".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn arithmetic_integer_and_float() {
        let a = Column::Int64(vec![4, 9]);
        let b = Column::Int64(vec![2, 3]);
        assert_eq!(arith(ArithOp::Add, &a, &b).unwrap(), Column::Int64(vec![6, 12]));
        assert_eq!(arith(ArithOp::Mul, &a, &b).unwrap(), Column::Int64(vec![8, 27]));
        assert_eq!(arith(ArithOp::Div, &a, &b).unwrap(), Column::Float64(vec![2.0, 3.0]));
        let f = Column::Float64(vec![0.5, 0.5]);
        assert_eq!(arith(ArithOp::Sub, &a, &f).unwrap(), Column::Float64(vec![3.5, 8.5]));
        assert!(arith(ArithOp::Add, &a, &Column::Int64(vec![1])).is_err());
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let a = Column::Int64(vec![1, 2, 3]);
        let b = Column::Float64(vec![2.0, 2.0, 2.0]);
        assert_eq!(
            compare(CmpOp::Lt, &a, &b).unwrap(),
            Column::Bool(vec![true, false, false])
        );
        assert_eq!(
            compare(CmpOp::GtEq, &a, &b).unwrap(),
            Column::Bool(vec![false, true, true])
        );
        let s1 = Column::Utf8(vec!["x".into(), "y".into()]);
        let s2 = Column::Utf8(vec!["x".into(), "z".into()]);
        assert_eq!(compare(CmpOp::Eq, &s1, &s2).unwrap(), Column::Bool(vec![true, false]));

        let t = Column::Bool(vec![true, false]);
        let f = Column::Bool(vec![true, true]);
        assert_eq!(and(&t, &f).unwrap(), Column::Bool(vec![true, false]));
        assert_eq!(or(&t, &f).unwrap(), Column::Bool(vec![true, true]));
        assert_eq!(not(&t).unwrap(), Column::Bool(vec![false, true]));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO BRUSHED STEEL", "PROMO%"));
        assert!(like_match("small shiny gold", "%shiny%"));
        assert!(!like_match("ECONOMY ANODIZED", "PROMO%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(like_match("anything at all", "%"));
        let col = Column::Utf8(vec!["MEDIUM POLISHED".into(), "SMALL PLATED".into()]);
        assert_eq!(like(&col, "MEDIUM%").unwrap(), Column::Bool(vec![true, false]));
    }

    #[test]
    fn in_list_membership() {
        let col = Column::Utf8(vec!["MAIL".into(), "SHIP".into(), "AIR".into()]);
        let list = vec![ScalarValue::from("MAIL"), ScalarValue::from("SHIP")];
        assert_eq!(in_list(&col, &list).unwrap(), Column::Bool(vec![true, true, false]));
        let nums = Column::Int64(vec![1, 5, 9]);
        let list = vec![ScalarValue::Int64(5)];
        assert_eq!(in_list(&nums, &list).unwrap(), Column::Bool(vec![false, true, false]));
    }

    #[test]
    fn hash_partition_is_complete_and_disjoint() {
        let b = batch();
        let parts = hash_partition(&b, &[0], 3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Batch::num_rows).sum();
        assert_eq!(total, b.num_rows());
        // Equal keys land in the same partition.
        let key_part: Vec<Option<usize>> = (0..4)
            .map(|row| {
                let key = b.value(row, 0);
                parts.iter().position(|p| {
                    (0..p.num_rows()).any(|r| p.value(r, 0) == key && p.value(r, 2) == b.value(row, 2))
                })
            })
            .collect();
        assert_eq!(key_part[1], key_part[3], "rows with key=1 must co-locate");
    }

    #[test]
    fn single_partition_shortcut() {
        let b = batch();
        let parts = hash_partition(&b, &[0], 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], b);
    }

    #[test]
    fn sorting_multi_key() {
        let b = batch();
        let sorted = sort_batch(&b, &[SortKey::asc(0), SortKey::desc(1)]).unwrap();
        assert_eq!(sorted.column(0), &Column::Int64(vec![1, 1, 2, 3]));
        assert_eq!(sorted.column(1), &Column::Float64(vec![4.0, 3.0, 2.0, 1.0]));
        let idx = sort_indices(&b, &[SortKey::desc(2)]);
        assert_eq!(idx[0], 0); // "c" first
    }

    #[test]
    fn cast_kernels() {
        assert_eq!(
            cast(&Column::Int64(vec![1, 2]), DataType::Float64).unwrap(),
            Column::Float64(vec![1.0, 2.0])
        );
        assert_eq!(
            cast(&Column::Float64(vec![1.9]), DataType::Int64).unwrap(),
            Column::Int64(vec![1])
        );
        assert_eq!(
            cast(&Column::Date(vec![3]), DataType::Int64).unwrap(),
            Column::Int64(vec![3])
        );
        assert!(cast(&Column::Utf8(vec![]), DataType::Int64).is_err());
        // identity cast
        assert_eq!(cast(&Column::Bool(vec![true]), DataType::Bool).unwrap(), Column::Bool(vec![true]));
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast(&ScalarValue::Int64(7), 3), Column::Int64(vec![7, 7, 7]));
        assert_eq!(broadcast(&ScalarValue::from("x"), 2).len(), 2);
    }
}
