//! Pooled byte slabs for the TCP transport's send path.
//!
//! Every push over the wire is encoded into a slab drawn from this pool and
//! the slab is returned by the send thread once the frame is on the socket,
//! so steady-state shuffle traffic allocates nothing per push (the design
//! timely-dataflow's communication stack uses for its send buffers). The
//! pool is deliberately tiny: a `Mutex<Vec<Vec<u8>>>` is plenty at the
//! frame rates the engine produces, and the bounded per-peer send queues
//! already cap how many slabs can be in flight at once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A pool of reusable byte buffers.
#[derive(Debug)]
pub struct SlabPool {
    slabs: Mutex<Vec<Vec<u8>>>,
    /// Initial capacity of a freshly allocated slab.
    slab_bytes: usize,
    /// Idle slabs beyond this are freed instead of pooled.
    max_pooled: usize,
    /// Total fresh allocations (pool misses), for observability.
    allocations: AtomicU64,
}

impl SlabPool {
    pub fn new(slab_bytes: usize, max_pooled: usize) -> Self {
        SlabPool {
            slabs: Mutex::new(Vec::new()),
            slab_bytes: slab_bytes.max(64),
            max_pooled,
            allocations: AtomicU64::new(0),
        }
    }

    /// Take an empty slab, reusing a pooled one when available.
    pub fn acquire(&self) -> Vec<u8> {
        if let Some(slab) = self.slabs.lock().expect("slab pool poisoned").pop() {
            return slab;
        }
        self.allocations.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(self.slab_bytes)
    }

    /// Return a slab to the pool. Its contents are cleared; its capacity
    /// (possibly grown by a large frame) is kept for reuse.
    pub fn release(&self, mut slab: Vec<u8>) {
        slab.clear();
        let mut slabs = self.slabs.lock().expect("slab pool poisoned");
        if slabs.len() < self.max_pooled {
            slabs.push(slab);
        }
    }

    /// Idle slabs currently pooled.
    pub fn pooled(&self) -> usize {
        self.slabs.lock().expect("slab pool poisoned").len()
    }

    /// Fresh allocations performed so far (pool misses).
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_reuses_capacity() {
        let pool = SlabPool::new(1024, 4);
        let mut a = pool.acquire();
        assert_eq!(pool.allocations(), 1);
        a.extend_from_slice(&[1, 2, 3]);
        let grown = a.capacity();
        pool.release(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.acquire();
        assert!(b.is_empty(), "released slabs come back cleared");
        assert!(b.capacity() >= grown);
        assert_eq!(pool.allocations(), 1, "second acquire was a pool hit");
    }

    #[test]
    fn pool_is_bounded() {
        let pool = SlabPool::new(64, 2);
        let slabs: Vec<_> = (0..4).map(|_| pool.acquire()).collect();
        assert_eq!(pool.allocations(), 4);
        for s in slabs {
            pool.release(s);
        }
        assert_eq!(pool.pooled(), 2, "excess slabs are freed, not pooled");
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let pool = SlabPool::new(256, 8);
        for _ in 0..100 {
            let mut s = pool.acquire();
            s.extend_from_slice(&[0u8; 200]);
            pool.release(s);
        }
        assert_eq!(pool.allocations(), 1);
    }
}
