/root/repo/target/release/deps/quokka_storage-50fceb8e7edc6776.d: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/release/deps/libquokka_storage-50fceb8e7edc6776.rlib: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

/root/repo/target/release/deps/libquokka_storage-50fceb8e7edc6776.rmeta: crates/storage/src/lib.rs crates/storage/src/backup.rs crates/storage/src/cost.rs crates/storage/src/durable.rs

crates/storage/src/lib.rs:
crates/storage/src/backup.rs:
crates/storage/src/cost.rs:
crates/storage/src/durable.rs:
