/root/repo/target/debug/examples/fault_recovery-11b0a9ef411c9944.d: examples/fault_recovery.rs

/root/repo/target/debug/examples/fault_recovery-11b0a9ef411c9944: examples/fault_recovery.rs

examples/fault_recovery.rs:
