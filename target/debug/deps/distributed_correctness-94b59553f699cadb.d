/root/repo/target/debug/deps/distributed_correctness-94b59553f699cadb.d: tests/distributed_correctness.rs

/root/repo/target/debug/deps/libdistributed_correctness-94b59553f699cadb.rmeta: tests/distributed_correctness.rs

tests/distributed_correctness.rs:
