/root/repo/target/debug/deps/kernels-4d40d8085c0e647d.d: crates/bench/src/bin/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-4d40d8085c0e647d.rmeta: crates/bench/src/bin/kernels.rs Cargo.toml

crates/bench/src/bin/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
