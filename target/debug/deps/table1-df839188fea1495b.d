/root/repo/target/debug/deps/table1-df839188fea1495b.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-df839188fea1495b.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
