//! Transport data-plane harness: in-process inbox calls vs real TCP.
//!
//! Two measurements per transport backend:
//!
//! 1. **Raw shuffle throughput** — push a stream of Int64 slices from one
//!    worker to another through a [`DataPlane`] (cost model disabled) and
//!    time until the destination inbox holds every slice. For `tcp` this
//!    covers the whole pipeline the engine uses: wire serialization into
//!    pooled slabs, the per-peer send thread with its bounded queue, frame
//!    reassembly, and inbox delivery over a real loopback socket.
//! 2. **End-to-end query wall clock** — TPC-H Q3 and Q9 on the distributed
//!    runtime under each transport, with results cross-checked against each
//!    other and the reference executor.
//!
//! Results go to `BENCH_transport.json`. The run **fails** (non-zero exit)
//! if a slice is lost or reordered in the microbenchmark, or if the two
//! transports ever disagree on a query result — TCP is only a valid
//! backend if it is indistinguishable from the in-process one.
//!
//! Run with: `cargo run --release -p quokka-bench --bin transport`
//!
//! Environment knobs: `QUOKKA_SF` (default 0.01), `QUOKKA_WORKERS` (default
//! 4), `QUOKKA_BENCH_SLICES` (default 256), `QUOKKA_BENCH_ROWS` (rows per
//! slice, default 8192), `QUOKKA_COST_SCALE` (default 0.02, queries only),
//! `QUOKKA_BENCH_OUT` (default `BENCH_transport.json`).

use quokka::batch::{Batch, Column, DataType, Schema};
use quokka::common::{ChannelAddr, MetricsRegistry, TransportConfig};
use quokka::net::DataPlane;
use quokka::storage::CostModel;
use quokka::{same_result, CostModelConfig, EngineConfig, QuokkaSession};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct MicroResult {
    transport: &'static str,
    slices: usize,
    rows_per_slice: usize,
    seconds: f64,
    bytes: u64,
}

impl MicroResult {
    fn rows_per_sec(&self) -> f64 {
        (self.slices * self.rows_per_slice) as f64 / self.seconds
    }
    fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.seconds
    }
}

struct QueryResult {
    query: usize,
    transport: &'static str,
    seconds: f64,
    shuffle_bytes: u64,
    /// Logical (decoded) bytes behind `shuffle_bytes` — the same shuffles
    /// priced in plain columns. The gap is the wire encodings' saving.
    shuffle_raw_bytes: u64,
    backup_bytes: u64,
    backup_raw_bytes: u64,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn slice(seq: usize, rows: usize) -> Batch {
    let tag = seq as i64;
    Batch::try_new(
        Schema::from_pairs(&[("x", DataType::Int64)]),
        vec![Column::Int64((0..rows as i64).map(|i| i ^ tag).collect())],
    )
    .expect("build bench slice")
}

/// Push `slices` cross-worker slices through a fresh data plane on the
/// given transport and time until they are all sitting in the destination
/// inbox. Panics if anything is lost — throughput of a lossy transport is
/// not a number worth reporting.
fn run_micro(
    config: &TransportConfig,
    label: &'static str,
    slices: usize,
    rows: usize,
) -> MicroResult {
    let metrics = Arc::new(MetricsRegistry::new());
    let plane = DataPlane::with_config(
        2,
        CostModel::new(CostModelConfig::zero()),
        Arc::clone(&metrics),
        config,
    )
    .expect("build data plane");
    let producer = ChannelAddr::new(0, 0);
    let consumer = ChannelAddr::new(1, 0);

    let mut bytes = 0u64;
    let start = Instant::now();
    for seq in 0..slices {
        let batch = slice(seq, rows);
        bytes += batch.byte_size() as u64;
        plane
            .push(0, 1, consumer, producer.task(seq as u32), vec![batch])
            .expect("push bench slice");
    }
    // TCP delivery is asynchronous (send thread + reassembly); wait for the
    // last frame to land before stopping the clock.
    let inbox = plane.server(1).expect("destination server");
    let deadline = Instant::now() + Duration::from_secs(60);
    while inbox.available_from(consumer, producer, 0).len() < slices {
        assert!(Instant::now() < deadline, "{label}: slices never all arrived");
        std::thread::yield_now();
    }
    let seconds = start.elapsed().as_secs_f64();

    // Integrity gate: every slice arrived exactly once, contents intact.
    for seq in 0..slices {
        let got = inbox
            .peek(consumer, producer.task(seq as u32))
            .unwrap_or_else(|| panic!("{label}: slice {seq} missing from inbox"));
        let want = slice(seq, rows);
        assert!(
            got.len() == 1 && same_result(&want, &got[0]),
            "{label}: slice {seq} corrupted in flight"
        );
    }

    MicroResult { transport: label, slices, rows_per_slice: rows, seconds, bytes }
}

fn main() {
    let scale_factor = env_f64("QUOKKA_SF", 0.01);
    let cost_scale = env_f64("QUOKKA_COST_SCALE", 0.02);
    let workers = env_usize("QUOKKA_WORKERS", 4) as u32;
    let slices = env_usize("QUOKKA_BENCH_SLICES", 256).max(1);
    let rows = env_usize("QUOKKA_BENCH_ROWS", 8192).max(1);
    let out_path =
        std::env::var("QUOKKA_BENCH_OUT").unwrap_or_else(|_| "BENCH_transport.json".to_string());

    let backends: [(&'static str, TransportConfig); 2] =
        [("inproc", TransportConfig::inproc()), ("tcp", TransportConfig::tcp())];

    let mut micro = Vec::new();
    for (label, config) in &backends {
        let m = run_micro(config, label, slices, rows);
        eprintln!(
            "[micro] {label:<6} {slices} x {rows} rows in {:.3}s  ({:.2} Mrows/s, {:.1} MB/s)",
            m.seconds,
            m.rows_per_sec() / 1e6,
            m.bytes_per_sec() / 1e6,
        );
        micro.push(m);
    }

    eprintln!("[transport] generating TPC-H data at SF {scale_factor} ...");
    let session = QuokkaSession::tpch(scale_factor, workers).expect("generate TPC-H data");
    let mut queries = Vec::new();
    for q in [3usize, 9] {
        let plan = quokka::tpch::query(q).expect("TPC-H plan");
        let expected = session.run_reference(&plan).expect("reference run");
        for (label, transport) in &backends {
            let config = EngineConfig::quokka(workers)
                .with_cost(CostModelConfig::scaled(cost_scale))
                .with_transport(*transport);
            let start = Instant::now();
            let outcome = session.run_with(&plan, &config).expect("distributed run");
            let seconds = start.elapsed().as_secs_f64();
            assert!(
                same_result(&expected, &outcome.batch),
                "Q{q} under {label} diverged from the reference executor"
            );
            eprintln!(
                "[query] Q{q} {label:<6} {seconds:.3}s  shuffle {} B (raw {} B)",
                outcome.metrics.shuffle_bytes, outcome.metrics.shuffle_raw_bytes
            );
            queries.push(QueryResult {
                query: q,
                transport: label,
                seconds,
                shuffle_bytes: outcome.metrics.shuffle_bytes,
                shuffle_raw_bytes: outcome.metrics.shuffle_raw_bytes,
                backup_bytes: outcome.metrics.backup_bytes,
                backup_raw_bytes: outcome.metrics.backup_raw_bytes,
            });
        }
    }

    // Hand-rolled JSON (no serde in this environment).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale_factor\": {scale_factor},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"micro\": [\n");
    for (i, m) in micro.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{}\", \"slices\": {}, \"rows_per_slice\": {}, \
             \"seconds\": {:.6}, \"rows_per_sec\": {:.1}, \"bytes_per_sec\": {:.1}}}{}\n",
            m.transport,
            m.slices,
            m.rows_per_slice,
            m.seconds,
            m.rows_per_sec(),
            m.bytes_per_sec(),
            if i + 1 < micro.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"queries\": [\n");
    for (i, q) in queries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": {}, \"transport\": \"{}\", \"seconds\": {:.6}, \
             \"shuffle_bytes\": {}, \"shuffle_raw_bytes\": {}, \
             \"backup_bytes\": {}, \"backup_raw_bytes\": {}}}{}\n",
            q.query,
            q.transport,
            q.seconds,
            q.shuffle_bytes,
            q.shuffle_raw_bytes,
            q.backup_bytes,
            q.backup_raw_bytes,
            if i + 1 < queries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");
}
