//! Concurrent serving bench: plan cache and admission control under load.
//!
//! A pool of client threads fires a mixed TPC-H workload — SQL statements
//! and DataFrame-built queries — at one shared [`QuokkaSession`], in three
//! phases:
//!
//! * **cold** — plan cache disabled: every statement pays the full
//!   parse → bind → decorrelate → optimize path.
//! * **warm** — plan cache enabled and pre-warmed: repeated statements
//!   skip planning entirely (observable via `QueryMetrics::plan_cache_hit`).
//! * **overload** — tight admission limits (few slots, short queue) under
//!   more clients than capacity: excess arrivals must be *rejected* with a
//!   typed `Overloaded` error, never lost or timed out, while every
//!   admitted query still returns correct results.
//!
//! Each phase reports p50/p99 end-to-end latency, p50/p99 **plan-path**
//! latency (the time `session.sql` takes — the piece the cache removes),
//! and QPS, all written to `BENCH_serving.json`. The run **fails**
//! (non-zero exit) if the warm plan path is not well below the cold one, if
//! the overload phase fails to reject gracefully, or if any result diverges
//! from the reference executor. The plan-path gate re-measures once before
//! failing, so a scheduler hiccup does not flake CI.
//!
//! Run with: `cargo run --release -p quokka-bench --bin serving`
//!
//! Environment knobs: `QUOKKA_SF` (default 0.005), `QUOKKA_WORKERS`
//! (default 2), `QUOKKA_CLIENTS` (default 4), `QUOKKA_SERVING_ITERS`
//! (default 3), `QUOKKA_BENCH_OUT` (default `BENCH_serving.json`).

use quokka::{
    same_result, AdmissionConfig, Batch, EngineConfig, PlanCacheConfig, QuokkaError, QuokkaSession,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The serving mix: moderate TPC-H queries spanning scans, joins,
/// semi-joins and aggregation, each answerable in tens of milliseconds at
/// the bench scale factor.
const WORKLOAD: &[usize] = &[1, 3, 6, 12, 14];

#[derive(Default)]
struct PhaseTallies {
    /// End-to-end latency of every completed query.
    latencies: Vec<Duration>,
    /// `session.sql` latency of every SQL-frontend query (the plan path).
    plan_times: Vec<Duration>,
    completed: u64,
    rejected: u64,
    cache_hits: u64,
    /// Queries that failed with anything other than `Overloaded`.
    errors: Vec<String>,
    /// Queries whose rows diverged from the reference executor.
    divergences: u64,
    /// Wire traffic summed over every completed query's transport peers.
    /// Zero on the in-process transport; real counts under
    /// `QUOKKA_TRANSPORT=tcp`.
    wire_bytes_sent: u64,
    /// Highest per-peer send-queue depth seen across the phase — how close
    /// the load came to engaging backpressure.
    send_queue_peak: u64,
}

struct PhaseResult {
    name: &'static str,
    wall: Duration,
    tallies: PhaseTallies,
}

impl PhaseResult {
    fn qps(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.tallies.completed as f64 / self.wall.as_secs_f64()
        }
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn sorted(mut v: Vec<Duration>) -> Vec<Duration> {
    v.sort();
    v
}

/// Run `clients` threads, each firing `iters` passes over the workload at
/// `session`. Even-numbered clients use the SQL frontend (these exercise
/// the plan cache); odd-numbered ones build the same queries through the
/// DataFrame API.
fn run_phase(
    name: &'static str,
    session: &QuokkaSession,
    clients: usize,
    iters: usize,
    expected: &Arc<BTreeMap<usize, Batch>>,
) -> PhaseResult {
    let tallies = Arc::new(Mutex::new(PhaseTallies::default()));
    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..clients {
        let session = session.clone();
        let tallies = Arc::clone(&tallies);
        let expected = Arc::clone(expected);
        handles.push(std::thread::spawn(move || {
            for iter in 0..iters {
                for step in 0..WORKLOAD.len() {
                    // Stagger the starting point so clients do not run in
                    // lockstep over the same statement.
                    let number = WORKLOAD[(step + client + iter) % WORKLOAD.len()];
                    let t0 = Instant::now();
                    let built = if client % 2 == 0 {
                        let text = quokka::tpch::queries::sql::sql_text(number)
                            .expect("workload query has SQL text");
                        let handle = session.sql(text);
                        let plan_time = t0.elapsed();
                        if let Ok(h) = &handle {
                            let mut t = tallies.lock().unwrap();
                            t.plan_times.push(plan_time);
                            if h.is_plan_cache_hit() {
                                t.cache_hits += 1;
                            }
                        }
                        handle
                    } else {
                        quokka::dataframe::tpch::query(&session, number).map(|f| f.handle())
                    };
                    let outcome = built.and_then(|h| h.collect());
                    let latency = t0.elapsed();
                    let mut t = tallies.lock().unwrap();
                    match outcome {
                        Ok(outcome) => {
                            t.completed += 1;
                            t.latencies.push(latency);
                            let peers = &outcome.metrics.transport_peers;
                            t.wire_bytes_sent += peers.iter().map(|p| p.bytes_sent).sum::<u64>();
                            t.send_queue_peak = t
                                .send_queue_peak
                                .max(peers.iter().map(|p| p.send_queue_peak).max().unwrap_or(0));
                            if !same_result(&outcome.batch, &expected[&number]) {
                                t.divergences += 1;
                            }
                        }
                        Err(QuokkaError::Overloaded { .. }) => t.rejected += 1,
                        Err(other) => t.errors.push(format!("q{number}: {other}")),
                    }
                }
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread panicked");
    }
    let wall = start.elapsed();
    let tallies = Arc::try_unwrap(tallies).ok().expect("clients joined").into_inner().unwrap();
    PhaseResult { name, wall, tallies }
}

fn phase_json(r: &PhaseResult) -> String {
    let lat = sorted(r.tallies.latencies.clone());
    let plan = sorted(r.tallies.plan_times.clone());
    format!(
        "    {{\"name\": \"{}\", \"completed\": {}, \"rejected\": {}, \"qps\": {:.2}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"plan_p50_us\": {:.1}, \"plan_p99_us\": {:.1}, \
         \"cache_hits\": {}, \"wire_bytes_sent\": {}, \"send_queue_peak\": {}, \
         \"wall_ms\": {:.1}}}",
        r.name,
        r.tallies.completed,
        r.tallies.rejected,
        r.qps(),
        percentile(&lat, 0.50).as_secs_f64() * 1e3,
        percentile(&lat, 0.99).as_secs_f64() * 1e3,
        percentile(&plan, 0.50).as_secs_f64() * 1e6,
        percentile(&plan, 0.99).as_secs_f64() * 1e6,
        r.tallies.cache_hits,
        r.tallies.wire_bytes_sent,
        r.tallies.send_queue_peak,
        r.wall.as_secs_f64() * 1e3,
    )
}

fn report(r: &PhaseResult) {
    let lat = sorted(r.tallies.latencies.clone());
    let plan = sorted(r.tallies.plan_times.clone());
    eprintln!(
        "[serving] {:<9} {:>4} ok {:>3} rejected  {:>7.1} qps  e2e p50 {:>8.3?} p99 {:>8.3?}  \
         plan p50 {:>9.3?} p99 {:>9.3?}  cache hits {:>3}",
        r.name,
        r.tallies.completed,
        r.tallies.rejected,
        r.qps(),
        percentile(&lat, 0.50),
        percentile(&lat, 0.99),
        percentile(&plan, 0.50),
        percentile(&plan, 0.99),
        r.tallies.cache_hits,
    );
}

fn check_clean(r: &PhaseResult) {
    assert!(
        r.tallies.errors.is_empty(),
        "[serving] {}: unexpected errors: {:?}",
        r.name,
        r.tallies.errors
    );
    assert_eq!(
        r.tallies.divergences, 0,
        "[serving] {}: {} queries diverged from the reference",
        r.name, r.tallies.divergences
    );
}

fn main() {
    let scale_factor =
        std::env::var("QUOKKA_SF").ok().and_then(|v| v.parse().ok()).unwrap_or(0.005);
    let workers = std::env::var("QUOKKA_WORKERS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let clients: usize =
        std::env::var("QUOKKA_CLIENTS").ok().and_then(|v| v.parse().ok()).unwrap_or(4);
    let iters: usize =
        std::env::var("QUOKKA_SERVING_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let out_path =
        std::env::var("QUOKKA_BENCH_OUT").unwrap_or_else(|_| "BENCH_serving.json".to_string());

    eprintln!("[serving] generating TPC-H data at SF {scale_factor} ...");
    let config = EngineConfig::quokka(workers);
    let session = QuokkaSession::new(config.clone());
    quokka::TpchGenerator::new(scale_factor, 0xC0FFEE)
        .register_all(session.catalog())
        .expect("generate TPC-H data");

    // Reference answers, computed once and shared by every phase's checks.
    let mut expected = BTreeMap::new();
    for &number in WORKLOAD {
        let batch = session
            .tpch_query(number)
            .expect("workload plan")
            .collect_reference()
            .expect("reference run");
        expected.insert(number, batch);
    }
    let expected = Arc::new(expected);

    // Phase sessions: cold planning (cache off), warm serving (cache on,
    // pre-warmed), and an overloaded deployment (2 slots, 2 queue spots).
    let cold_session =
        session.clone().with_config(config.clone().with_plan_cache(PlanCacheConfig::disabled()));
    let warm_session = session.clone();
    for &number in WORKLOAD {
        let text = quokka::tpch::queries::sql::sql_text(number).expect("workload SQL");
        warm_session.sql(text).expect("pre-warm planning");
    }
    let overload_clients = (clients * 2).max(6);
    let overload_session =
        session.clone().with_config(config.clone().with_admission(AdmissionConfig::bounded(2, 2)));

    // The plan-path gate re-measures once before failing: the speedup is
    // orders of magnitude (hashmap hit vs full frontend), so one retry is
    // only ever needed when the first run hit a scheduler hiccup.
    let mut attempt = 0;
    let (cold, warm) = loop {
        attempt += 1;
        let cold = run_phase("cold", &cold_session, clients, iters, &expected);
        let warm = run_phase("warm", &warm_session, clients, iters, &expected);
        report(&cold);
        report(&warm);
        check_clean(&cold);
        check_clean(&warm);
        let cold_plan = percentile(&sorted(cold.tallies.plan_times.clone()), 0.50);
        let warm_plan = percentile(&sorted(warm.tallies.plan_times.clone()), 0.50);
        if warm_plan.as_secs_f64() < cold_plan.as_secs_f64() * 0.5 {
            break (cold, warm);
        }
        assert!(
            attempt < 2,
            "[serving] plan-path gate failed twice: warm p50 {warm_plan:?} vs cold p50 \
             {cold_plan:?} (expected < 50%)"
        );
        eprintln!("[serving] plan-path gate missed on attempt {attempt}; re-measuring once");
    };
    let overload = run_phase("overload", &overload_session, overload_clients, iters, &expected);
    report(&overload);
    check_clean(&overload);

    let phases = [&cold, &warm, &overload];
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale_factor\": {scale_factor},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"clients\": {clients},\n"));
    json.push_str(&format!("  \"overload_clients\": {overload_clients},\n"));
    json.push_str(&format!(
        "  \"workload\": [{}],\n",
        WORKLOAD.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
    ));
    json.push_str("  \"phases\": [\n");
    for (i, phase) in phases.iter().enumerate() {
        json.push_str(&phase_json(phase));
        json.push_str(if i + 1 < phases.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let cache = warm_session.plan_cache().stats();
    json.push_str(&format!(
        "  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n",
        cache.hits, cache.misses, cache.evictions
    ));
    let admission = overload_session.admission().stats();
    json.push_str(&format!(
        "  \"admission\": {{\"admitted\": {}, \"rejected\": {}, \"queued\": {}, \
         \"peak_running\": {}, \"peak_queued\": {}}}\n",
        admission.admitted,
        admission.rejected,
        admission.queued,
        admission.peak_running,
        admission.peak_queued
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");

    // Regression gates beyond the warm-vs-cold plan path (checked above).
    assert_eq!(cold.tallies.cache_hits, 0, "cold phase must never hit the cache");
    assert!(
        warm.tallies.cache_hits == warm.tallies.plan_times.len() as u64,
        "every warm SQL statement must hit the cache ({}/{} hit)",
        warm.tallies.cache_hits,
        warm.tallies.plan_times.len()
    );
    assert!(
        overload.tallies.rejected > 0,
        "overload phase must reject some arrivals (got {} completions, 0 rejections)",
        overload.tallies.completed
    );
    assert!(overload.tallies.completed > 0, "overload phase must still serve admitted queries");
    let stats = overload_session.admission().stats();
    assert!(stats.peak_running <= 2, "admission cap of 2 exceeded: {}", stats.peak_running);
    assert!(stats.peak_queued <= 2, "queue bound of 2 exceeded: {}", stats.peak_queued);
    assert_eq!(
        overload_session.admission().running(),
        0,
        "all admission slots must be released when the phase drains"
    );
    eprintln!("[serving] gates passed: warm plan path beats cold, overload rejects gracefully");
}
