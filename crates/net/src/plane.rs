//! The cluster-wide data plane: routing pushes between workers.
//!
//! `DataPlane` owns the *policy* of a push — destination liveness, chaos
//! injection, network cost charging, shuffle accounting — and delegates the
//! actual delivery to a pluggable [`Transport`] backend: the in-process
//! [`InprocTransport`] by default, or the socket-backed
//! [`TcpTransport`] when configured with
//! [`TransportKind::Tcp`]. Everything layered on top (chaos suites, retry
//! loops, recovery) is backend-agnostic.

use crate::flight::FlightServer;
use crate::tcp::{DeliverFn, TcpTransport};
use crate::transport::{InprocTransport, Transport};
use quokka_batch::Batch;
use quokka_common::ids::{ChannelAddr, PartitionName, WorkerId};
use quokka_common::metrics::MetricsRegistry;
use quokka_common::{QuokkaError, Result, TransportConfig, TransportKind};
use quokka_storage::CostModel;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-destination chaos injection state: the next `drops` pushes to a
/// destination fail with a transient error, and queued `(count, delay)`
/// entries slow down upcoming pushes.
#[derive(Debug, Default)]
struct InjectedFaults {
    drops: AtomicU32,
    /// FIFO of `(remaining pushes, delay)` injections. A queue — not a
    /// single shared duration — so overlapping injections towards the same
    /// destination each keep their own delay instead of clobbering one
    /// another.
    delays: Mutex<VecDeque<(u32, Duration)>>,
}

impl InjectedFaults {
    fn take(counter: &AtomicU32) -> bool {
        counter.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)).is_ok()
    }

    /// Enqueue `count` delayed pushes of `delay` each.
    fn push_delay(&self, count: u32, delay: Duration) {
        if count == 0 {
            return;
        }
        self.delays.lock().expect("delay queue poisoned").push_back((count, delay));
    }

    /// Consume one delayed push, if any are queued.
    fn take_delay(&self) -> Option<Duration> {
        let mut delays = self.delays.lock().expect("delay queue poisoned");
        let (remaining, delay) = delays.front_mut()?;
        let delay = *delay;
        *remaining -= 1;
        if *remaining == 0 {
            delays.pop_front();
        }
        Some(delay)
    }
}

/// Registry of every worker's flight server plus the network cost model.
#[derive(Debug)]
pub struct DataPlane {
    servers: Vec<Arc<FlightServer>>,
    faults: Vec<InjectedFaults>,
    cost: CostModel,
    metrics: Arc<MetricsRegistry>,
    transport: Box<dyn Transport>,
}

impl DataPlane {
    /// Create a data plane for `workers` workers on the default in-process
    /// transport.
    pub fn new(workers: u32, cost: CostModel, metrics: Arc<MetricsRegistry>) -> Self {
        Self::with_config(workers, cost, metrics, &TransportConfig::inproc())
            .expect("in-process transport construction is infallible")
    }

    /// Create a data plane with an explicit transport configuration:
    /// `TransportKind::Inproc` delivers pushes as direct inbox calls,
    /// `TransportKind::Tcp` routes every cross-worker push through pooled
    /// slabs and real loopback sockets.
    pub fn with_config(
        workers: u32,
        cost: CostModel,
        metrics: Arc<MetricsRegistry>,
        config: &TransportConfig,
    ) -> Result<Self> {
        let servers: Vec<Arc<FlightServer>> =
            (0..workers).map(|w| Arc::new(FlightServer::new(w))).collect();
        let transport: Box<dyn Transport> = match config.kind {
            TransportKind::Inproc => Box::new(InprocTransport::new(servers.clone())),
            TransportKind::Tcp => {
                let deliver = Self::deliver_into(servers.clone());
                Box::new(TcpTransport::loopback(workers, config, Arc::clone(&metrics), deliver)?)
            }
        };
        Ok(Self::from_parts(servers, cost, metrics, transport))
    }

    /// Assemble a data plane from pre-built flight servers and an already
    /// wired transport. This is the process-mode entry point: a worker
    /// process builds its servers, binds a [`TcpTransport`], exchanges peer
    /// addresses through the GCS, and only then owns a routable plane.
    pub fn from_parts(
        servers: Vec<Arc<FlightServer>>,
        cost: CostModel,
        metrics: Arc<MetricsRegistry>,
        transport: Box<dyn Transport>,
    ) -> Self {
        DataPlane {
            faults: (0..servers.len()).map(|_| InjectedFaults::default()).collect(),
            servers,
            cost,
            metrics,
            transport,
        }
    }

    /// The delivery callback a socket transport needs: push every
    /// reassembled frame straight into the destination worker's inbox.
    /// Fire-and-forget — a push racing a kill is dropped here, exactly the
    /// slice loss lineage replay repairs.
    pub fn deliver_into(inboxes: Vec<Arc<FlightServer>>) -> DeliverFn {
        Arc::new(move |_source, destination, consumer, producer, batches| {
            if let Some(server) = inboxes.get(destination as usize) {
                let _ = server.push(consumer, producer, batches);
            }
        })
    }

    /// Which transport backend delivers pushes ("inproc" or "tcp").
    pub fn transport_kind(&self) -> &'static str {
        self.transport.kind()
    }

    /// Chaos injection: make the next `count` pushes towards `destination`
    /// fail with a retryable [`QuokkaError::Transient`] error.
    pub fn inject_drop_pushes(&self, destination: WorkerId, count: u32) {
        if let Some(f) = self.faults.get(destination as usize) {
            f.drops.fetch_add(count, Ordering::SeqCst);
        }
    }

    /// Chaos injection: delay the next `count` pushes towards `destination`
    /// by `delay` before delivering them. Injections queue up: overlapping
    /// calls for the same destination are applied in FIFO order, each with
    /// its own delay.
    pub fn inject_delay_pushes(&self, destination: WorkerId, count: u32, delay: Duration) {
        if let Some(f) = self.faults.get(destination as usize) {
            f.push_delay(count, delay);
        }
    }

    pub fn num_workers(&self) -> u32 {
        self.servers.len() as u32
    }

    /// The flight server of one worker.
    pub fn server(&self, worker: WorkerId) -> Result<&Arc<FlightServer>> {
        self.servers
            .get(worker as usize)
            .ok_or_else(|| QuokkaError::NotFound(format!("worker {worker}")))
    }

    /// Push a slice from `source` worker to the worker hosting the consumer
    /// channel. Cross-worker pushes are charged to the network cost model
    /// and counted as shuffle bytes; local pushes are free, like the paper's
    /// same-machine flight transfers. Delivery itself is the transport's
    /// job: synchronous for `inproc`, queued onto the peer's send lane for
    /// `tcp`.
    pub fn push(
        &self,
        source: WorkerId,
        destination: WorkerId,
        consumer: ChannelAddr,
        producer: PartitionName,
        batches: Vec<Batch>,
    ) -> Result<()> {
        let server = self.server(destination)?;
        if server.is_failed() {
            return Err(QuokkaError::WorkerFailed(destination));
        }
        let faults = &self.faults[destination as usize];
        if let Some(delay) = faults.take_delay() {
            std::thread::sleep(delay);
        }
        if InjectedFaults::take(&faults.drops) {
            return Err(QuokkaError::Transient(format!(
                "injected push drop towards worker {destination}"
            )));
        }
        if source != destination {
            // Charge what actually crosses the network: the wire-encoded
            // frame payload (compressed column encodings included), not the
            // plain in-memory footprint. The raw footprint is recorded
            // alongside so the encoded-vs-raw gap is observable per edge.
            let raw: u64 = batches.iter().map(|b| b.byte_size() as u64).sum();
            let mut frame = Vec::new();
            quokka_batch::wire::encode_batches_into(&batches, &mut frame);
            let bytes = frame.len() as u64;
            self.cost.charge_network(bytes);
            self.metrics.add_shuffle_bytes(bytes, raw);
            self.metrics.add_shuffle_edge(producer.stage, consumer.stage, bytes, raw);
        }
        self.transport.send(source, destination, consumer, producer, batches)
    }

    /// Kill a worker: its flight server rejects all traffic and loses its
    /// inbox, and the transport tears down any connection state towards it.
    pub fn fail_worker(&self, worker: WorkerId) -> Result<()> {
        self.server(worker)?.fail();
        self.transport.fail_peer(worker);
        Ok(())
    }

    /// Whether a worker's flight server is still alive.
    pub fn is_worker_alive(&self, worker: WorkerId) -> bool {
        self.server(worker).map(|s| !s.is_failed()).unwrap_or(false)
    }

    /// Workers whose flight servers are still alive.
    pub fn live_workers(&self) -> Vec<WorkerId> {
        self.servers.iter().filter(|s| !s.is_failed()).map(|s| s.worker()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{Column, DataType, Schema};
    use quokka_common::ids::TaskName;

    fn plane() -> DataPlane {
        DataPlane::new(3, CostModel::free(), MetricsRegistry::new())
    }

    fn batch() -> Batch {
        Batch::try_new(
            Schema::from_pairs(&[("x", DataType::Int64)]),
            vec![Column::Int64(vec![1, 2, 3])],
        )
        .unwrap()
    }

    /// The bytes one pushed batch contributes to shuffle accounting: its
    /// wire-encoded frame payload.
    fn wire_len(b: &Batch) -> u64 {
        let mut buf = Vec::new();
        quokka_batch::wire::encode_batches_into(std::slice::from_ref(b), &mut buf);
        buf.len() as u64
    }

    #[test]
    fn push_routes_to_destination_server() {
        let p = plane();
        assert_eq!(p.transport_kind(), "inproc");
        let consumer = ChannelAddr::new(1, 2);
        let producer = TaskName::new(0, 0, 0);
        p.push(0, 2, consumer, producer, vec![batch()]).unwrap();
        assert!(p.server(2).unwrap().has_slice(consumer, producer));
        assert!(!p.server(0).unwrap().has_slice(consumer, producer));
        assert!(p.server(9).is_err());
    }

    #[test]
    fn cross_worker_pushes_count_as_shuffle_bytes() {
        let metrics = MetricsRegistry::new();
        let p = DataPlane::new(2, CostModel::free(), Arc::clone(&metrics));
        let consumer = ChannelAddr::new(1, 0);
        p.push(0, 0, consumer, TaskName::new(0, 0, 0), vec![batch()]).unwrap();
        let local_only = metrics.snapshot(std::time::Duration::ZERO).shuffle_bytes;
        assert_eq!(local_only, 0, "local pushes are not shuffled over the network");
        p.push(0, 1, consumer, TaskName::new(0, 0, 1), vec![batch()]).unwrap();
        let snap = metrics.snapshot(std::time::Duration::ZERO);
        assert_eq!(snap.shuffle_bytes, wire_len(&batch()));
        assert_eq!(snap.shuffle_raw_bytes, batch().byte_size() as u64);
        assert_eq!(snap.shuffle_edges.len(), 1);
        assert_eq!(snap.shuffle_edges[0].bytes, snap.shuffle_bytes);
        assert_eq!(snap.shuffle_edges[0].raw_bytes, snap.shuffle_raw_bytes);
    }

    #[test]
    fn injected_drops_and_delays_are_consumed_then_clear() {
        let p = plane();
        let consumer = ChannelAddr::new(1, 0);
        p.inject_drop_pushes(2, 2);
        for _ in 0..2 {
            let err = p.push(0, 2, consumer, TaskName::new(0, 0, 0), vec![batch()]);
            assert!(matches!(err, Err(QuokkaError::Transient(_))));
            assert!(err.unwrap_err().is_retryable());
        }
        // Budget consumed: pushes flow again, and other destinations were
        // never affected.
        p.push(0, 2, consumer, TaskName::new(0, 0, 0), vec![batch()]).unwrap();
        p.push(0, 1, consumer, TaskName::new(0, 0, 1), vec![batch()]).unwrap();

        p.inject_delay_pushes(1, 1, Duration::from_micros(50));
        let start = std::time::Instant::now();
        p.push(0, 1, consumer, TaskName::new(0, 0, 2), vec![batch()]).unwrap();
        assert!(start.elapsed() >= Duration::from_micros(50));
    }

    #[test]
    fn overlapping_delay_injections_queue_instead_of_clobbering() {
        // Regression test: the delay duration used to live in one shared
        // cell per destination, so a second injection overwrote the first.
        let f = InjectedFaults::default();
        f.push_delay(2, Duration::from_micros(100));
        f.push_delay(1, Duration::from_micros(7));
        assert_eq!(f.take_delay(), Some(Duration::from_micros(100)));
        assert_eq!(f.take_delay(), Some(Duration::from_micros(100)));
        assert_eq!(f.take_delay(), Some(Duration::from_micros(7)));
        assert_eq!(f.take_delay(), None);
        f.push_delay(0, Duration::from_micros(9));
        assert_eq!(f.take_delay(), None, "zero-count injections are ignored");

        // And end-to-end: both injections apply with their own budgets.
        let p = plane();
        let consumer = ChannelAddr::new(1, 0);
        p.inject_delay_pushes(1, 1, Duration::from_micros(300));
        p.inject_delay_pushes(1, 1, Duration::from_micros(50));
        let start = std::time::Instant::now();
        p.push(0, 1, consumer, TaskName::new(0, 0, 0), vec![batch()]).unwrap();
        p.push(0, 1, consumer, TaskName::new(0, 0, 1), vec![batch()]).unwrap();
        assert!(start.elapsed() >= Duration::from_micros(350));
        // The queue is drained; a third push is not delayed.
        let start = std::time::Instant::now();
        p.push(0, 1, consumer, TaskName::new(0, 0, 2), vec![batch()]).unwrap();
        assert!(start.elapsed() < Duration::from_micros(300));
    }

    #[test]
    fn failed_worker_rejects_pushes_and_leaves_cluster() {
        let p = plane();
        assert_eq!(p.live_workers(), vec![0, 1, 2]);
        p.fail_worker(1).unwrap();
        assert!(!p.is_worker_alive(1));
        assert!(p.is_worker_alive(0));
        assert_eq!(p.live_workers(), vec![0, 2]);
        let err = p.push(0, 1, ChannelAddr::new(1, 0), TaskName::new(0, 0, 0), vec![]);
        assert!(matches!(err, Err(QuokkaError::WorkerFailed(1))));
        assert_eq!(p.num_workers(), 3);
    }

    #[test]
    fn tcp_plane_delivers_cross_worker_pushes_over_the_wire() {
        let metrics = MetricsRegistry::new();
        let p = DataPlane::with_config(
            3,
            CostModel::free(),
            Arc::clone(&metrics),
            &TransportConfig::tcp(),
        )
        .unwrap();
        assert_eq!(p.transport_kind(), "tcp");
        let consumer = ChannelAddr::new(1, 2);
        let producer = TaskName::new(0, 1, 0);
        p.push(0, 2, consumer, producer, vec![batch()]).unwrap();
        // Delivery is asynchronous on the wire: poll the inbox.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !p.server(2).unwrap().has_slice(consumer, producer) {
            assert!(std::time::Instant::now() < deadline, "tcp push never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(p.server(2).unwrap().peek(consumer, producer).unwrap(), vec![batch()]);
        // Shuffle accounting and per-peer wire stats both observed it.
        let snap = metrics.snapshot(Duration::ZERO);
        assert_eq!(snap.shuffle_bytes, wire_len(&batch()));
        let peer = snap.transport_peers.iter().find(|s| s.peer == 2).expect("wire stats");
        assert_eq!(peer.frames_sent, 1);
        assert!(peer.bytes_sent > 0);

        // Failing a worker tears down its lane and rejects further pushes.
        p.fail_worker(2).unwrap();
        let err = p.push(0, 2, consumer, TaskName::new(0, 1, 1), vec![batch()]);
        assert!(matches!(err, Err(QuokkaError::WorkerFailed(2))));
    }
}
