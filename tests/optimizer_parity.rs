//! Optimized-vs-unoptimized parity: the rule-based logical optimizer must
//! never change what a query *returns*, only how it executes.
//!
//! * Every TPC-H plan, optimized and naive, must agree on the reference
//!   executor and on the distributed runtime (including under fault
//!   injection).
//! * Property tests: every individual rewrite rule — and the full pipeline —
//!   preserves `plan.schema()` and the reference-executor result multiset on
//!   randomized plans over generated data.

use proptest::prelude::*;
use quokka::plan::aggregate::{avg, count, max, min, sum};
use quokka::plan::expr::{col, lit, Expr};
use quokka::plan::optimizer::{Optimizer, RULE_NAMES};
use quokka::plan::Catalog;
use quokka::{
    canonical_rows, same_result, Batch, Column, DataType, EngineConfig, FailureSpec, JoinType,
    LogicalPlan, PlanBuilder, QuokkaSession, ScalarValue, Schema,
};

fn session() -> QuokkaSession {
    QuokkaSession::tpch(0.002, 3).expect("generate TPC-H data")
}

/// Reference-executor parity for every TPC-H query: the optimized plan has
/// the same schema and the same result multiset as the plan as written.
#[test]
fn all_22_tpch_plans_are_reference_identical_after_optimization() {
    let session = session();
    for q in quokka::tpch::ALL_QUERIES {
        let plan = quokka::tpch::query(q).unwrap();
        let optimized = session.optimize(&plan).unwrap_or_else(|e| panic!("Q{q}: {e}"));
        assert_eq!(
            optimized.schema().unwrap(),
            plan.schema().unwrap(),
            "Q{q}: optimizer changed the schema"
        );
        let naive = session.run_reference(&plan).unwrap();
        let rewritten = session.run_reference(&optimized).unwrap();
        assert!(
            same_result(&naive, &rewritten),
            "Q{q}: optimized plan diverged on the reference executor\n{}",
            optimized.display_indent()
        );
    }
}

/// Distributed parity: run each query twice on the simulated cluster — once
/// with the optimizer disabled, once enabled — and compare. Split across
/// tests so the suite parallelizes.
fn check_distributed_parity(queries: &[usize]) {
    let session = session();
    let naive_config = EngineConfig::quokka(3).with_optimize(false);
    let optimized_config = EngineConfig::quokka(3).with_optimize(true);
    for &q in queries {
        let plan = quokka::tpch::query(q).unwrap();
        let naive = session.run_with(&plan, &naive_config).unwrap();
        let optimized = session.run_with(&plan, &optimized_config).unwrap();
        assert!(
            same_result(&naive.batch, &optimized.batch),
            "Q{q}: optimized and unoptimized distributed runs disagree"
        );
    }
}

#[test]
fn distributed_parity_q1_to_q6() {
    check_distributed_parity(&[1, 2, 3, 4, 5, 6]);
}

#[test]
fn distributed_parity_q7_to_q12() {
    check_distributed_parity(&[7, 8, 9, 10, 11, 12]);
}

#[test]
fn distributed_parity_q13_to_q17() {
    check_distributed_parity(&[13, 14, 15, 16, 17]);
}

#[test]
fn distributed_parity_q18_to_q22() {
    check_distributed_parity(&[18, 19, 20, 21, 22]);
}

/// Fault injection on optimized plans: killing a worker halfway through must
/// still produce exactly the naive reference result.
#[test]
fn optimized_plans_survive_fault_injection() {
    let session = session();
    for q in [3usize, 5, 12] {
        let plan = quokka::tpch::query(q).unwrap();
        let expected = session.run_reference(&plan).unwrap();
        let config =
            EngineConfig::quokka(3).with_optimize(true).with_failure(FailureSpec::halfway(1));
        let outcome = session.run_with(&plan, &config).unwrap();
        assert!(
            same_result(&expected, &outcome.batch),
            "Q{q}: optimized plan diverged under fault injection"
        );
        assert_eq!(outcome.metrics.failures, 1);
    }
}

/// The optimizer must reduce shuffle volume on join-heavy queries (the
/// shuffle bench gates Q3/Q5/Q9 at a larger scale; this is the in-suite
/// smoke version).
#[test]
fn optimization_reduces_shuffle_bytes_on_q3() {
    let session = session();
    let plan = quokka::tpch::query(3).unwrap();
    let naive = session.run_with(&plan, &EngineConfig::quokka(3).with_optimize(false)).unwrap();
    let optimized = session.run_with(&plan, &EngineConfig::quokka(3).with_optimize(true)).unwrap();
    assert!(
        optimized.metrics.shuffle_bytes < naive.metrics.shuffle_bytes,
        "optimized Q3 shuffled {} bytes, naive {}",
        optimized.metrics.shuffle_bytes,
        naive.metrics.shuffle_bytes
    );
    assert!(!optimized.metrics.shuffle_edges.is_empty(), "per-edge counters must be recorded");
    let edge_total: u64 = optimized.metrics.shuffle_edges.iter().map(|e| e.bytes).sum();
    assert_eq!(edge_total, optimized.metrics.shuffle_bytes, "edges must sum to the total");
}

// ---------------------------------------------------------------------------
// Randomized-plan properties
// ---------------------------------------------------------------------------

/// Deterministic mini-rng for plan generation (the proptest shim hands us a
/// seed; everything else is derived).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A randomized catalog: an `items` fact table and a `groups` dim table with
/// seed-dependent contents (including empty-table and skewed-key cases).
fn random_catalog(rng: &mut Rng, session: &QuokkaSession) {
    let rows = rng.below(200) as usize; // may be zero
    let items = Schema::from_pairs(&[
        ("i_key", DataType::Int64),
        ("i_qty", DataType::Int64),
        ("i_price", DataType::Float64),
        ("i_tag", DataType::Utf8),
        ("i_flag", DataType::Bool),
    ]);
    let key_spread = 1 + rng.below(20) as i64;
    let mut keys = Vec::with_capacity(rows);
    let mut qtys = Vec::with_capacity(rows);
    let mut prices = Vec::with_capacity(rows);
    let mut tags = Vec::with_capacity(rows);
    let mut flags = Vec::with_capacity(rows);
    for _ in 0..rows {
        keys.push((rng.below(20) as i64) % key_spread);
        qtys.push(rng.below(50) as i64);
        prices.push(rng.below(10_000) as f64 / 100.0);
        tags.push(format!("tag-{}", rng.below(5)));
        flags.push(rng.chance(50));
    }
    let batch = Batch::try_new(
        items.clone(),
        vec![
            Column::Int64(keys),
            Column::Int64(qtys),
            Column::Float64(prices),
            Column::Utf8(tags),
            Column::Bool(flags),
        ],
    )
    .unwrap();
    session.register_table("items", items, batch.chunks(32));

    let dim_rows = rng.below(12) as usize;
    let groups = Schema::from_pairs(&[("g_key", DataType::Int64), ("g_name", DataType::Utf8)]);
    let batch = Batch::try_new(
        groups.clone(),
        vec![
            Column::Int64((0..dim_rows as i64).collect()),
            Column::Utf8((0..dim_rows).map(|i| format!("group-{i}")).collect()),
        ],
    )
    .unwrap();
    session.register_table("groups", groups, vec![batch]);
}

/// A random boolean predicate over the columns of `schema`.
fn random_predicate(rng: &mut Rng, schema: &Schema) -> Expr {
    let int_cols: Vec<&str> = schema
        .fields()
        .iter()
        .filter(|f| f.data_type == DataType::Int64)
        .map(|f| f.name.as_str())
        .collect();
    let base = if int_cols.is_empty() {
        lit(true)
    } else {
        let column = col(int_cols[rng.below(int_cols.len() as u64) as usize]);
        match rng.below(4) {
            0 => column.gt(lit(rng.below(30) as i64)),
            1 => column.lt_eq(lit(rng.below(30) as i64)),
            2 => column.eq(lit(rng.below(10) as i64)),
            _ => column.between(
                ScalarValue::Int64(rng.below(10) as i64),
                ScalarValue::Int64(10 + rng.below(20) as i64),
            ),
        }
    };
    match rng.below(4) {
        // Constant-foldable decoration around the real predicate.
        0 => lit(1i64).lt(lit(2i64)).and(base),
        1 => base.clone().or(lit(false)),
        2 => base.clone().and(lit(3i64).add(lit(4i64)).gt(lit(5i64))),
        _ => base,
    }
}

/// A random valid plan over the random catalog. Tracks the current output
/// schema so every generated expression resolves.
fn random_plan(rng: &mut Rng, session: &QuokkaSession) -> LogicalPlan {
    let items_schema = session.catalog().table_schema("items").unwrap();
    let groups_schema = session.catalog().table_schema("groups").unwrap();
    let mut builder = PlanBuilder::scan("items", items_schema.clone());

    // Maybe join the dim table: equi-join, semi/anti, or a cross join whose
    // equality lives in a WHERE above (exercising filter-to-join).
    match rng.below(5) {
        0 => {
            builder = PlanBuilder::scan("groups", groups_schema).join(
                builder,
                vec![("g_key", "i_key")],
                JoinType::Inner,
            );
        }
        1 => {
            builder = PlanBuilder::scan("groups", groups_schema).join(
                builder,
                vec![("g_key", "i_key")],
                JoinType::Semi,
            );
        }
        2 => {
            builder = PlanBuilder::scan("groups", groups_schema).join(
                builder,
                vec![("g_key", "i_key")],
                JoinType::Anti,
            );
        }
        3 => {
            builder = PlanBuilder::scan("groups", groups_schema)
                .join(builder, vec![], JoinType::Inner)
                .filter(col("g_key").eq(col("i_key")));
        }
        _ => {}
    }

    // A few random stacked operators.
    let schema = builder.clone().build().unwrap().schema().unwrap();
    let has_items = schema.index_of("i_price").is_ok();
    for _ in 0..rng.below(3) {
        let schema = builder.clone().build().unwrap().schema().unwrap();
        builder = builder.filter(random_predicate(rng, &schema));
    }
    if has_items && rng.chance(50) {
        builder = builder.project(vec![
            (col("i_key"), "k"),
            (col("i_price").mul(lit(1.1f64)), "gross"),
            (col("i_qty"), "q"),
        ]);
        if rng.chance(50) {
            builder = builder.filter(col("gross").gt(lit(5.0f64)));
        }
        if rng.chance(50) {
            builder = builder.aggregate(
                vec![(col("k"), "k")],
                vec![
                    sum(col("gross"), "total"),
                    count(col("q"), "n"),
                    avg(col("q"), "avg_q"),
                    min(col("gross"), "lo"),
                    max(col("gross"), "hi"),
                ],
            );
        }
    }
    let schema = builder.clone().build().unwrap().schema().unwrap();
    if rng.chance(40) {
        let key = schema.column_names()[0].to_string();
        builder = builder.sort(vec![(key.as_str(), rng.chance(50))]);
        if rng.chance(50) {
            builder = builder.limit(1 + rng.below(20) as usize);
        }
    } else if rng.chance(30) {
        builder = builder.limit(1 + rng.below(20) as usize);
    }
    builder.build().unwrap()
}

/// Result comparison that tolerates row-order differences (plans without a
/// total order may legitimately reorder under rewriting, and `Limit` keeps
/// an arbitrary subset — those plans are compared by row count only).
fn plans_agree(plan: &LogicalPlan, a: &Batch, b: &Batch) -> bool {
    fn has_nondeterministic_subset(plan: &LogicalPlan) -> bool {
        match plan {
            // A limit keeps whichever rows arrive first — and even above a
            // sort, ties on the sort key make the kept subset depend on the
            // (scheduling-dependent) order rows reached the sort buffer.
            LogicalPlan::Limit { .. } => true,
            LogicalPlan::Sort { input, limit, .. } => {
                // Top-k with ties can keep different tied rows.
                limit.is_some() || has_nondeterministic_subset(input)
            }
            _ => plan.children().iter().any(|c| has_nondeterministic_subset(c)),
        }
    }
    if has_nondeterministic_subset(plan) {
        a.num_rows() == b.num_rows()
    } else {
        canonical_rows(a) == canonical_rows(b)
    }
}

// ---------------------------------------------------------------------------
// Decorrelation rule properties
// ---------------------------------------------------------------------------

/// A randomized subquery-bearing plan plus an independently hand-built
/// decorrelated twin (the join shape the rewrite is specified to produce).
/// Comparing the decorrelated plan's result against the twin pins each
/// decorrelation rule without going through the rewrite under test twice.
fn random_subquery_case(rng: &mut Rng, session: &QuokkaSession) -> (LogicalPlan, LogicalPlan) {
    let items = session.catalog().table_schema("items").unwrap();
    let groups = session.catalog().table_schema("groups").unwrap();
    let items_scan = || PlanBuilder::scan("items", items.clone());
    let groups_scan = || PlanBuilder::scan("groups", groups.clone());
    let items_passthrough =
        || items.column_names().iter().map(|n| (col(*n), *n)).collect::<Vec<_>>();
    let negated = rng.chance(50);
    let semi_or_anti = if negated { JoinType::Anti } else { JoinType::Semi };
    match rng.below(4) {
        // [NOT] EXISTS (SELECT * FROM items WHERE i_key = g_key AND pred).
        0 => {
            let pred = random_predicate(rng, &items);
            let subquery = items_scan()
                .filter(
                    col("i_key")
                        .eq(Expr::OuterRef { name: "g_key".into(), dtype: DataType::Int64 })
                        .and(pred.clone()),
                )
                .build()
                .unwrap();
            let plan = groups_scan()
                .filter(Expr::Exists { plan: Box::new(subquery), negated })
                .build()
                .unwrap();
            let twin = items_scan()
                .filter(pred)
                .join(groups_scan(), vec![("i_key", "g_key")], semi_or_anti)
                .build()
                .unwrap();
            (plan, twin)
        }
        // i_key [NOT] IN (SELECT g_key FROM groups WHERE g_key <= k).
        1 => {
            let bound = rng.below(12) as i64;
            let subquery = groups_scan()
                .filter(col("g_key").lt_eq(lit(bound)))
                .project(vec![(col("g_key"), "g_key")])
                .build()
                .unwrap();
            let plan = items_scan()
                .filter(Expr::InSubquery {
                    expr: Box::new(col("i_key")),
                    plan: Box::new(subquery),
                    negated,
                })
                .build()
                .unwrap();
            let twin = groups_scan()
                .filter(col("g_key").lt_eq(lit(bound)))
                .project(vec![(col("g_key"), "g_key")])
                .join(items_scan(), vec![("g_key", "i_key")], semi_or_anti)
                .build()
                .unwrap();
            (plan, twin)
        }
        // Uncorrelated scalar: i_price > (SELECT avg(i_price) WHERE pred)
        // — must become a constant-key join.
        2 => {
            let pred = random_predicate(rng, &items);
            let subquery = items_scan()
                .filter(pred.clone())
                .aggregate(vec![], vec![avg(col("i_price"), "threshold")])
                .build()
                .unwrap();
            let plan = items_scan()
                .filter(col("i_price").gt(Expr::ScalarSubquery(Box::new(subquery))))
                .build()
                .unwrap();
            let mut probe_exprs = items_passthrough();
            probe_exprs.push((lit(1i64), "jk_p"));
            let twin = items_scan()
                .filter(pred)
                .aggregate(vec![], vec![avg(col("i_price"), "threshold")])
                .project(vec![(col("threshold"), "threshold"), (lit(1i64), "jk_b")])
                .join(items_scan().project(probe_exprs), vec![("jk_b", "jk_p")], JoinType::Inner)
                .filter(col("i_price").gt(col("threshold")))
                .project(items_passthrough())
                .build()
                .unwrap();
            (plan, twin)
        }
        // Correlated scalar aggregate: i_price > (SELECT avg(i_price) FROM
        // items i2 WHERE i2.i_key = i_key) — must become group-by + join.
        _ => {
            let subquery = items_scan()
                .filter(
                    col("i_key")
                        .eq(Expr::OuterRef { name: "i_key".into(), dtype: DataType::Int64 }),
                )
                .aggregate(vec![], vec![avg(col("i_price"), "threshold")])
                .build()
                .unwrap();
            let plan = items_scan()
                .filter(col("i_price").gt(Expr::ScalarSubquery(Box::new(subquery))))
                .build()
                .unwrap();
            let twin = items_scan()
                .aggregate(vec![(col("i_key"), "t_key")], vec![avg(col("i_price"), "threshold")])
                .join(items_scan(), vec![("t_key", "i_key")], JoinType::Inner)
                .filter(col("i_price").gt(col("threshold")))
                .project(items_passthrough())
                .build()
                .unwrap();
            (plan, twin)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Each decorrelation rule (EXISTS/IN → semi, NOT → anti, scalar →
    /// constant-key or group-by join) preserves the plan schema and agrees
    /// with an independently hand-decorrelated twin on randomized data —
    /// through the standalone rule, the full optimizer pipeline, and the
    /// mandatory lowering the naive distributed path applies.
    #[test]
    fn decorrelation_rules_preserve_schema_and_match_hand_decorrelated_twins(
        seed in any::<i64>()
    ) {
        let mut rng = Rng(seed as u64);
        let session = QuokkaSession::new(EngineConfig::quokka(2));
        random_catalog(&mut rng, &session);
        let (plan, twin) = random_subquery_case(&mut rng, &session);
        let schema = plan.schema().unwrap();
        let expected = session.run_reference(&twin).unwrap();

        let optimizer = Optimizer::with_catalog(session.catalog());
        let lowered = optimizer.apply_rule("decorrelate_subqueries", &plan).unwrap();
        prop_assert!(
            !quokka::plan::optimizer::contains_subqueries(&lowered),
            "decorrelation left a subquery behind:\n{}",
            lowered.display_indent()
        );
        prop_assert_eq!(lowered.schema().unwrap(), schema.clone(), "rule changed the schema");
        let lowered_result = session.run_reference(&lowered).unwrap();
        prop_assert!(
            plans_agree(&plan, &expected, &lowered_result),
            "decorrelated plan diverged from the hand-built twin\nsubquery plan:\n{}\n\
             lowered:\n{}\ntwin:\n{}",
            plan.display_indent(),
            lowered.display_indent(),
            twin.display_indent()
        );

        let optimized = optimizer.optimize(&plan).unwrap();
        prop_assert_eq!(optimized.schema().unwrap(), schema, "pipeline changed the schema");
        let optimized_result = session.run_reference(&optimized).unwrap();
        prop_assert!(
            plans_agree(&plan, &expected, &optimized_result),
            "optimized subquery plan diverged from the hand-built twin\n{}",
            optimized.display_indent()
        );
    }

    /// Every individual rule, and the full pipeline, preserves the output
    /// schema and the reference-executor result on randomized plans.
    #[test]
    fn every_rule_preserves_schema_and_results(seed in any::<i64>()) {
        let mut rng = Rng(seed as u64);
        let session = QuokkaSession::new(EngineConfig::quokka(2));
        random_catalog(&mut rng, &session);
        let plan = random_plan(&mut rng, &session);
        let schema = plan.schema().unwrap();
        let baseline = session.run_reference(&plan).unwrap();

        let optimizer = Optimizer::with_catalog(session.catalog());
        for rule in RULE_NAMES {
            let rewritten = optimizer
                .apply_rule(rule, &plan)
                .unwrap_or_else(|e| panic!("rule {rule} failed: {e}\n{}", plan.display_indent()));
            prop_assert_eq!(
                rewritten.schema().unwrap(),
                schema.clone(),
                "rule {} changed the schema of\n{}",
                rule,
                plan.display_indent()
            );
            let result = session.run_reference(&rewritten).unwrap();
            prop_assert!(
                plans_agree(&plan, &baseline, &result),
                "rule {} changed the result of\n{}\ninto\n{}",
                rule,
                plan.display_indent(),
                rewritten.display_indent()
            );
        }

        let optimized = optimizer.optimize(&plan).unwrap();
        prop_assert_eq!(optimized.schema().unwrap(), schema);
        let result = session.run_reference(&optimized).unwrap();
        prop_assert!(
            plans_agree(&plan, &baseline, &result),
            "full pipeline changed the result of\n{}\ninto\n{}",
            plan.display_indent(),
            optimized.display_indent()
        );
    }

    /// Randomized plans also agree between the naive distributed run and the
    /// optimized distributed run (smaller case count: each case spins up a
    /// simulated cluster).
    #[test]
    fn distributed_runs_agree_on_random_plans(seed in any::<i64>()) {
        // Subsample: each case spins up a simulated cluster twice.
        if seed % 4 == 0 {
            let mut rng = Rng(seed as u64);
            let session = QuokkaSession::new(EngineConfig::quokka(2));
            random_catalog(&mut rng, &session);
            let plan = random_plan(&mut rng, &session);
            let naive = session
                .run_with(&plan, &EngineConfig::quokka(2).with_optimize(false))
                .unwrap();
            let optimized = session
                .run_with(&plan, &EngineConfig::quokka(2).with_optimize(true))
                .unwrap();
            prop_assert!(
                plans_agree(&plan, &naive.batch, &optimized.batch),
                "distributed naive and optimized disagree on\n{}",
                plan.display_indent()
            );
        }
    }
}
