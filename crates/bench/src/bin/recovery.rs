//! Recovery-vs-restart harness: what intra-query fault tolerance buys.
//!
//! For each query, four timed runs on the same data set:
//!
//! * **wal clean** — write-ahead lineage, no failure (WAL's baseline cost).
//! * **wal kill** — write-ahead lineage with a worker killed at 50% of the
//!   query; Algorithm 2 rewinds and replays only what the failure lost.
//! * **restart clean** — the no-recovery baseline, no failure.
//! * **restart kill** — the no-recovery baseline with the same kill; the
//!   whole query reruns from scratch.
//!
//! The gated comparison is the **time lost to the failure** — kill-run
//! minus clean-run, each strategy against its own failure-free baseline,
//! the paper's Fig. 10 framing. Comparing raw totals instead would mostly
//! measure WAL's per-partition backup cost (which the simulated cost model
//! deliberately taxes), not the recovery path. The four runs repeat
//! `QUOKKA_REPS` times; the gated loss is the **median of the per-rep
//! paired differences** (each kill run diffed against the clean run right
//! next to it, so drifting machine load cancels within the pair), while
//! the reported totals are each configuration's fastest rep.
//!
//! Results go to `BENCH_recovery.json`. The run **fails** (non-zero exit)
//! if, for any gated query, recovering from a 50%-progress kill does not
//! lose strictly less time than restarting from scratch does.
//!
//! Run with: `cargo run --release -p quokka-bench --bin recovery`
//!
//! Environment knobs: `QUOKKA_SF` (default 0.01), `QUOKKA_WORKERS` (default
//! 4), `QUOKKA_QUERIES` (default 3,9), `QUOKKA_REPS` (default 5),
//! `QUOKKA_BENCH_OUT` (default `BENCH_recovery.json`).

use quokka::FaultStrategy;
use quokka_bench::{queries_from_env, workers_from_env, Harness};

/// Queries whose recovery must strictly beat a restart.
const GATED: [usize; 2] = [3, 9];

/// The progress fraction at which the worker is killed.
const KILL_AT: f64 = 0.5;

struct Entry {
    query: usize,
    wal_clean: f64,
    wal_kill: f64,
    restart_clean: f64,
    restart_kill: f64,
    /// Per-repetition `kill - clean` differences, one pair per rep.
    recovery_diffs: Vec<f64>,
    restart_diffs: Vec<f64>,
    recovery_tasks: u64,
}

/// The median of a set of paired timing differences. Each difference is
/// taken between a kill run and a clean run executed back-to-back, so
/// drifting machine load cancels within the pair; the median then shrugs
/// off the occasional rep where the scheduler hiccuped anyway. (Comparing
/// mins of independently-sampled totals instead lets one lucky/unlucky
/// rep understate a strategy's loss and flake the gate.)
fn median(diffs: &[f64]) -> f64 {
    let mut sorted = diffs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

impl Entry {
    /// Wall-clock cost of the failure under intra-query recovery.
    fn recovery_lost(&self) -> f64 {
        median(&self.recovery_diffs)
    }

    /// Wall-clock cost of the failure under restart-from-scratch.
    fn restart_lost(&self) -> f64 {
        median(&self.restart_diffs)
    }
}

/// One full measurement of a query: `reps` back-to-back (clean, kill)
/// pairs for each strategy, paired differences recorded per rep.
fn measure(
    harness: &Harness,
    q: usize,
    wal: &quokka::EngineConfig,
    none: &quokka::EngineConfig,
    reps: usize,
) -> quokka::Result<Entry> {
    let mut e = Entry {
        query: q,
        wal_clean: f64::INFINITY,
        wal_kill: f64::INFINITY,
        restart_clean: f64::INFINITY,
        restart_kill: f64::INFINITY,
        recovery_diffs: Vec::new(),
        restart_diffs: Vec::new(),
        recovery_tasks: 0,
    };
    for _ in 0..reps.max(1) {
        let wal_clean = harness.run("wal-clean", q, wal)?.seconds;
        let m = harness.run_with_failure("wal-kill", q, wal, 1, KILL_AT)?;
        assert_eq!(m.metrics.failures, 1, "Q{q}: the kill never fired");
        e.wal_clean = e.wal_clean.min(wal_clean);
        if m.seconds < e.wal_kill {
            e.wal_kill = m.seconds;
            e.recovery_tasks = m.metrics.recovery_tasks;
        }
        e.recovery_diffs.push(m.seconds - wal_clean);

        let restart_clean = harness.run("restart-clean", q, none)?.seconds;
        let restart_kill = harness.run_with_failure("restart-kill", q, none, 1, KILL_AT)?.seconds;
        e.restart_clean = e.restart_clean.min(restart_clean);
        e.restart_kill = e.restart_kill.min(restart_kill);
        e.restart_diffs.push(restart_kill - restart_clean);
    }
    eprintln!(
        "Q{q:<3} wal {:>7.3}s +{:>6.3}s on kill   restart {:>7.3}s +{:>6.3}s on kill",
        e.wal_clean,
        e.recovery_lost(),
        e.restart_clean,
        e.restart_lost(),
    );
    Ok(e)
}

fn main() -> quokka::Result<()> {
    let harness = Harness::from_env()?;
    let workers = workers_from_env(&[4])[0];
    let queries = queries_from_env(&[3, 9]);
    let reps: usize = std::env::var("QUOKKA_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(5);
    let out_path =
        std::env::var("QUOKKA_BENCH_OUT").unwrap_or_else(|_| "BENCH_recovery.json".to_string());

    let wal = harness.quokka_config(workers);
    let none = harness.quokka_config(workers).with_fault(FaultStrategy::None);

    let mut entries = Vec::new();
    for &q in &queries {
        entries.push(measure(&harness, q, &wal, &none, reps)?);
    }

    // A gated query whose medians land the wrong way round gets one full
    // re-measurement before the verdict counts: a genuine regression fails
    // both rounds, while a scheduler hiccup on an oversubscribed CI box
    // (the margins here are tenths of a second) almost never strikes the
    // same query twice in a row.
    for q in GATED {
        let idx = entries.iter().position(|e| e.query == q).unwrap_or_else(|| {
            panic!("Q{q} is gated but was not run; include it in QUOKKA_QUERIES")
        });
        if entries[idx].recovery_lost() >= entries[idx].restart_lost() {
            eprintln!("Q{q}: gate margin inverted; re-measuring once to confirm");
            entries[idx] = measure(&harness, q, &wal, &none, reps * 2)?;
        }
    }

    // Hand-rolled JSON (no serde in this environment).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"scale_factor\": {},\n", harness.scale_factor));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str(&format!("  \"kill_at_progress\": {KILL_AT},\n"));
    json.push_str(&format!("  \"repetitions\": {reps},\n"));
    json.push_str("  \"queries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"query\": {}, \"wal_clean_seconds\": {:.6}, \"wal_kill_seconds\": {:.6}, \
             \"restart_clean_seconds\": {:.6}, \"restart_kill_seconds\": {:.6}, \
             \"recovery_lost_seconds\": {:.6}, \"restart_lost_seconds\": {:.6}, \
             \"recovery_overhead\": {:.4}, \"restart_overhead\": {:.4}, \"recovery_tasks\": {}}}{}\n",
            e.query,
            e.wal_clean,
            e.wal_kill,
            e.restart_clean,
            e.restart_kill,
            e.recovery_lost(),
            e.restart_lost(),
            e.wal_kill / e.wal_clean,
            e.restart_kill / e.restart_clean,
            e.recovery_tasks,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("wrote {out_path}");

    // Regression gate: recovering a half-done query must waste strictly
    // less time than rerunning it from scratch. A gated query missing from
    // the run set is itself a failure — the gate must never pass vacuously.
    for q in GATED {
        let e = entries.iter().find(|e| e.query == q).unwrap_or_else(|| {
            panic!("Q{q} is gated but was not run; include it in QUOKKA_QUERIES")
        });
        assert!(
            e.recovery_lost() < e.restart_lost(),
            "Q{q}: recovery from a 50% kill lost {:.3}s, restarting lost only {:.3}s",
            e.recovery_lost(),
            e.restart_lost()
        );
        assert!(e.recovery_tasks > 0, "Q{q}: recovery replayed no tasks — was the kill injected?");
    }
    eprintln!(
        "[recovery] gate passed: a 50% kill costs less under intra-query recovery \
         than under restart-from-scratch (Q3/Q9)"
    );
    Ok(())
}
