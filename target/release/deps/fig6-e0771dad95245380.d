/root/repo/target/release/deps/fig6-e0771dad95245380.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-e0771dad95245380: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
