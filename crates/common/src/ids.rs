//! Identifiers used throughout the engine.
//!
//! The paper's lineage naming scheme (§III-A) names every task — and its
//! output partition — with the tuple `(stage, channel, sequence number)`.
//! The sequence number increases monotonically within a channel, and tasks
//! must consume upstream outputs in sequence order, which is what makes a
//! task's lineage representable as just "`K` outputs of upstream channel
//! `i`".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a stage in the compiled query DAG.
pub type StageId = u32;
/// Index of a data-parallel channel within a stage.
pub type ChannelId = u32;
/// Monotonically increasing sequence number of a task within a channel.
pub type SeqNo = u32;
/// Identifier of a (simulated) worker machine.
pub type WorkerId = u32;

/// A `(stage, channel)` pair — the unit of state and of scheduling.
///
/// A channel owns the state variable of its stage (e.g. one hash partition
/// of a join hash table) and is pinned to a worker's TaskManager during
/// normal execution.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelAddr {
    pub stage: StageId,
    pub channel: ChannelId,
}

impl ChannelAddr {
    pub const fn new(stage: StageId, channel: ChannelId) -> Self {
        Self { stage, channel }
    }

    /// The task with sequence number `seq` in this channel.
    pub const fn task(self, seq: SeqNo) -> TaskName {
        TaskName { stage: self.stage, channel: self.channel, seq }
    }
}

impl fmt::Debug for ChannelAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.stage, self.channel)
    }
}

impl fmt::Display for ChannelAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.stage, self.channel)
    }
}

/// The name of a task, `(stage, channel, sequence number)`.
///
/// A task's output partition carries the same name as the task that produced
/// it, so this type doubles as [`PartitionName`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskName {
    pub stage: StageId,
    pub channel: ChannelId,
    pub seq: SeqNo,
}

/// A task's output partition has the same name as the task (paper §III-A).
pub type PartitionName = TaskName;

impl TaskName {
    pub const fn new(stage: StageId, channel: ChannelId, seq: SeqNo) -> Self {
        Self { stage, channel, seq }
    }

    /// The `(stage, channel)` this task belongs to.
    pub const fn channel_addr(self) -> ChannelAddr {
        ChannelAddr { stage: self.stage, channel: self.channel }
    }

    /// The next task in the same channel.
    pub const fn next(self) -> TaskName {
        TaskName { stage: self.stage, channel: self.channel, seq: self.seq + 1 }
    }

    /// The first task of the channel this task belongs to (used when a
    /// failed channel is rewound to its initial state during recovery).
    pub const fn rewound(self) -> TaskName {
        TaskName { stage: self.stage, channel: self.channel, seq: 0 }
    }
}

impl fmt::Debug for TaskName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.stage, self.channel, self.seq)
    }
}

impl fmt::Display for TaskName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.stage, self.channel, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_name_ordering_is_stage_major() {
        let a = TaskName::new(0, 3, 9);
        let b = TaskName::new(1, 0, 0);
        assert!(a < b);
        let c = TaskName::new(1, 0, 1);
        assert!(b < c);
    }

    #[test]
    fn next_and_rewound() {
        let t = TaskName::new(2, 1, 5);
        assert_eq!(t.next(), TaskName::new(2, 1, 6));
        assert_eq!(t.rewound(), TaskName::new(2, 1, 0));
        assert_eq!(t.channel_addr(), ChannelAddr::new(2, 1));
        assert_eq!(t.channel_addr().task(5), t);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TaskName::new(1, 2, 0).to_string(), "(1,2,0)");
        assert_eq!(ChannelAddr::new(1, 2).to_string(), "(1,2)");
    }
}
