/root/repo/target/release/deps/table1-184399eb1fad9847.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-184399eb1fad9847: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
