/root/repo/target/debug/deps/quokka-22166ae05ffef81b.d: crates/quokka/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libquokka-22166ae05ffef81b.rmeta: crates/quokka/src/lib.rs Cargo.toml

crates/quokka/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
