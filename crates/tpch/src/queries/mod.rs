//! Logical plans for all 22 TPC-H queries.
//!
//! The plans are hand-built with [`PlanBuilder`]; correlated subqueries are
//! decorrelated into joins and aggregations (the same rewrites a SQL
//! optimizer performs), scalar subqueries become constant-key joins, and
//! `EXISTS`/`IN` become semi/anti joins. Two departures from the literal
//! SQL text are documented inline where they occur (Q15's tie handling and
//! Q19's ship-mode spelling); every other query follows the specification's
//! predicates and default substitution parameters.

mod q01_q11;
mod q12_q22;
pub mod sql;

use quokka_common::{QuokkaError, Result};
use quokka_plan::logical::{LogicalPlan, PlanBuilder};

pub(crate) use crate::schema;

/// The paper's query categories (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryCategory {
    /// Simple aggregations (Q1, Q6).
    SimpleAggregation,
    /// Simple pipelined joins (Q3, Q10).
    SimpleJoin,
    /// Queries with multiple join pipelines (Q5, Q7, Q8, Q9).
    MultiJoin,
    /// Everything else (nested subqueries, semi/anti joins, ...).
    Other,
}

/// All TPC-H query numbers.
pub const ALL_QUERIES: [usize; 22] =
    [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22];

/// The paper's eight representative queries, in the order its figures use:
/// category I (1, 6), category II (3, 10), category III (5, 7, 8, 9).
pub const REPRESENTATIVE: [usize; 8] = [1, 6, 3, 10, 5, 7, 8, 9];

/// The category the paper assigns to a query.
pub fn category(query_number: usize) -> QueryCategory {
    match query_number {
        1 | 6 => QueryCategory::SimpleAggregation,
        3 | 10 => QueryCategory::SimpleJoin,
        5 | 7 | 8 | 9 => QueryCategory::MultiJoin,
        _ => QueryCategory::Other,
    }
}

/// Build the logical plan for TPC-H query `query_number` (1-22).
pub fn query(query_number: usize) -> Result<LogicalPlan> {
    match query_number {
        1 => q01_q11::q1(),
        2 => q01_q11::q2(),
        3 => q01_q11::q3(),
        4 => q01_q11::q4(),
        5 => q01_q11::q5(),
        6 => q01_q11::q6(),
        7 => q01_q11::q7(),
        8 => q01_q11::q8(),
        9 => q01_q11::q9(),
        10 => q01_q11::q10(),
        11 => q01_q11::q11(),
        12 => q12_q22::q12(),
        13 => q12_q22::q13(),
        14 => q12_q22::q14(),
        15 => q12_q22::q15(),
        16 => q12_q22::q16(),
        17 => q12_q22::q17(),
        18 => q12_q22::q18(),
        19 => q12_q22::q19(),
        20 => q12_q22::q20(),
        21 => q12_q22::q21(),
        22 => q12_q22::q22(),
        other => Err(QuokkaError::PlanError(format!("TPC-H has no query {other}"))),
    }
}

// -- shared scan helpers ----------------------------------------------------

pub(crate) fn lineitem() -> PlanBuilder {
    PlanBuilder::scan("lineitem", schema::lineitem())
}
pub(crate) fn orders() -> PlanBuilder {
    PlanBuilder::scan("orders", schema::orders())
}
pub(crate) fn customer() -> PlanBuilder {
    PlanBuilder::scan("customer", schema::customer())
}
pub(crate) fn supplier() -> PlanBuilder {
    PlanBuilder::scan("supplier", schema::supplier())
}
pub(crate) fn part() -> PlanBuilder {
    PlanBuilder::scan("part", schema::part())
}
pub(crate) fn partsupp() -> PlanBuilder {
    PlanBuilder::scan("partsupp", schema::partsupp())
}
pub(crate) fn nation() -> PlanBuilder {
    PlanBuilder::scan("nation", schema::nation())
}
pub(crate) fn region() -> PlanBuilder {
    PlanBuilder::scan("region", schema::region())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TpchGenerator;
    use quokka_plan::reference::ReferenceExecutor;
    use quokka_plan::stage::StageGraph;

    #[test]
    fn all_22_queries_build_and_have_schemas() {
        for q in ALL_QUERIES {
            let plan = query(q).unwrap_or_else(|e| panic!("Q{q} failed to build: {e}"));
            let schema = plan.schema().unwrap_or_else(|e| panic!("Q{q} schema error: {e}"));
            assert!(!schema.is_empty(), "Q{q} has an empty output schema");
            assert!(!plan.referenced_tables().is_empty());
        }
        assert!(query(0).is_err());
        assert!(query(23).is_err());
    }

    #[test]
    fn all_22_queries_compile_to_stage_graphs() {
        for q in ALL_QUERIES {
            let plan = query(q).unwrap();
            let graph = StageGraph::compile(&plan)
                .unwrap_or_else(|e| panic!("Q{q} failed to compile to stages: {e}"));
            assert!(graph.num_stages() >= 1, "Q{q} produced no stages");
            // Multi-join queries must expose multiple stateful stages — the
            // property pipeline-parallel recovery relies on (§III-B).
            if matches!(category(q), QueryCategory::MultiJoin) {
                assert!(
                    graph.stateful_stage_count() >= 4,
                    "Q{q} should have several stateful stages, got {}",
                    graph.stateful_stage_count()
                );
            }
        }
    }

    #[test]
    fn representative_queries_cover_all_three_categories() {
        assert_eq!(REPRESENTATIVE.len(), 8);
        assert_eq!(
            REPRESENTATIVE
                .iter()
                .filter(|&&q| category(q) == QueryCategory::SimpleAggregation)
                .count(),
            2
        );
        assert_eq!(
            REPRESENTATIVE.iter().filter(|&&q| category(q) == QueryCategory::SimpleJoin).count(),
            2
        );
        assert_eq!(
            REPRESENTATIVE.iter().filter(|&&q| category(q) == QueryCategory::MultiJoin).count(),
            4
        );
        assert_eq!(category(13), QueryCategory::Other);
    }

    /// Every query must run end-to-end on the reference executor against a
    /// small generated data set and produce a sane (non-error) result. The
    /// distributed engine's results are compared against the same oracle in
    /// the workspace-level integration tests.
    #[test]
    fn all_queries_execute_on_reference_data() {
        let generator = TpchGenerator::new(0.005, 7).with_batch_rows(1024);
        let catalog = generator.catalog().unwrap();
        let executor = ReferenceExecutor::new(&catalog);
        let mut non_empty = 0;
        for q in ALL_QUERIES {
            let plan = query(q).unwrap();
            let result = executor
                .execute(&plan)
                .unwrap_or_else(|e| panic!("Q{q} failed on the reference executor: {e}"));
            assert_eq!(result.schema(), &plan.schema().unwrap(), "Q{q} schema mismatch");
            if result.num_rows() > 0 {
                non_empty += 1;
            }
        }
        // Most queries must return rows at this scale factor (a handful of
        // highly selective ones may legitimately be empty on tiny data).
        assert!(non_empty >= 18, "only {non_empty} of 22 queries returned rows");
    }
}
