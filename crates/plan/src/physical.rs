//! Stateful stage operators.
//!
//! In the paper's execution model (Fig. 1) every stage runs an operator with
//! an optional *state variable* per channel: the hash table of a join, the
//! group map of an aggregation, the buffer of a sort. Tasks push input
//! batches through the operator, mutating that state and emitting output
//! batches.
//!
//! The [`StageOperator`] trait is exactly that contract. Operators are
//! created from a cloneable [`OperatorSpec`] so the engine can re-instantiate
//! them from scratch when a failed channel is rewound during recovery (the
//! state variable itself is never persisted — that is the whole point of
//! write-ahead lineage).

use crate::aggregate::{AggExpr, AggState};
use crate::expr::Expr;
use crate::logical::JoinType;
use quokka_batch::compute::{self, SortKey};
use quokka_batch::datatype::DataType;
use quokka_batch::rowkey::{self, EncodedKeys, KeyLayout, KeyMap};
use quokka_batch::{Batch, Column, Schema};
use quokka_common::{QuokkaError, Result};
use std::cmp::Ordering;
use std::sync::Arc;

/// A stateless row transformation applied inside a stage.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// Keep rows satisfying the predicate.
    Filter(Expr),
    /// Compute named expressions.
    Project(Vec<(Expr, String)>),
}

impl Transform {
    /// Output schema after applying this transform to `input`.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema> {
        match self {
            Transform::Filter(_) => Ok(input.clone()),
            Transform::Project(exprs) => {
                let fields = exprs
                    .iter()
                    .map(|(e, name)| {
                        Ok(quokka_batch::Field::new(name.clone(), e.data_type(input)?))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(Schema::new(fields))
            }
        }
    }

    /// Apply this transform to a batch.
    pub fn apply(&self, batch: &Batch) -> Result<Batch> {
        match self {
            Transform::Filter(predicate) => {
                let mask = predicate.evaluate_mask(batch)?;
                batch.filter(&mask)
            }
            Transform::Project(exprs) => {
                let schema = self.output_schema(batch.schema())?;
                let columns = exprs
                    .iter()
                    .map(|(e, _)| e.evaluate(batch))
                    .collect::<Result<Vec<Column>>>()?;
                Batch::try_new(schema, columns)
            }
        }
    }
}

/// Apply a chain of transforms.
pub fn apply_transforms(batch: &Batch, transforms: &[Transform]) -> Result<Batch> {
    let mut current = batch.clone();
    for t in transforms {
        current = t.apply(&current)?;
    }
    Ok(current)
}

/// Output schema after a chain of transforms.
pub fn transforms_schema(input: &Schema, transforms: &[Transform]) -> Result<Schema> {
    let mut current = input.clone();
    for t in transforms {
        current = t.output_schema(&current)?;
    }
    Ok(current)
}

/// The stateful core of a stage.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreOp {
    /// Stateless pass-through (scans and pure filter/project stages).
    Map { input_schema: Schema },
    /// Hash join. Input 0 is the build side, input 1 the probe side.
    HashJoin {
        build_schema: Schema,
        probe_schema: Schema,
        /// Indices of the key columns in the build schema.
        build_keys: Vec<usize>,
        /// Indices of the key columns in the probe schema.
        probe_keys: Vec<usize>,
        join_type: JoinType,
    },
    /// Hash aggregation.
    HashAggregate { input_schema: Schema, group_by: Vec<(Expr, String)>, aggregates: Vec<AggExpr> },
    /// Buffering sort (optionally top-k).
    Sort { input_schema: Schema, keys: Vec<(String, bool)>, limit: Option<usize> },
    /// Row-count limit.
    Limit { input_schema: Schema, n: usize },
}

impl CoreOp {
    /// Output schema of the core operator (before post transforms).
    pub fn output_schema(&self) -> Result<Schema> {
        match self {
            CoreOp::Map { input_schema } => Ok(input_schema.clone()),
            CoreOp::HashJoin { build_schema, probe_schema, join_type, .. } => match join_type {
                JoinType::Semi | JoinType::Anti => Ok(probe_schema.clone()),
                JoinType::Inner | JoinType::Left => Ok(build_schema.join(probe_schema)),
            },
            CoreOp::HashAggregate { input_schema, group_by, aggregates } => {
                let mut fields = Vec::new();
                for (expr, name) in group_by {
                    fields.push(quokka_batch::Field::new(
                        name.clone(),
                        expr.data_type(input_schema)?,
                    ));
                }
                for agg in aggregates {
                    fields.push(quokka_batch::Field::new(
                        agg.alias.clone(),
                        agg.data_type(input_schema)?,
                    ));
                }
                Ok(Schema::new(fields))
            }
            CoreOp::Sort { input_schema, .. } | CoreOp::Limit { input_schema, .. } => {
                Ok(input_schema.clone())
            }
        }
    }

    /// Number of distinct upstream inputs this operator consumes.
    pub fn num_inputs(&self) -> usize {
        match self {
            CoreOp::HashJoin { .. } => 2,
            _ => 1,
        }
    }

    /// Whether the operator keeps meaningful state between tasks.
    pub fn is_stateful(&self) -> bool {
        !matches!(self, CoreOp::Map { .. })
    }
}

/// A cloneable description of a stage's operator: the stateful core plus a
/// chain of stateless transforms applied to its output.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorSpec {
    pub core: CoreOp,
    pub post: Vec<Transform>,
}

impl OperatorSpec {
    pub fn new(core: CoreOp) -> Self {
        OperatorSpec { core, post: Vec::new() }
    }

    pub fn with_post(mut self, transform: Transform) -> Self {
        self.post.push(transform);
        self
    }

    /// Final output schema (core output run through the post transforms).
    pub fn output_schema(&self) -> Result<Schema> {
        transforms_schema(&self.core.output_schema()?, &self.post)
    }

    pub fn num_inputs(&self) -> usize {
        self.core.num_inputs()
    }

    pub fn is_stateful(&self) -> bool {
        self.core.is_stateful()
    }

    /// Build a fresh operator instance with empty state.
    pub fn instantiate(&self) -> Result<Box<dyn StageOperator>> {
        let core: Box<dyn StageOperator> = match &self.core {
            CoreOp::Map { input_schema } => Box::new(MapOperator { schema: input_schema.clone() }),
            CoreOp::HashJoin { build_schema, probe_schema, build_keys, probe_keys, join_type } => {
                Box::new(HashJoinOperator::new(
                    build_schema.clone(),
                    probe_schema.clone(),
                    build_keys.clone(),
                    probe_keys.clone(),
                    *join_type,
                ))
            }
            CoreOp::HashAggregate { input_schema, group_by, aggregates } => {
                Box::new(HashAggregateOperator::new(
                    input_schema.clone(),
                    group_by.clone(),
                    aggregates.clone(),
                )?)
            }
            CoreOp::Sort { input_schema, keys, limit } => {
                Box::new(SortOperator::new(input_schema.clone(), keys.clone(), *limit)?)
            }
            CoreOp::Limit { input_schema, n } => {
                Box::new(LimitOperator { schema: input_schema.clone(), remaining: *n, n: *n })
            }
        };
        if self.post.is_empty() {
            Ok(core)
        } else {
            Ok(Box::new(PostTransformOperator {
                schema: self.output_schema()?,
                inner: core,
                post: self.post.clone(),
            }))
        }
    }
}

/// A channel's stateful operator (the paper's "state variable" plus the code
/// that updates it).
pub trait StageOperator: Send {
    /// Feed one batch arriving from upstream input `input`; returns any
    /// output batches that can be emitted immediately.
    fn push(&mut self, input: usize, batch: &Batch) -> Result<Vec<Batch>>;
    /// Signal that upstream input `input` is exhausted; returns output that
    /// becomes available because of it (e.g. probe results buffered while a
    /// join's build side was still streaming in).
    fn finish_input(&mut self, input: usize) -> Result<Vec<Batch>>;
    /// Signal that every input is exhausted; returns the final output (e.g.
    /// aggregation results).
    fn finish(&mut self) -> Result<Vec<Batch>>;
    /// Output schema of emitted batches.
    fn output_schema(&self) -> Schema;
    /// Approximate size of the operator state in bytes (checkpoint sizing).
    fn state_bytes(&self) -> usize;
    /// Drop all state, returning the operator to its initial configuration
    /// (used when a channel is rewound during recovery).
    fn reset(&mut self);
}

// ---------------------------------------------------------------------------
// Map
// ---------------------------------------------------------------------------

/// Stateless pass-through operator.
#[derive(Debug)]
struct MapOperator {
    schema: Schema,
}

impl StageOperator for MapOperator {
    fn push(&mut self, _input: usize, batch: &Batch) -> Result<Vec<Batch>> {
        Ok(vec![batch.clone()])
    }
    fn finish_input(&mut self, _input: usize) -> Result<Vec<Batch>> {
        Ok(vec![])
    }
    fn finish(&mut self) -> Result<Vec<Batch>> {
        Ok(vec![])
    }
    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }
    fn state_bytes(&self) -> usize {
        0
    }
    fn reset(&mut self) {}
}

// ---------------------------------------------------------------------------
// Post transforms wrapper
// ---------------------------------------------------------------------------

struct PostTransformOperator {
    schema: Schema,
    inner: Box<dyn StageOperator>,
    post: Vec<Transform>,
}

impl PostTransformOperator {
    fn map(&self, batches: Vec<Batch>) -> Result<Vec<Batch>> {
        batches.iter().map(|b| apply_transforms(b, &self.post)).collect()
    }
}

impl StageOperator for PostTransformOperator {
    fn push(&mut self, input: usize, batch: &Batch) -> Result<Vec<Batch>> {
        let out = self.inner.push(input, batch)?;
        self.map(out)
    }
    fn finish_input(&mut self, input: usize) -> Result<Vec<Batch>> {
        let out = self.inner.finish_input(input)?;
        self.map(out)
    }
    fn finish(&mut self) -> Result<Vec<Batch>> {
        let out = self.inner.finish()?;
        self.map(out)
    }
    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }
    fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }
    fn reset(&mut self) {
        self.inner.reset();
    }
}

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Build-then-probe hash join.
///
/// The build side (input 0) is accumulated into an in-memory hash table (the
/// channel's state variable — exactly the example used in the paper's
/// Fig. 1/2). Probe batches arriving before the build side has finished are
/// buffered so that upstream stages can stay busy; once the build side
/// finishes they are probed and output flows batch-by-batch, which is what
/// gives pipelined execution its advantage over stagewise execution.
///
/// The hash table maps compact binary key encodings (see
/// [`quokka_batch::rowkey`]) to build-row indices, and matched rows are
/// stitched with typed column gathers — the probe path materializes no
/// per-row `ScalarValue`.
struct HashJoinOperator {
    build_schema: Schema,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    join_type: JoinType,
    output: Schema,
    /// Key encoding shared by both sides.
    layout: KeyLayout,
    /// Build batches staged until the build side finishes streaming in.
    staged_build: Vec<Batch>,
    /// All build rows, concatenated once the build side finished.
    build_side: Option<Batch>,
    /// Encoded build key -> first build row with that key; further rows with
    /// the same key are chained through `next` (no per-key allocation).
    table: KeyMap<u32>,
    /// `next[row]` = the next build row sharing `row`'s key, or `NO_ROW`.
    next: Vec<u32>,
    /// Probe batches buffered before the build side finished.
    pending_probe: Vec<Batch>,
    build_done: bool,
}

/// Chain terminator for the join table's `next` links.
const NO_ROW: u32 = u32::MAX;

impl HashJoinOperator {
    fn new(
        build_schema: Schema,
        probe_schema: Schema,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        join_type: JoinType,
    ) -> Self {
        let output = match join_type {
            JoinType::Semi | JoinType::Anti => probe_schema.clone(),
            JoinType::Inner | JoinType::Left => build_schema.join(&probe_schema),
        };
        let build_types: Vec<DataType> =
            build_keys.iter().map(|&k| build_schema.field(k).data_type).collect();
        let probe_types: Vec<DataType> =
            probe_keys.iter().map(|&k| probe_schema.field(k).data_type).collect();
        let layout = rowkey::joint_key_layout(&build_types, &probe_types);
        HashJoinOperator {
            build_schema,
            build_keys,
            probe_keys,
            join_type,
            output,
            layout,
            staged_build: Vec::new(),
            build_side: None,
            table: KeyMap::new(layout),
            next: Vec::new(),
            pending_probe: Vec::new(),
            build_done: false,
        }
    }

    /// Concatenate the staged build batches and index their keys. Rows are
    /// inserted in reverse so each chain lists build rows in ascending
    /// (original insertion) order, matching the row order the scalar
    /// implementation emitted.
    fn seal_build(&mut self) -> Result<()> {
        let staged = std::mem::take(&mut self.staged_build);
        let build = if staged.is_empty() {
            Batch::empty(self.build_schema.clone())
        } else {
            Batch::concat(&staged)?
        };
        if self.build_keys.is_empty() {
            // Keyless (cross) join: there is no table to index; every probe
            // row matches every build row.
            self.build_side = Some(build);
            return Ok(());
        }
        let key_columns: Vec<&Column> = self.build_keys.iter().map(|&k| build.column(k)).collect();
        let keys = rowkey::encode_keys(&key_columns, self.layout)?;
        self.next = vec![NO_ROW; build.num_rows()];
        self.table.reserve(build.num_rows());
        for row in (0..build.num_rows()).rev() {
            let head = self.table.get_mut_or_insert_with(&keys, row, || NO_ROW)?;
            self.next[row] = *head;
            *head = row as u32;
        }
        self.build_side = Some(build);
        Ok(())
    }

    fn encode_probe_keys(&self, batch: &Batch) -> Result<EncodedKeys> {
        let key_columns: Vec<&Column> = self.probe_keys.iter().map(|&k| batch.column(k)).collect();
        rowkey::encode_keys(&key_columns, self.layout)
    }

    fn probe(&self, batch: &Batch) -> Result<Vec<Batch>> {
        if batch.num_rows() == 0 {
            return Ok(vec![]);
        }
        if self.probe_keys.is_empty() {
            return self.probe_cross(batch);
        }
        let keys = self.encode_probe_keys(batch)?;
        match self.join_type {
            JoinType::Inner | JoinType::Left => {
                // Gather matching (build row, probe row) index pairs.
                let mut build_rows: Vec<usize> = Vec::with_capacity(batch.num_rows());
                let mut probe_rows: Vec<usize> = Vec::with_capacity(batch.num_rows());
                let mut unmatched: Vec<usize> = Vec::new();
                let next = &self.next;
                self.table.lookup_each(&keys, |row, head| match head {
                    Some(&head) => {
                        let mut b = head;
                        while b != NO_ROW {
                            build_rows.push(b as usize);
                            probe_rows.push(row);
                            b = next[b as usize];
                        }
                    }
                    None => unmatched.push(row),
                })?;
                let mut outputs = Vec::new();
                if !probe_rows.is_empty() {
                    outputs.push(self.stitch(&build_rows, &probe_rows, batch)?);
                }
                if self.join_type == JoinType::Left && !unmatched.is_empty() {
                    outputs.push(self.stitch_defaults(&unmatched, batch)?);
                }
                Ok(outputs)
            }
            JoinType::Semi | JoinType::Anti => {
                let want_match = self.join_type == JoinType::Semi;
                let mut mask: Vec<bool> = Vec::with_capacity(batch.num_rows());
                self.table.lookup_each(&keys, |_, head| mask.push(head.is_some() == want_match))?;
                let filtered = batch.filter(&mask)?;
                if filtered.num_rows() == 0 {
                    Ok(vec![])
                } else {
                    Ok(vec![filtered])
                }
            }
        }
    }

    /// Keyless probe: the cartesian product (Inner/Left) or an all-or-
    /// nothing pass-through (Semi/Anti keep every probe row iff the build
    /// side is non-empty/empty).
    fn probe_cross(&self, batch: &Batch) -> Result<Vec<Batch>> {
        let build = self
            .build_side
            .as_ref()
            .ok_or_else(|| QuokkaError::internal("probe before the build side was sealed"))?;
        let build_count = build.num_rows();
        match self.join_type {
            JoinType::Inner | JoinType::Left => {
                if build_count == 0 {
                    if self.join_type == JoinType::Left {
                        let all: Vec<usize> = (0..batch.num_rows()).collect();
                        return Ok(vec![self.stitch_defaults(&all, batch)?]);
                    }
                    return Ok(vec![]);
                }
                // Emit the product in bounded chunks: one batch per flush
                // (of at most one probe row's matches past the threshold)
                // instead of one batch holding |build| x |probe| rows.
                const CROSS_OUTPUT_ROWS: usize = 8192;
                let mut outputs = Vec::new();
                let mut build_rows: Vec<usize> = Vec::new();
                let mut probe_rows: Vec<usize> = Vec::new();
                for probe_row in 0..batch.num_rows() {
                    for build_row in 0..build_count {
                        build_rows.push(build_row);
                        probe_rows.push(probe_row);
                        if build_rows.len() >= CROSS_OUTPUT_ROWS {
                            outputs.push(self.stitch(&build_rows, &probe_rows, batch)?);
                            build_rows.clear();
                            probe_rows.clear();
                        }
                    }
                }
                if !build_rows.is_empty() {
                    outputs.push(self.stitch(&build_rows, &probe_rows, batch)?);
                }
                Ok(outputs)
            }
            JoinType::Semi | JoinType::Anti => {
                let keep = (build_count > 0) == (self.join_type == JoinType::Semi);
                if keep {
                    Ok(vec![batch.clone()])
                } else {
                    Ok(vec![])
                }
            }
        }
    }

    /// Combine matched build rows with their probe rows into one output
    /// batch via typed gathers on both sides.
    fn stitch(&self, build_rows: &[usize], probe_rows: &[usize], probe: &Batch) -> Result<Batch> {
        let build = self
            .build_side
            .as_ref()
            .ok_or_else(|| QuokkaError::internal("probe before the build side was sealed"))?;
        let build_taken = build.take(build_rows)?;
        let probe_taken = probe.take(probe_rows)?;
        let mut columns: Vec<Column> = Vec::with_capacity(self.output.len());
        columns.extend(build_taken.columns().iter().cloned());
        columns.extend(probe_taken.columns().iter().cloned());
        Batch::try_new(self.output.clone(), columns)
    }

    /// Emit unmatched probe rows with default-valued build columns (Left).
    fn stitch_defaults(&self, probe_rows: &[usize], probe: &Batch) -> Result<Batch> {
        let mut columns: Vec<Column> = Vec::with_capacity(self.output.len());
        for field in self.build_schema.fields() {
            columns.push(Column::default_of(field.data_type, probe_rows.len()));
        }
        let probe_taken = probe.take(probe_rows)?;
        columns.extend(probe_taken.columns().iter().cloned());
        Batch::try_new(self.output.clone(), columns)
    }
}

impl StageOperator for HashJoinOperator {
    fn push(&mut self, input: usize, batch: &Batch) -> Result<Vec<Batch>> {
        match input {
            0 => {
                if self.build_done {
                    return Err(QuokkaError::internal("build input pushed after finish"));
                }
                self.staged_build.push(batch.clone());
                Ok(vec![])
            }
            1 => {
                if self.build_done {
                    self.probe(batch)
                } else {
                    self.pending_probe.push(batch.clone());
                    Ok(vec![])
                }
            }
            other => Err(QuokkaError::internal(format!("join has no input {other}"))),
        }
    }

    fn finish_input(&mut self, input: usize) -> Result<Vec<Batch>> {
        if input == 0 && !self.build_done {
            self.build_done = true;
            self.seal_build()?;
            let pending = std::mem::take(&mut self.pending_probe);
            let mut out = Vec::new();
            for batch in pending {
                out.extend(self.probe(&batch)?);
            }
            return Ok(out);
        }
        Ok(vec![])
    }

    fn finish(&mut self) -> Result<Vec<Batch>> {
        // All output is produced while probing; nothing is held back.
        Ok(vec![])
    }

    fn output_schema(&self) -> Schema {
        self.output.clone()
    }

    fn state_bytes(&self) -> usize {
        let staged: usize = self.staged_build.iter().map(Batch::byte_size).sum();
        let build: usize = self.build_side.as_ref().map(Batch::byte_size).unwrap_or(0);
        let pending: usize = self.pending_probe.iter().map(Batch::byte_size).sum();
        staged + build + pending + self.table.key_bytes() + self.next.len() * 4
    }

    fn reset(&mut self) {
        self.staged_build.clear();
        self.build_side = None;
        self.table.clear();
        self.next.clear();
        self.pending_probe.clear();
        self.build_done = false;
    }
}

// ---------------------------------------------------------------------------
// Hash aggregate
// ---------------------------------------------------------------------------

/// Hash aggregation; the group state is the channel's state variable.
///
/// Group keys are interned through a [`KeyMap`] from their compact binary
/// encoding (u64 fast path for single int/date keys) to a dense group id,
/// and every aggregate keeps one typed vector indexed by that id (see
/// [`AggState`]). The push path touches no `ScalarValue`: key values are
/// materialized with typed appends only when a group is first seen, and
/// accumulator updates run as typed column loops.
struct HashAggregateOperator {
    input_schema: Schema,
    group_by: Vec<(Expr, String)>,
    aggregates: Vec<AggExpr>,
    output: Schema,
    agg_input_types: Vec<DataType>,
    layout: KeyLayout,
    /// Encoded group key -> dense group id.
    table: KeyMap<u32>,
    /// Typed key values per group-by expression; row `g` is group `g`'s key.
    key_values: Vec<Column>,
    /// Vectorized accumulators, one per aggregate, indexed by group id.
    states: Vec<AggState>,
    /// For a global aggregate (no group columns) we must emit exactly one
    /// row even if no input arrives.
    global: bool,
    /// Fast path for a single dictionary-encoded group key: a memoized
    /// code -> group-id table for the dictionary `Arc` it was built against
    /// (`u32::MAX` = code not interned yet). The byte-keyed `table` stays
    /// authoritative, so batches with different dictionaries — or plain
    /// strings — land in the same groups.
    dict_lut: Option<(Arc<Vec<String>>, Vec<u32>)>,
}

impl HashAggregateOperator {
    fn new(
        input_schema: Schema,
        group_by: Vec<(Expr, String)>,
        aggregates: Vec<AggExpr>,
    ) -> Result<Self> {
        let core = CoreOp::HashAggregate {
            input_schema: input_schema.clone(),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        };
        let output = core.output_schema()?;
        let agg_input_types = aggregates
            .iter()
            .map(|a| a.expr.data_type(&input_schema))
            .collect::<Result<Vec<_>>>()?;
        let key_types =
            group_by.iter().map(|(e, _)| e.data_type(&input_schema)).collect::<Result<Vec<_>>>()?;
        let layout = rowkey::key_layout(&key_types);
        let key_values = key_types.iter().map(|&t| Column::empty(t)).collect();
        let states = aggregates
            .iter()
            .zip(&agg_input_types)
            .map(|(a, &t)| AggState::new(a.func, t))
            .collect();
        let global = group_by.is_empty();
        Ok(HashAggregateOperator {
            input_schema,
            group_by,
            aggregates,
            output,
            agg_input_types,
            layout,
            table: KeyMap::new(layout),
            key_values,
            states,
            global,
            dict_lut: None,
        })
    }

    /// Dense group id for every row, creating groups (and materializing
    /// their key values) for keys seen for the first time.
    fn intern_groups(&mut self, group_columns: &[Column], rows: usize) -> Result<Vec<u32>> {
        if self.global {
            return Ok(vec![0; rows]);
        }
        if let [Column::Dict(d)] = group_columns {
            return self.intern_dict_groups(d, rows);
        }
        let column_refs: Vec<&Column> = group_columns.iter().collect();
        let keys = rowkey::encode_keys(&column_refs, self.layout)?;
        let mut group_ids = Vec::with_capacity(rows);
        for row in 0..rows {
            let next = self.table.len() as u32;
            let id = *self.table.get_mut_or_insert_with(&keys, row, || next)?;
            if id == next {
                for (builder, column) in self.key_values.iter_mut().zip(group_columns) {
                    builder.push_from(column, row)?;
                }
            }
            group_ids.push(id);
        }
        Ok(group_ids)
    }

    /// Group a single dictionary-encoded key column on its codes: per-row
    /// work is one LUT load, and the byte-key interning runs at most once
    /// per distinct dictionary entry instead of once per row. Groups are
    /// only created for codes that actually occur — a dictionary entry
    /// filtered out of the data never materializes a group.
    fn intern_dict_groups(
        &mut self,
        d: &quokka_batch::DictColumn,
        rows: usize,
    ) -> Result<Vec<u32>> {
        let reusable = matches!(&self.dict_lut, Some((arc, _)) if Arc::ptr_eq(arc, &d.values));
        if !reusable {
            self.dict_lut = Some((Arc::clone(&d.values), vec![u32::MAX; d.values.len()]));
        }
        let mut group_ids = Vec::with_capacity(rows);
        for &code in d.codes.iter().take(rows) {
            let code = code as usize;
            let (_, lut) = self.dict_lut.as_ref().expect("lut just installed");
            let mut id = lut[code];
            if id == u32::MAX {
                // First occurrence of this dictionary entry: intern through
                // the authoritative byte-keyed table (the encoding matches
                // what a plain Utf8 column would produce for this value).
                let single = Column::Utf8(vec![d.values[code].clone()]);
                let keys = rowkey::encode_keys(&[&single], self.layout)?;
                let next = self.table.len() as u32;
                id = *self.table.get_mut_or_insert_with(&keys, 0, || next)?;
                if id == next {
                    self.key_values[0]
                        .push(&quokka_batch::datatype::ScalarValue::Utf8(d.values[code].clone()))?;
                }
                self.dict_lut.as_mut().expect("lut just installed").1[code] = id;
            }
            group_ids.push(id);
        }
        Ok(group_ids)
    }

    fn num_groups(&self) -> usize {
        if self.global {
            // The group (at most one) materializes when the first batch
            // resizes the accumulator states; finish() adds the empty-input
            // row separately.
            self.states.first().map(|s| s.num_groups()).unwrap_or(0)
        } else {
            self.table.len()
        }
    }
}

impl StageOperator for HashAggregateOperator {
    fn push(&mut self, _input: usize, batch: &Batch) -> Result<Vec<Batch>> {
        if batch.num_rows() == 0 {
            return Ok(vec![]);
        }
        if batch.schema() != &self.input_schema {
            return Err(QuokkaError::SchemaMismatch {
                expected: self.input_schema.to_string(),
                actual: batch.schema().to_string(),
            });
        }
        let group_columns = self
            .group_by
            .iter()
            .map(|(e, _)| e.evaluate(batch))
            .collect::<Result<Vec<Column>>>()?;
        let agg_columns = self
            .aggregates
            .iter()
            .map(|a| a.expr.evaluate(batch))
            .collect::<Result<Vec<Column>>>()?;
        let group_ids = self.intern_groups(&group_columns, batch.num_rows())?;
        let num_groups = if self.global { 1 } else { self.table.len() };
        for (state, column) in self.states.iter_mut().zip(&agg_columns) {
            state.update_batch(column, &group_ids, num_groups)?;
        }
        Ok(vec![])
    }

    fn finish_input(&mut self, _input: usize) -> Result<Vec<Batch>> {
        Ok(vec![])
    }

    fn finish(&mut self) -> Result<Vec<Batch>> {
        let mut group_count = self.num_groups();
        if group_count == 0 && self.global {
            // SQL semantics: a global aggregate over zero rows still yields
            // one row of "zero" values.
            group_count = 1;
        }
        for state in &mut self.states {
            state.resize(group_count);
        }
        // Emit groups in ascending key order: deterministic across runs and
        // replays regardless of hash-map iteration order (the stringified
        // BTreeMap this replaces was sorted too).
        let mut order: Vec<usize> = (0..group_count).collect();
        order.sort_by(|&a, &b| {
            for column in &self.key_values {
                let ord = compute::cmp_values(column, a, column, b);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        let mut columns: Vec<Column> = Vec::with_capacity(self.output.len());
        for builder in &self.key_values {
            columns.push(builder.take(&order));
        }
        for state in &self.states {
            columns.push(state.finalize_column().take(&order));
        }
        let batch = Batch::try_new(self.output.clone(), columns)?;
        self.reset();
        Ok(vec![batch])
    }

    fn output_schema(&self) -> Schema {
        self.output.clone()
    }

    fn state_bytes(&self) -> usize {
        self.table.key_bytes()
            + self.key_values.iter().map(Column::byte_size).sum::<usize>()
            + self.states.iter().map(AggState::state_bytes).sum::<usize>()
    }

    fn reset(&mut self) {
        self.table.clear();
        for builder in &mut self.key_values {
            *builder = Column::empty(builder.data_type());
        }
        let states = self
            .aggregates
            .iter()
            .zip(&self.agg_input_types)
            .map(|(a, &t)| AggState::new(a.func, t))
            .collect();
        self.states = states;
    }
}

// ---------------------------------------------------------------------------
// Sort / Limit
// ---------------------------------------------------------------------------

/// Buffering sort, optionally with a top-k limit.
struct SortOperator {
    schema: Schema,
    keys: Vec<SortKey>,
    limit: Option<usize>,
    buffered: Vec<Batch>,
}

impl SortOperator {
    fn new(schema: Schema, keys: Vec<(String, bool)>, limit: Option<usize>) -> Result<Self> {
        let keys = keys
            .iter()
            .map(|(name, asc)| Ok(SortKey { column: schema.index_of(name)?, ascending: *asc }))
            .collect::<Result<Vec<_>>>()?;
        Ok(SortOperator { schema, keys, limit, buffered: Vec::new() })
    }
}

impl StageOperator for SortOperator {
    fn push(&mut self, _input: usize, batch: &Batch) -> Result<Vec<Batch>> {
        if batch.num_rows() > 0 {
            self.buffered.push(batch.clone());
        }
        Ok(vec![])
    }
    fn finish_input(&mut self, _input: usize) -> Result<Vec<Batch>> {
        Ok(vec![])
    }
    fn finish(&mut self) -> Result<Vec<Batch>> {
        if self.buffered.is_empty() {
            return Ok(vec![Batch::empty(self.schema.clone())]);
        }
        let all = Batch::concat(&self.buffered)?;
        self.buffered.clear();
        let sorted = compute::sort_batch(&all, &self.keys)?;
        let result = match self.limit {
            Some(n) if n < sorted.num_rows() => sorted.slice(0, n),
            _ => sorted,
        };
        Ok(vec![result])
    }
    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }
    fn state_bytes(&self) -> usize {
        self.buffered.iter().map(Batch::byte_size).sum()
    }
    fn reset(&mut self) {
        self.buffered.clear();
    }
}

/// Keeps the first `n` rows seen.
struct LimitOperator {
    schema: Schema,
    remaining: usize,
    n: usize,
}

impl StageOperator for LimitOperator {
    fn push(&mut self, _input: usize, batch: &Batch) -> Result<Vec<Batch>> {
        if self.remaining == 0 || batch.num_rows() == 0 {
            return Ok(vec![]);
        }
        if batch.num_rows() <= self.remaining {
            self.remaining -= batch.num_rows();
            Ok(vec![batch.clone()])
        } else {
            let taken = batch.slice(0, self.remaining);
            self.remaining = 0;
            Ok(vec![taken])
        }
    }
    fn finish_input(&mut self, _input: usize) -> Result<Vec<Batch>> {
        Ok(vec![])
    }
    fn finish(&mut self) -> Result<Vec<Batch>> {
        Ok(vec![])
    }
    fn output_schema(&self) -> Schema {
        self.schema.clone()
    }
    fn state_bytes(&self) -> usize {
        8
    }
    fn reset(&mut self) {
        self.remaining = self.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{avg, count, sum};
    use crate::expr::{col, lit};
    use quokka_batch::datatype::ScalarValue;

    fn build_batch() -> Batch {
        Batch::try_new(
            Schema::from_pairs(&[("b_key", DataType::Int64), ("b_name", DataType::Utf8)]),
            vec![
                Column::Int64(vec![1, 2, 3]),
                Column::Utf8(vec!["one".into(), "two".into(), "three".into()]),
            ],
        )
        .unwrap()
    }

    fn probe_batch(keys: Vec<i64>) -> Batch {
        let vals: Vec<f64> = keys.iter().map(|&k| k as f64 * 10.0).collect();
        Batch::try_new(
            Schema::from_pairs(&[("p_key", DataType::Int64), ("p_val", DataType::Float64)]),
            vec![Column::Int64(keys), Column::Float64(vals)],
        )
        .unwrap()
    }

    fn join_spec(join_type: JoinType) -> OperatorSpec {
        OperatorSpec::new(CoreOp::HashJoin {
            build_schema: build_batch().schema().clone(),
            probe_schema: probe_batch(vec![]).schema().clone(),
            build_keys: vec![0],
            probe_keys: vec![0],
            join_type,
        })
    }

    #[test]
    fn inner_join_matches_and_pipelines() {
        let mut op = join_spec(JoinType::Inner).instantiate().unwrap();
        // Probe arrives before build finishes: buffered, nothing emitted.
        assert!(op.push(1, &probe_batch(vec![1, 5])).unwrap().is_empty());
        op.push(0, &build_batch()).unwrap();
        assert!(op.state_bytes() > 0);
        // Finishing the build releases the buffered probe rows.
        let released = op.finish_input(0).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].num_rows(), 1); // key 5 has no match
        assert_eq!(released[0].value(0, 1), ScalarValue::Utf8("one".into()));
        // Subsequent probes stream straight through.
        let streamed = op.push(1, &probe_batch(vec![2, 2])).unwrap();
        assert_eq!(streamed[0].num_rows(), 2);
        assert!(op.finish().unwrap().is_empty());
        op.reset();
        assert_eq!(op.state_bytes(), 0);
    }

    #[test]
    fn left_join_fills_defaults_for_unmatched_probe_rows() {
        let mut op = join_spec(JoinType::Left).instantiate().unwrap();
        op.push(0, &build_batch()).unwrap();
        op.finish_input(0).unwrap();
        let out = op.push(1, &probe_batch(vec![1, 99])).unwrap();
        let all = Batch::concat(&out).unwrap();
        assert_eq!(all.num_rows(), 2);
        // The unmatched row (p_key=99) has default build values.
        let unmatched_row = (0..2).find(|&r| all.value(r, 2) == ScalarValue::Int64(99)).unwrap();
        assert_eq!(all.value(unmatched_row, 0), ScalarValue::Int64(0));
        assert_eq!(all.value(unmatched_row, 1), ScalarValue::Utf8(String::new()));
    }

    #[test]
    fn semi_and_anti_join_preserve_probe_columns_only() {
        let mut semi = join_spec(JoinType::Semi).instantiate().unwrap();
        semi.push(0, &build_batch()).unwrap();
        semi.finish_input(0).unwrap();
        let out = semi.push(1, &probe_batch(vec![1, 99, 3])).unwrap();
        assert_eq!(out[0].num_rows(), 2);
        assert_eq!(out[0].schema().column_names(), vec!["p_key", "p_val"]);

        let mut anti = join_spec(JoinType::Anti).instantiate().unwrap();
        anti.push(0, &build_batch()).unwrap();
        anti.finish_input(0).unwrap();
        let out = anti.push(1, &probe_batch(vec![1, 99, 3])).unwrap();
        assert_eq!(out[0].num_rows(), 1);
        assert_eq!(out[0].value(0, 0), ScalarValue::Int64(99));
    }

    fn cross_join_spec(join_type: JoinType) -> OperatorSpec {
        OperatorSpec::new(CoreOp::HashJoin {
            build_schema: build_batch().schema().clone(),
            probe_schema: probe_batch(vec![]).schema().clone(),
            build_keys: vec![],
            probe_keys: vec![],
            join_type,
        })
    }

    #[test]
    fn keyless_join_emits_the_cartesian_product_in_bounded_chunks() {
        let mut op = cross_join_spec(JoinType::Inner).instantiate().unwrap();
        op.push(0, &build_batch()).unwrap(); // 3 build rows
        op.finish_input(0).unwrap();
        // 6000 probe rows x 3 build rows = 18000 output rows, which must
        // arrive in several bounded batches rather than one.
        let probe = probe_batch((0..6000).collect());
        let out = op.push(1, &probe).unwrap();
        assert!(out.len() > 1, "product must be chunked, got one batch of {}", out[0].num_rows());
        assert!(out.iter().all(|b| b.num_rows() <= 8192));
        assert_eq!(out.iter().map(Batch::num_rows).sum::<usize>(), 18_000);
        // Column stitching: every output row pairs a build row with a probe
        // row.
        assert_eq!(out[0].schema().len(), 4);

        // Keyless semi/anti: all-or-nothing on build emptiness.
        let mut semi = cross_join_spec(JoinType::Semi).instantiate().unwrap();
        semi.push(0, &build_batch()).unwrap();
        semi.finish_input(0).unwrap();
        assert_eq!(semi.push(1, &probe_batch(vec![1, 2])).unwrap()[0].num_rows(), 2);
        let mut anti = cross_join_spec(JoinType::Anti).instantiate().unwrap();
        anti.finish_input(0).unwrap(); // empty build side
        assert_eq!(anti.push(1, &probe_batch(vec![1, 2])).unwrap()[0].num_rows(), 2);
    }

    #[test]
    fn hash_aggregate_groups_and_finalizes() {
        let schema = Schema::from_pairs(&[("k", DataType::Utf8), ("v", DataType::Int64)]);
        let spec = OperatorSpec::new(CoreOp::HashAggregate {
            input_schema: schema.clone(),
            group_by: vec![(col("k"), "k".to_string())],
            aggregates: vec![sum(col("v"), "total"), count(col("v"), "n"), avg(col("v"), "mean")],
        });
        assert_eq!(spec.output_schema().unwrap().column_names(), vec!["k", "total", "n", "mean"]);
        let mut op = spec.instantiate().unwrap();
        let batch = Batch::try_new(
            schema,
            vec![
                Column::Utf8(vec!["a".into(), "b".into(), "a".into()]),
                Column::Int64(vec![1, 10, 3]),
            ],
        )
        .unwrap();
        assert!(op.push(0, &batch).unwrap().is_empty());
        assert!(op.state_bytes() > 0);
        let out = op.finish().unwrap();
        assert_eq!(out.len(), 1);
        let result = &out[0];
        assert_eq!(result.num_rows(), 2);
        // BTreeMap ordering makes "a" come first.
        assert_eq!(result.value(0, 0), ScalarValue::Utf8("a".into()));
        assert_eq!(result.value(0, 1), ScalarValue::Int64(4));
        assert_eq!(result.value(0, 2), ScalarValue::Int64(2));
        assert_eq!(result.value(0, 3), ScalarValue::Float64(2.0));
        assert_eq!(result.value(1, 1), ScalarValue::Int64(10));
    }

    #[test]
    fn grouped_aggregate_with_no_input_emits_no_rows() {
        let schema = Schema::from_pairs(&[("k", DataType::Utf8), ("v", DataType::Int64)]);
        let spec = OperatorSpec::new(CoreOp::HashAggregate {
            input_schema: schema.clone(),
            group_by: vec![(col("k"), "k".to_string())],
            aggregates: vec![sum(col("v"), "total")],
        });
        let mut op = spec.instantiate().unwrap();
        // Pushing an empty batch must not create a phantom group either.
        op.push(0, &Batch::empty(schema)).unwrap();
        let out = op.finish().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].num_rows(), 0);
    }

    #[test]
    fn sum_type_follows_input_column_type() {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int64),
            ("ints", DataType::Int64),
            ("floats", DataType::Float64),
        ]);
        let spec = OperatorSpec::new(CoreOp::HashAggregate {
            input_schema: schema.clone(),
            group_by: vec![(col("k"), "k".to_string())],
            aggregates: vec![sum(col("ints"), "int_sum"), sum(col("floats"), "float_sum")],
        });
        let mut op = spec.instantiate().unwrap();
        let batch = Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![1, 1, 2]),
                Column::Int64(vec![10, 20, 30]),
                Column::Float64(vec![0.5, 0.25, 1.0]),
            ],
        )
        .unwrap();
        op.push(0, &batch).unwrap();
        let out = op.finish().unwrap();
        let result = &out[0];
        // An all-integer SUM stays Int64; the float column sums as Float64.
        assert_eq!(result.column(1), &Column::Int64(vec![30, 30]));
        assert_eq!(result.column(2), &Column::Float64(vec![0.75, 1.0]));
    }

    #[test]
    fn min_max_on_strings() {
        let schema = Schema::from_pairs(&[("k", DataType::Int64), ("s", DataType::Utf8)]);
        let spec = OperatorSpec::new(CoreOp::HashAggregate {
            input_schema: schema.clone(),
            group_by: vec![(col("k"), "k".to_string())],
            aggregates: vec![
                crate::aggregate::min(col("s"), "lo"),
                crate::aggregate::max(col("s"), "hi"),
            ],
        });
        let mut op = spec.instantiate().unwrap();
        // Spread the updates across two batches so replacement logic runs on
        // both fresh and existing groups.
        let first = Batch::try_new(
            schema.clone(),
            vec![Column::Int64(vec![1, 2]), Column::Utf8(vec!["pear".into(), "kiwi".into()])],
        )
        .unwrap();
        let second = Batch::try_new(
            schema,
            vec![
                Column::Int64(vec![1, 1, 2]),
                Column::Utf8(vec!["apple".into(), "quince".into(), "zucchini".into()]),
            ],
        )
        .unwrap();
        op.push(0, &first).unwrap();
        op.push(0, &second).unwrap();
        let out = op.finish().unwrap();
        let result = &out[0];
        assert_eq!(result.value(0, 1), ScalarValue::Utf8("apple".into()));
        assert_eq!(result.value(0, 2), ScalarValue::Utf8("quince".into()));
        assert_eq!(result.value(1, 1), ScalarValue::Utf8("kiwi".into()));
        assert_eq!(result.value(1, 2), ScalarValue::Utf8("zucchini".into()));
    }

    #[test]
    fn count_distinct_dedups_across_batches() {
        let schema = Schema::from_pairs(&[("k", DataType::Utf8), ("v", DataType::Int64)]);
        let spec = OperatorSpec::new(CoreOp::HashAggregate {
            input_schema: schema.clone(),
            group_by: vec![(col("k"), "k".to_string())],
            aggregates: vec![crate::aggregate::count_distinct(col("v"), "distinct")],
        });
        let mut op = spec.instantiate().unwrap();
        let batch = |keys: Vec<&str>, vals: Vec<i64>| {
            Batch::try_new(
                schema.clone(),
                vec![
                    Column::Utf8(keys.into_iter().map(String::from).collect()),
                    Column::Int64(vals),
                ],
            )
            .unwrap()
        };
        // Value 7 for group "a" appears in both batches and must count once.
        op.push(0, &batch(vec!["a", "a", "b"], vec![7, 8, 7])).unwrap();
        op.push(0, &batch(vec!["a", "b", "b"], vec![7, 9, 9])).unwrap();
        let out = op.finish().unwrap();
        let result = &out[0];
        assert_eq!(result.value(0, 0), ScalarValue::Utf8("a".into()));
        assert_eq!(result.value(0, 1), ScalarValue::Int64(2)); // {7, 8}
        assert_eq!(result.value(1, 1), ScalarValue::Int64(2)); // {7, 9}
    }

    #[test]
    fn aggregate_on_integer_keys_uses_dense_group_ids() {
        // Exercises the u64 fast-path key layout end to end, including
        // emission in ascending (numeric, not stringified) key order.
        let schema = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Int64)]);
        let spec = OperatorSpec::new(CoreOp::HashAggregate {
            input_schema: schema.clone(),
            group_by: vec![(col("k"), "k".to_string())],
            aggregates: vec![count(col("v"), "n")],
        });
        let mut op = spec.instantiate().unwrap();
        let batch = Batch::try_new(
            schema,
            vec![Column::Int64(vec![10, 9, 10, -3]), Column::Int64(vec![0, 0, 0, 0])],
        )
        .unwrap();
        op.push(0, &batch).unwrap();
        let out = op.finish().unwrap();
        assert_eq!(out[0].column(0), &Column::Int64(vec![-3, 9, 10]));
        assert_eq!(out[0].column(1), &Column::Int64(vec![1, 1, 2]));
    }

    #[test]
    fn global_aggregate_emits_one_row_even_for_empty_input() {
        let schema = Schema::from_pairs(&[("v", DataType::Float64)]);
        let spec = OperatorSpec::new(CoreOp::HashAggregate {
            input_schema: schema,
            group_by: vec![],
            aggregates: vec![count(col("v"), "n")],
        });
        let mut op = spec.instantiate().unwrap();
        let out = op.finish().unwrap();
        assert_eq!(out[0].num_rows(), 1);
        assert_eq!(out[0].value(0, 0), ScalarValue::Int64(0));
    }

    #[test]
    fn sort_and_limit_operators() {
        let schema = Schema::from_pairs(&[("v", DataType::Int64)]);
        let spec = OperatorSpec::new(CoreOp::Sort {
            input_schema: schema.clone(),
            keys: vec![("v".to_string(), false)],
            limit: Some(2),
        });
        let mut op = spec.instantiate().unwrap();
        let batch = Batch::try_new(schema.clone(), vec![Column::Int64(vec![5, 1, 9, 3])]).unwrap();
        op.push(0, &batch).unwrap();
        let out = op.finish().unwrap();
        assert_eq!(out[0].column(0), &Column::Int64(vec![9, 5]));

        let spec = OperatorSpec::new(CoreOp::Limit { input_schema: schema.clone(), n: 3 });
        let mut op = spec.instantiate().unwrap();
        let first = op.push(0, &batch.slice(0, 2)).unwrap();
        assert_eq!(first[0].num_rows(), 2);
        let second = op.push(0, &batch).unwrap();
        assert_eq!(second[0].num_rows(), 1);
        assert!(op.push(0, &batch).unwrap().is_empty());
        op.reset();
        assert_eq!(op.push(0, &batch).unwrap()[0].num_rows(), 3);
    }

    #[test]
    fn post_transforms_apply_to_operator_output() {
        let schema = Schema::from_pairs(&[("k", DataType::Int64), ("v", DataType::Int64)]);
        let spec = OperatorSpec::new(CoreOp::Map { input_schema: schema.clone() })
            .with_post(Transform::Filter(col("v").gt(lit(5i64))))
            .with_post(Transform::Project(vec![(col("v").mul(lit(2i64)), "doubled".to_string())]));
        assert_eq!(spec.output_schema().unwrap().column_names(), vec!["doubled"]);
        let mut op = spec.instantiate().unwrap();
        let batch = Batch::try_new(
            schema,
            vec![Column::Int64(vec![1, 2, 3]), Column::Int64(vec![3, 7, 9])],
        )
        .unwrap();
        let out = op.push(0, &batch).unwrap();
        assert_eq!(out[0].column(0), &Column::Int64(vec![14, 18]));
        assert_eq!(out[0].schema().column_names(), vec!["doubled"]);
    }

    #[test]
    fn spec_metadata() {
        assert_eq!(join_spec(JoinType::Inner).num_inputs(), 2);
        assert!(join_spec(JoinType::Inner).is_stateful());
        let map = OperatorSpec::new(CoreOp::Map {
            input_schema: Schema::from_pairs(&[("x", DataType::Int64)]),
        });
        assert_eq!(map.num_inputs(), 1);
        assert!(!map.is_stateful());
    }
}
