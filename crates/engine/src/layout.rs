//! Placement of a compiled stage graph onto a cluster.

use quokka_common::config::ClusterConfig;
use quokka_common::ids::{ChannelAddr, StageId, WorkerId};
use quokka_common::{QuokkaError, Result};
use quokka_plan::stage::{Parallelism, StageGraph};
use std::collections::BTreeMap;

/// The concrete layout of one query on one cluster: how many channels every
/// stage runs, which worker initially hosts each channel, which input splits
/// each scan channel owns, and the flattened upstream-channel ordering used
/// by the watermark vectors in the GCS.
#[derive(Debug, Clone)]
pub struct QueryLayout {
    pub graph: StageGraph,
    workers: u32,
    /// Channels per stage.
    channel_counts: Vec<u32>,
    /// Scan stages: per channel, the split ids it owns.
    splits: Vec<Vec<Vec<u64>>>,
    /// For each stage, the consuming stage and the operator-input index this
    /// stage feeds (None for the sink).
    consumer: Vec<Option<(StageId, usize)>>,
    /// For each stage, its upstream channels in watermark order.
    upstream_channels: Vec<Vec<(usize, ChannelAddr)>>,
}

impl QueryLayout {
    /// Lay out `graph` on a cluster, given the number of splits available
    /// for each scanned table.
    pub fn new(
        graph: StageGraph,
        cluster: &ClusterConfig,
        table_splits: &BTreeMap<String, u64>,
    ) -> Result<Self> {
        let workers = cluster.workers.max(1);
        let data_parallel = cluster.channels_per_stage.max(1);
        let mut channel_counts = Vec::with_capacity(graph.stages.len());
        for stage in &graph.stages {
            let channels = match stage.parallelism {
                Parallelism::DataParallel => data_parallel,
                Parallelism::Single => 1,
            };
            channel_counts.push(channels);
        }

        let mut splits = vec![Vec::new(); graph.stages.len()];
        for stage in &graph.stages {
            if let Some(scan) = &stage.scan {
                let total = *table_splits.get(&scan.table).ok_or_else(|| {
                    QuokkaError::PlanError(format!("table '{}' has not been loaded", scan.table))
                })?;
                let channels = channel_counts[stage.id as usize] as u64;
                let mut per_channel = vec![Vec::new(); channels as usize];
                for split in 0..total {
                    per_channel[(split % channels) as usize].push(split);
                }
                splits[stage.id as usize] = per_channel;
            }
        }

        let mut consumer = vec![None; graph.stages.len()];
        for stage in &graph.stages {
            for (input_index, &input) in stage.inputs.iter().enumerate() {
                consumer[input as usize] = Some((stage.id, input_index));
            }
        }

        let mut upstream_channels = Vec::with_capacity(graph.stages.len());
        for stage in &graph.stages {
            let mut flattened = Vec::new();
            for (input_index, &input) in stage.inputs.iter().enumerate() {
                for channel in 0..channel_counts[input as usize] {
                    flattened.push((input_index, ChannelAddr::new(input, channel)));
                }
            }
            upstream_channels.push(flattened);
        }

        Ok(QueryLayout { graph, workers, channel_counts, splits, consumer, upstream_channels })
    }

    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Number of channels of `stage`.
    pub fn channel_count(&self, stage: StageId) -> u32 {
        self.channel_counts[stage as usize]
    }

    /// Every channel of `stage`.
    pub fn channels_of(&self, stage: StageId) -> Vec<ChannelAddr> {
        (0..self.channel_count(stage)).map(|c| ChannelAddr::new(stage, c)).collect()
    }

    /// Every channel of the query.
    pub fn all_channels(&self) -> Vec<ChannelAddr> {
        (0..self.graph.stages.len() as StageId).flat_map(|s| self.channels_of(s)).collect()
    }

    /// Initial worker placement: channel `c` of stage `s` starts on worker
    /// `(s + c) mod workers`, staggering single-channel stages across the
    /// cluster (each TaskManager then hosts one channel from every
    /// data-parallel stage, as in the paper's §IV-A).
    pub fn initial_worker(&self, addr: ChannelAddr) -> WorkerId {
        (addr.stage + addr.channel) % self.workers
    }

    /// Input splits owned by a scan channel.
    pub fn splits_for(&self, addr: ChannelAddr) -> &[u64] {
        let per_stage = &self.splits[addr.stage as usize];
        if per_stage.is_empty() {
            &[]
        } else {
            &per_stage[addr.channel as usize]
        }
    }

    /// Total number of input splits across every scan stage (used as the
    /// progress denominator for fault injection).
    pub fn total_splits(&self) -> u64 {
        self.splits.iter().flat_map(|per_channel| per_channel.iter().map(|v| v.len() as u64)).sum()
    }

    /// The consuming stage and operator-input index fed by `stage`, or
    /// `None` for the sink stage.
    pub fn consumer_of(&self, stage: StageId) -> Option<(StageId, usize)> {
        self.consumer[stage as usize]
    }

    /// The sink stage (whose output is the query result).
    pub fn sink(&self) -> StageId {
        self.graph.sink
    }

    /// Upstream channels of `stage` in watermark order, together with the
    /// operator-input index each one feeds.
    pub fn upstream_channels(&self, stage: StageId) -> &[(usize, ChannelAddr)] {
        &self.upstream_channels[stage as usize]
    }

    /// Flat watermark index of `upstream` within `stage`'s consumed vector.
    pub fn watermark_index(&self, stage: StageId, upstream: ChannelAddr) -> Result<usize> {
        self.upstream_channels[stage as usize]
            .iter()
            .position(|(_, addr)| *addr == upstream)
            .ok_or_else(|| {
                QuokkaError::internal(format!("channel {upstream} does not feed stage {stage}"))
            })
    }

    /// Channels of every upstream stage feeding operator input `input_index`
    /// of `stage`.
    pub fn input_channels(&self, stage: StageId, input_index: usize) -> Vec<ChannelAddr> {
        self.upstream_channels[stage as usize]
            .iter()
            .filter(|(idx, _)| *idx == input_index)
            .map(|(_, addr)| *addr)
            .collect()
    }

    /// Number of operator inputs of `stage`.
    pub fn num_inputs(&self, stage: StageId) -> usize {
        self.graph.stage(stage).inputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quokka_batch::{DataType, Schema};
    use quokka_plan::aggregate::sum;
    use quokka_plan::expr::col;
    use quokka_plan::logical::{JoinType, PlanBuilder};
    use quokka_plan::stage::StageGraph;

    fn layout(workers: u32) -> QueryLayout {
        let orders = Schema::from_pairs(&[("o_orderkey", DataType::Int64)]);
        let lineitem =
            Schema::from_pairs(&[("l_orderkey", DataType::Int64), ("l_price", DataType::Float64)]);
        let plan = PlanBuilder::scan("orders", orders)
            .join(
                PlanBuilder::scan("lineitem", lineitem),
                vec![("o_orderkey", "l_orderkey")],
                JoinType::Inner,
            )
            .aggregate(vec![(col("o_orderkey"), "k")], vec![sum(col("l_price"), "rev")])
            .sort(vec![("rev", false)])
            .build()
            .unwrap();
        let graph = StageGraph::compile(&plan).unwrap();
        let mut table_splits = BTreeMap::new();
        table_splits.insert("orders".to_string(), 10);
        table_splits.insert("lineitem".to_string(), 7);
        QueryLayout::new(graph, &ClusterConfig::with_workers(workers), &table_splits).unwrap()
    }

    #[test]
    fn channel_counts_follow_parallelism() {
        let l = layout(4);
        assert_eq!(l.channel_count(0), 4); // orders scan
        assert_eq!(l.channel_count(1), 4); // lineitem scan
        assert_eq!(l.channel_count(2), 4); // join
        assert_eq!(l.channel_count(3), 4); // aggregate on plain column
        assert_eq!(l.channel_count(4), 1); // sort is single channel
        assert_eq!(l.all_channels().len(), 17);
        assert_eq!(l.sink(), 4);
        assert_eq!(l.workers(), 4);
    }

    #[test]
    fn splits_are_partitioned_round_robin_and_complete() {
        let l = layout(4);
        let mut seen = Vec::new();
        for channel in l.channels_of(0) {
            seen.extend_from_slice(l.splits_for(channel));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
        assert_eq!(l.total_splits(), 17);
        assert!(l.splits_for(ChannelAddr::new(2, 0)).is_empty());
    }

    #[test]
    fn consumer_and_watermark_indexing() {
        let l = layout(2);
        assert_eq!(l.consumer_of(0), Some((2, 0)));
        assert_eq!(l.consumer_of(1), Some((2, 1)));
        assert_eq!(l.consumer_of(2), Some((3, 0)));
        assert_eq!(l.consumer_of(4), None);
        // Join has upstream channels: 2 from the build stage then 2 from the
        // probe stage.
        let ups = l.upstream_channels(2);
        assert_eq!(ups.len(), 4);
        assert_eq!(ups[0], (0, ChannelAddr::new(0, 0)));
        assert_eq!(ups[3], (1, ChannelAddr::new(1, 1)));
        assert_eq!(l.watermark_index(2, ChannelAddr::new(1, 0)).unwrap(), 2);
        assert!(l.watermark_index(2, ChannelAddr::new(3, 0)).is_err());
        assert_eq!(l.input_channels(2, 1), vec![ChannelAddr::new(1, 0), ChannelAddr::new(1, 1)]);
        assert_eq!(l.num_inputs(2), 2);
        assert_eq!(l.num_inputs(0), 0);
    }

    #[test]
    fn worker_placement_spreads_channels() {
        let l = layout(4);
        assert_eq!(l.initial_worker(ChannelAddr::new(0, 0)), 0);
        assert_eq!(l.initial_worker(ChannelAddr::new(0, 3)), 3);
        assert_eq!(l.initial_worker(ChannelAddr::new(1, 3)), 0);
        // The single-channel sort stage is staggered by stage id.
        assert_eq!(l.initial_worker(ChannelAddr::new(4, 0)), 0);
        let single = layout(3);
        assert_eq!(single.initial_worker(ChannelAddr::new(4, 0)), 1);
    }

    #[test]
    fn missing_table_split_counts_error() {
        let schema = Schema::from_pairs(&[("x", DataType::Int64)]);
        let plan = PlanBuilder::scan("ghost", schema).build().unwrap();
        let graph = StageGraph::compile(&plan).unwrap();
        let err = QueryLayout::new(graph, &ClusterConfig::with_workers(2), &BTreeMap::new());
        assert!(err.is_err());
    }
}
