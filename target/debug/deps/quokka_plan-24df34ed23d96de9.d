/root/repo/target/debug/deps/quokka_plan-24df34ed23d96de9.d: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

/root/repo/target/debug/deps/libquokka_plan-24df34ed23d96de9.rlib: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

/root/repo/target/debug/deps/libquokka_plan-24df34ed23d96de9.rmeta: crates/plan/src/lib.rs crates/plan/src/aggregate.rs crates/plan/src/catalog.rs crates/plan/src/expr.rs crates/plan/src/logical.rs crates/plan/src/physical.rs crates/plan/src/reference.rs crates/plan/src/stage.rs

crates/plan/src/lib.rs:
crates/plan/src/aggregate.rs:
crates/plan/src/catalog.rs:
crates/plan/src/expr.rs:
crates/plan/src/logical.rs:
crates/plan/src/physical.rs:
crates/plan/src/reference.rs:
crates/plan/src/stage.rs:
