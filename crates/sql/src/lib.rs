//! SQL frontend for the Quokka engine: parse → bind → [`LogicalPlan`].
//!
//! The frontend is self-contained: a hand-written [`lexer`], a
//! recursive-descent [`parser`] producing a typed AST ([`ast`]), and a
//! [`binder`] that resolves names against a [`Catalog`] and lowers the
//! statement to the same [`LogicalPlan`] nodes the hand-built TPC-H plans
//! use. Every error is a positioned [`SqlError`] with the 1-based line and
//! column of the offending token.
//!
//! # Supported grammar
//!
//! ```text
//! SELECT expr [AS alias], ... | *
//! FROM table [alias]
//! [[INNER] JOIN table [alias] ON col = col [AND col = col ...]] ...
//! [WHERE predicate]
//! [GROUP BY expr, ...] [HAVING predicate]
//! [ORDER BY output_column [ASC|DESC], ...] [LIMIT n]
//! ```
//!
//! Expressions cover the engine's full operator set: arithmetic,
//! comparisons, `AND`/`OR`/`NOT`, `[NOT] LIKE`, `[NOT] IN (literals)`,
//! `[NOT] BETWEEN`, searched `CASE ... ELSE ... END`, `EXTRACT(YEAR FROM
//! d)`, `SUBSTRING(s FROM i FOR n)`, `CAST(x AS type)`, `DATE 'YYYY-MM-DD'`
//! literals, and the aggregates `SUM` / `AVG` / `MIN` / `MAX` / `COUNT` /
//! `COUNT(DISTINCT ...)` (including arithmetic over aggregates such as
//! `sum(a) / sum(b)`).
//!
//! Known gaps (reported as positioned errors, never panics): subqueries,
//! outer-join syntax, self-joins, `SELECT DISTINCT`, comma-separated FROM
//! lists, `NULL`, and ORDER BY on arbitrary expressions.
//!
//! # Example
//!
//! ```
//! use quokka_plan::catalog::MemoryCatalog;
//! use quokka_batch::{Batch, Column, DataType, Schema};
//!
//! let catalog = MemoryCatalog::new();
//! let schema = Schema::from_pairs(&[("id", DataType::Int64), ("price", DataType::Float64)]);
//! catalog.register(
//!     "items",
//!     schema.clone(),
//!     vec![Batch::try_new(
//!         schema,
//!         vec![Column::Int64(vec![1, 2]), Column::Float64(vec![10.0, 20.0])],
//!     )
//!     .unwrap()],
//! );
//!
//! let plan = quokka_sql::plan_query("SELECT sum(price) AS total FROM items", &catalog).unwrap();
//! assert_eq!(plan.schema().unwrap().column_names(), vec!["total"]);
//!
//! let err = quokka_sql::plan_query("SELECT prize FROM items", &catalog).unwrap_err();
//! assert!(err.to_string().contains("did you mean 'price'"));
//! ```

pub mod ast;
pub mod binder;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::SelectStatement;
pub use error::{Pos, SqlError, SqlErrorKind};

use quokka_plan::catalog::Catalog;
use quokka_plan::logical::LogicalPlan;

/// Parse one SELECT statement (no name resolution).
pub fn parse(sql: &str) -> Result<SelectStatement, SqlError> {
    parser::parse(sql)
}

/// Parse `sql` and bind it against `catalog`, producing an executable
/// logical plan.
pub fn plan_query(sql: &str, catalog: &dyn Catalog) -> Result<LogicalPlan, SqlError> {
    let statement = parser::parse(sql)?;
    binder::bind_statement(&statement, catalog)
}
