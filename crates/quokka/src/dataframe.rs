//! The lazy DataFrame API: composable, schema-checked query building.
//!
//! A [`DataFrame`] is a cheap, cloneable description of a computation over
//! the session's tables — nothing executes until [`collect`](DataFrame::collect)
//! or [`stream`](DataFrame::stream) is called. Every transformation is
//! validated eagerly against the frame's schema (reusing the same
//! name-resolution and type machinery the SQL binder uses, including
//! "did you mean" suggestions), so a typo fails at the call that introduced
//! it rather than at execution time.
//!
//! ```
//! use quokka::dataframe::{col, date, lit, sum};
//! use quokka::QuokkaSession;
//!
//! let session = QuokkaSession::tpch(0.002, 2).unwrap();
//! let revenue = session
//!     .table("lineitem").unwrap()
//!     .filter(col("l_shipdate").lt_eq(date(1998, 9, 2))).unwrap()
//!     .group_by([col("l_returnflag")]).unwrap()
//!     .agg([sum(col("l_extendedprice")).alias("rev")]).unwrap()
//!     .sort([(col("rev"), false)]).unwrap();
//! let outcome = revenue.collect().unwrap();
//! assert_eq!(outcome.batch.schema().column_names(), vec!["l_returnflag", "rev"]);
//! ```
//!
//! Frames lower to the engine's [`LogicalPlan`], so they flow through the
//! same optimizer, stage compiler, and distributed runtime as SQL; the two
//! frontends are parity-tested against each other on the TPC-H workload
//! (see [`tpch`]).

pub mod tpch;

use crate::{BatchStream, QueryHandle, QueryOutcome, QuokkaSession};
use quokka_batch::datatype::date_to_days;
use quokka_batch::{Batch, DataType, ScalarValue, Schema};
use quokka_common::{QuokkaError, Result};
use quokka_plan::aggregate::{AggExpr, AggFunc};
use quokka_plan::catalog::Catalog;
use quokka_plan::logical::{sort_by_exprs, JoinType, LogicalPlan};
use quokka_sql::suggest;

pub use quokka_plan::expr::{col, lit, Expr, NamedExpr};

/// A date literal from a calendar (year, month, day).
pub fn date(year: i64, month: i64, day: i64) -> Expr {
    Expr::Literal(ScalarValue::Date(date_to_days(year, month, day)))
}

/// `SUM(expr)`; name the output with [`Agg::alias`].
pub fn sum(expr: Expr) -> Agg {
    Agg::new(AggFunc::Sum, "sum", expr)
}
/// `AVG(expr)`.
pub fn avg(expr: Expr) -> Agg {
    Agg::new(AggFunc::Avg, "avg", expr)
}
/// `MIN(expr)`.
pub fn min(expr: Expr) -> Agg {
    Agg::new(AggFunc::Min, "min", expr)
}
/// `MAX(expr)`.
pub fn max(expr: Expr) -> Agg {
    Agg::new(AggFunc::Max, "max", expr)
}
/// `COUNT(expr)` (the engine has no NULLs, so this counts rows).
pub fn count(expr: Expr) -> Agg {
    Agg::new(AggFunc::Count, "count", expr)
}
/// `COUNT(DISTINCT expr)`.
pub fn count_distinct(expr: Expr) -> Agg {
    Agg::new(AggFunc::CountDistinct, "count_distinct", expr)
}

/// An aggregate call under construction: a function, its input expression,
/// and an optional output alias. Produced by [`sum`], [`avg`], [`min`],
/// [`max`], [`count`] and [`count_distinct`].
#[derive(Debug, Clone)]
pub struct Agg {
    func: AggFunc,
    display: &'static str,
    expr: Expr,
    alias: Option<String>,
}

impl Agg {
    fn new(func: AggFunc, display: &'static str, expr: Expr) -> Self {
        Agg { func, display, expr, alias: None }
    }

    /// Name the aggregate's output column (SQL `AS`).
    pub fn alias(mut self, name: impl Into<String>) -> Self {
        self.alias = Some(name.into());
        self
    }

    fn into_agg_expr(self, index: usize) -> AggExpr {
        let alias = self.alias.unwrap_or_else(|| match &self.expr {
            Expr::Column(name) => format!("{}({name})", self.display),
            _ => format!("{}_{index}", self.display),
        });
        AggExpr { func: self.func, expr: self.expr, alias }
    }
}

/// A lazy, composable query over a session's tables.
///
/// See the [module documentation](self) for the programming model. Frames
/// are cheap to clone (useful for sharing a common prefix between several
/// derived queries) and every method returns a *new* frame, leaving the
/// receiver untouched.
#[derive(Debug, Clone)]
pub struct DataFrame {
    session: QuokkaSession,
    plan: LogicalPlan,
    schema: Schema,
}

impl DataFrame {
    /// Start from a registered table (the `session.table(name)` entry
    /// point).
    pub(crate) fn table(session: QuokkaSession, name: &str) -> Result<DataFrame> {
        let schema = session.catalog().table_schema(name).map_err(|_| {
            let names = session.table_names();
            QuokkaError::PlanError(format!(
                "unknown table '{name}'{}",
                suggest(name, names.iter().map(String::as_str).collect())
            ))
        })?;
        let plan = LogicalPlan::Scan { table: name.to_string(), schema: schema.clone() };
        Ok(DataFrame { session, plan, schema })
    }

    /// Wrap an existing logical plan (escape hatch for plans built by hand
    /// or produced by the SQL frontend).
    pub fn from_plan(session: QuokkaSession, plan: LogicalPlan) -> Result<DataFrame> {
        let schema = plan.schema().map_err(|e| crate::invalid_plan_error(e, &plan))?;
        Ok(DataFrame { session, plan, schema })
    }

    /// The output schema of this frame.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The logical plan this frame lowers to.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The session this frame executes against.
    pub fn session(&self) -> &QuokkaSession {
        &self.session
    }

    /// Keep rows satisfying `predicate` (must be a boolean expression over
    /// this frame's columns).
    pub fn filter(self, predicate: Expr) -> Result<DataFrame> {
        self.check_expr(&predicate, "filter")?;
        let dtype = predicate.data_type(&self.schema)?;
        if dtype != DataType::Bool {
            return Err(QuokkaError::TypeError(format!(
                "filter predicate must be Bool, got {dtype} (columns: [{}])",
                predicate.referenced_columns().join(", ")
            )));
        }
        let plan = LogicalPlan::Filter { input: Box::new(self.plan), predicate };
        DataFrame::from_plan(self.session, plan)
    }

    /// Compute named expressions (SQL `SELECT`). Accepts bare expressions
    /// (a column keeps its name; anonymous computations become `col{i}`) or
    /// aliased ones built with [`Expr::alias`].
    pub fn select<I>(self, exprs: I) -> Result<DataFrame>
    where
        I: IntoIterator,
        I::Item: Into<NamedExpr>,
    {
        let mut projected = Vec::new();
        for (i, item) in exprs.into_iter().enumerate() {
            let named: NamedExpr = item.into();
            self.check_expr(&named.expr, "select")?;
            let name = named.resolve_name(i);
            projected.push((named.expr, name));
        }
        if projected.is_empty() {
            return Err(QuokkaError::PlanError("select of zero expressions".to_string()));
        }
        check_unique(projected.iter().map(|(_, n)| n.as_str()))?;
        let plan = LogicalPlan::Project { input: Box::new(self.plan), exprs: projected };
        DataFrame::from_plan(self.session, plan)
    }

    /// Hash-join with `right`; `self` is the build side, `right` the probe
    /// side, and `on` pairs are `(left column, right column)` equalities.
    /// The engine's column namespace is flat, so the two frames must not
    /// share column names.
    pub fn join(
        self,
        right: DataFrame,
        on: &[(&str, &str)],
        join_type: JoinType,
    ) -> Result<DataFrame> {
        for (left_key, right_key) in on {
            let left_type = self.schema.data_type(left_key).map_err(|_| {
                QuokkaError::PlanError(format!(
                    "join key '{left_key}' is not a column of the left frame{}",
                    suggest(left_key, self.schema.column_names())
                ))
            })?;
            let right_type = right.schema.data_type(right_key).map_err(|_| {
                QuokkaError::PlanError(format!(
                    "join key '{right_key}' is not a column of the right frame{}",
                    suggest(right_key, right.schema.column_names())
                ))
            })?;
            if left_type != right_type {
                return Err(QuokkaError::TypeError(format!(
                    "join key type mismatch: '{left_key}' is {left_type} but \
                     '{right_key}' is {right_type}"
                )));
            }
        }
        if matches!(join_type, JoinType::Inner | JoinType::Left) {
            if let Some(dup) =
                right.schema.column_names().into_iter().find(|n| self.schema.index_of(n).is_ok())
            {
                return Err(QuokkaError::PlanError(format!(
                    "joining would duplicate column '{dup}'; the engine's namespace is flat, \
                     so select/rename columns apart before joining"
                )));
            }
        }
        let plan = LogicalPlan::Join {
            build: Box::new(self.plan),
            probe: Box::new(right.plan),
            on: on.iter().map(|(l, r)| (l.to_string(), r.to_string())).collect(),
            join_type,
        };
        DataFrame::from_plan(self.session, plan)
    }

    /// Keep this frame's rows that have at least one match in `right` — a
    /// decorrelated `WHERE EXISTS` / `IN (SELECT ...)`. `on` pairs are
    /// `(this frame's column, right's column)` equalities; the output
    /// schema is exactly this frame's schema (no columns of `right`
    /// survive), so column names may overlap freely.
    pub fn semi_join(self, right: DataFrame, on: &[(&str, &str)]) -> Result<DataFrame> {
        self.existence_join(right, on, JoinType::Semi)
    }

    /// Keep this frame's rows with *no* match in `right` — a decorrelated
    /// `WHERE NOT EXISTS` / `NOT IN (SELECT ...)`. Same key convention and
    /// schema behavior as [`semi_join`](Self::semi_join).
    pub fn anti_join(self, right: DataFrame, on: &[(&str, &str)]) -> Result<DataFrame> {
        self.existence_join(right, on, JoinType::Anti)
    }

    fn existence_join(
        self,
        right: DataFrame,
        on: &[(&str, &str)],
        join_type: JoinType,
    ) -> Result<DataFrame> {
        for (left_key, right_key) in on {
            let left_type = self.schema.data_type(left_key).map_err(|_| {
                QuokkaError::PlanError(format!(
                    "join key '{left_key}' is not a column of this frame{}",
                    suggest(left_key, self.schema.column_names())
                ))
            })?;
            let right_type = right.schema.data_type(right_key).map_err(|_| {
                QuokkaError::PlanError(format!(
                    "join key '{right_key}' is not a column of the right frame{}",
                    suggest(right_key, right.schema.column_names())
                ))
            })?;
            if left_type != right_type {
                return Err(QuokkaError::TypeError(format!(
                    "join key type mismatch: '{left_key}' is {left_type} but \
                     '{right_key}' is {right_type}"
                )));
            }
        }
        // The engine's semi/anti join emits *probe* rows matched (or not)
        // against the build side, so this frame is the probe and `right`
        // the build.
        let plan = LogicalPlan::Join {
            build: Box::new(right.plan),
            probe: Box::new(self.plan),
            on: on.iter().map(|(l, r)| (r.to_string(), l.to_string())).collect(),
            join_type,
        };
        DataFrame::from_plan(self.session, plan)
    }

    /// Group by key expressions, yielding a [`GroupedDataFrame`] whose
    /// [`agg`](GroupedDataFrame::agg) produces the aggregated frame. Keys
    /// accept the same bare-or-aliased forms as [`select`](Self::select).
    pub fn group_by<I>(self, keys: I) -> Result<GroupedDataFrame>
    where
        I: IntoIterator,
        I::Item: Into<NamedExpr>,
    {
        let mut group_by = Vec::new();
        for (i, item) in keys.into_iter().enumerate() {
            let named: NamedExpr = item.into();
            self.check_expr(&named.expr, "group_by")?;
            let name = named.resolve_name(i);
            group_by.push((named.expr, name));
        }
        Ok(GroupedDataFrame { frame: self, group_by })
    }

    /// Aggregate the whole frame into a single row (grouping by nothing).
    pub fn agg<I>(self, aggs: I) -> Result<DataFrame>
    where
        I: IntoIterator<Item = Agg>,
    {
        self.group_by(Vec::<NamedExpr>::new())?.agg(aggs)
    }

    /// Deduplicate rows (SQL `SELECT DISTINCT`): an aggregation over every
    /// column with no aggregate calls.
    pub fn distinct(self) -> Result<DataFrame> {
        let group_by = self
            .schema
            .column_names()
            .iter()
            .map(|n| (Expr::Column(n.to_string()), n.to_string()))
            .collect();
        let plan =
            LogicalPlan::Aggregate { input: Box::new(self.plan), group_by, aggregates: vec![] };
        DataFrame::from_plan(self.session, plan)
    }

    /// Sort by key expressions (`true` = ascending). Plain column keys sort
    /// directly; computed keys are lowered through hidden sort columns and
    /// projected away again, so the output schema is unchanged. This is the
    /// same lowering the SQL frontend's `ORDER BY` uses.
    pub fn sort<I>(self, keys: I) -> Result<DataFrame>
    where
        I: IntoIterator<Item = (Expr, bool)>,
    {
        self.sort_inner(keys, None)
    }

    /// Sort with a top-k limit (`ORDER BY ... LIMIT n`).
    pub fn sort_limit<I>(self, keys: I, limit: usize) -> Result<DataFrame>
    where
        I: IntoIterator<Item = (Expr, bool)>,
    {
        self.sort_inner(keys, Some(limit))
    }

    fn sort_inner(
        self,
        keys: impl IntoIterator<Item = (Expr, bool)>,
        limit: Option<usize>,
    ) -> Result<DataFrame> {
        let keys: Vec<(Expr, bool)> = keys.into_iter().collect();
        for (key, _) in &keys {
            self.check_expr(key, "sort")?;
        }
        let plan = sort_by_exprs(self.plan, keys, limit)?;
        DataFrame::from_plan(self.session, plan)
    }

    /// Keep the first `n` rows.
    pub fn limit(self, n: usize) -> Result<DataFrame> {
        let plan = LogicalPlan::Limit { input: Box::new(self.plan), n };
        DataFrame::from_plan(self.session, plan)
    }

    /// Add a computed column named `name`, keeping every existing column.
    /// If a column of that name already exists, it is replaced in place
    /// (same position, new value) rather than duplicated.
    ///
    /// ```
    /// use quokka::dataframe::{col, lit};
    /// # let session = quokka::QuokkaSession::tpch(0.002, 2).unwrap();
    /// let frame = session
    ///     .table("lineitem").unwrap()
    ///     .with_column("net", col("l_extendedprice").mul(lit(1.0f64).sub(col("l_discount"))))
    ///     .unwrap();
    /// assert!(frame.schema().column_names().contains(&"net"));
    /// ```
    pub fn with_column(self, name: impl Into<String>, expr: Expr) -> Result<DataFrame> {
        let name = name.into();
        self.check_expr(&expr, "with_column")?;
        let mut projected: Vec<(Expr, String)> = Vec::with_capacity(self.schema.len() + 1);
        let mut replaced = false;
        for existing in self.schema.column_names() {
            if existing == name {
                projected.push((expr.clone(), name.clone()));
                replaced = true;
            } else {
                projected.push((Expr::Column(existing.to_string()), existing.to_string()));
            }
        }
        if !replaced {
            projected.push((expr, name));
        }
        let plan = LogicalPlan::Project { input: Box::new(self.plan), exprs: projected };
        DataFrame::from_plan(self.session, plan)
    }

    /// Rename a column, keeping its position and every other column
    /// unchanged. The typical use is pulling the column namespaces of two
    /// frames apart before a [`join`](Self::join) (the engine's namespace
    /// is flat, so inner/left joins reject overlapping names).
    ///
    /// ```
    /// use quokka::dataframe::col;
    /// use quokka::JoinType;
    /// # let session = quokka::QuokkaSession::tpch(0.002, 2).unwrap();
    /// let left = session.table("nation").unwrap();
    /// let right = session
    ///     .table("nation").unwrap()
    ///     .rename("n_nationkey", "r_nationkey").unwrap()
    ///     .rename("n_name", "r_name").unwrap()
    ///     .rename("n_regionkey", "r_regionkey").unwrap()
    ///     .rename("n_comment", "r_comment").unwrap();
    /// let joined = left.join(right, &[("n_regionkey", "r_regionkey")], JoinType::Inner).unwrap();
    /// assert_eq!(joined.schema().len(), 8);
    /// ```
    pub fn rename(self, from: &str, to: impl Into<String>) -> Result<DataFrame> {
        let to = to.into();
        if self.schema.index_of(from).is_err() {
            return Err(QuokkaError::PlanError(format!(
                "rename: unknown column '{from}'{} (columns: [{}])",
                suggest(from, self.schema.column_names()),
                self.schema.column_names().join(", ")
            )));
        }
        if to != from && self.schema.index_of(&to).is_ok() {
            return Err(QuokkaError::PlanError(format!(
                "rename: target '{to}' already names a column; drop or rename it first"
            )));
        }
        let projected = self
            .schema
            .column_names()
            .iter()
            .map(|&existing| {
                let output = if existing == from { to.clone() } else { existing.to_string() };
                (Expr::Column(existing.to_string()), output)
            })
            .collect();
        let plan = LogicalPlan::Project { input: Box::new(self.plan), exprs: projected };
        DataFrame::from_plan(self.session, plan)
    }

    /// Finish building: the frame as an executable [`QueryHandle`] (the
    /// same handle type SQL statements produce). The plan was validated at
    /// every builder step, so this cannot fail.
    pub fn handle(&self) -> QueryHandle {
        self.session.query_validated(self.plan.clone())
    }

    /// Execute on the simulated cluster, streaming result batches as they
    /// are produced.
    pub fn stream(&self) -> Result<BatchStream> {
        self.handle().stream()
    }

    /// Execute on the simulated cluster and materialize the full result.
    pub fn collect(&self) -> Result<QueryOutcome> {
        self.handle().collect()
    }

    /// Execute under an explicit engine configuration.
    pub fn collect_with(&self, config: &crate::EngineConfig) -> Result<QueryOutcome> {
        self.handle().collect_with(config)
    }

    /// Execute on the single-threaded reference executor.
    pub fn collect_reference(&self) -> Result<Batch> {
        self.handle().collect_reference()
    }

    /// The plan rendered before and after optimization.
    pub fn explain(&self) -> Result<String> {
        Ok(self.handle().explain())
    }

    /// Validate that `expr` only references this frame's columns, with a
    /// "did you mean" suggestion on the first unknown name.
    fn check_expr(&self, expr: &Expr, context: &str) -> Result<()> {
        for name in expr.referenced_columns() {
            if self.schema.index_of(&name).is_err() {
                return Err(QuokkaError::PlanError(format!(
                    "{context}: unknown column '{name}'{} (columns: [{}])",
                    suggest(&name, self.schema.column_names()),
                    self.schema.column_names().join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// A [`DataFrame`] with grouping keys attached, waiting for its aggregates.
#[derive(Debug, Clone)]
pub struct GroupedDataFrame {
    frame: DataFrame,
    group_by: Vec<(Expr, String)>,
}

impl GroupedDataFrame {
    /// Apply aggregate functions, producing one row per group (one row
    /// total when grouping by nothing).
    pub fn agg<I>(self, aggs: I) -> Result<DataFrame>
    where
        I: IntoIterator<Item = Agg>,
    {
        let mut aggregates = Vec::new();
        for (i, agg) in aggs.into_iter().enumerate() {
            self.frame.check_expr(&agg.expr, "agg")?;
            aggregates.push(agg.into_agg_expr(i));
        }
        if aggregates.is_empty() && self.group_by.is_empty() {
            return Err(QuokkaError::PlanError(
                "aggregation needs at least one group key or aggregate".to_string(),
            ));
        }
        check_unique(
            self.group_by
                .iter()
                .map(|(_, n)| n.as_str())
                .chain(aggregates.iter().map(|a| a.alias.as_str())),
        )?;
        let plan = LogicalPlan::Aggregate {
            input: Box::new(self.frame.plan),
            group_by: self.group_by,
            aggregates,
        };
        DataFrame::from_plan(self.frame.session, plan)
    }
}

/// The output namespace must be duplicate-free: resolution by name would
/// otherwise silently read the first occurrence.
fn check_unique<'a>(names: impl Iterator<Item = &'a str>) -> Result<()> {
    let mut seen = std::collections::BTreeSet::new();
    for name in names {
        if !seen.insert(name) {
            return Err(QuokkaError::PlanError(format!(
                "duplicate output column '{name}'; disambiguate with .alias(..)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{same_result, EngineConfig};
    use quokka_batch::Column;

    fn session() -> QuokkaSession {
        let session = QuokkaSession::new(EngineConfig::quokka(2));
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int64),
            ("v", DataType::Float64),
            ("tag", DataType::Utf8),
        ]);
        let batch = Batch::try_new(
            schema.clone(),
            vec![
                Column::Int64((0..100).collect()),
                Column::Float64((0..100).map(|i| i as f64 * 0.5).collect()),
                Column::Utf8((0..100).map(|i| format!("t{}", i % 3)).collect()),
            ],
        )
        .unwrap();
        session.register_table("events", schema, batch.chunks(16));
        session
    }

    #[test]
    fn errors_surface_at_build_time_with_suggestions() {
        let s = session();
        let err = s.table("event").unwrap_err();
        assert!(err.to_string().contains("did you mean 'events'"), "{err}");

        let err = s.table("events").unwrap().filter(col("vv").gt(lit(1.0f64))).unwrap_err();
        assert!(err.to_string().contains("did you mean 'v'"), "{err}");

        // A non-boolean filter is a type error, not a runtime failure.
        let err = s.table("events").unwrap().filter(col("v").add(lit(1.0f64))).unwrap_err();
        assert!(err.to_string().contains("must be Bool"), "{err}");

        // Duplicate output names are rejected.
        let err =
            s.table("events").unwrap().select([col("k").into(), col("v").alias("k")]).unwrap_err();
        assert!(err.to_string().contains("duplicate output column"), "{err}");
    }

    #[test]
    fn frames_are_lazy_and_composable() {
        let s = session();
        let base = s.table("events").unwrap().filter(col("k").lt(lit(50i64))).unwrap();
        // Shared prefix, two derived queries.
        let by_tag = base
            .clone()
            .group_by([col("tag")])
            .unwrap()
            .agg([sum(col("v")).alias("total"), count(col("k")).alias("n")])
            .unwrap()
            .sort([(col("tag"), true)])
            .unwrap();
        let top =
            base.select([col("k"), col("v")]).unwrap().sort_limit([(col("v"), false)], 3).unwrap();

        let by_tag_result = by_tag.collect().unwrap();
        assert_eq!(by_tag_result.batch.schema().column_names(), vec!["tag", "total", "n"]);
        assert_eq!(by_tag_result.batch.num_rows(), 3);
        assert!(same_result(&by_tag_result.batch, &by_tag.collect_reference().unwrap()));

        let top_result = top.collect().unwrap();
        assert_eq!(top_result.batch.num_rows(), 3);
        assert!(same_result(&top_result.batch, &top.collect_reference().unwrap()));
    }

    #[test]
    fn computed_sort_keys_and_distinct() {
        let s = session();
        let frame = s
            .table("events")
            .unwrap()
            .select([col("tag")])
            .unwrap()
            .distinct()
            .unwrap()
            .sort([(Expr::case_when(col("tag").eq(lit("t1")), lit(0i64), lit(1i64)), true)])
            .unwrap();
        let batch = frame.collect().unwrap().batch;
        assert_eq!(batch.num_rows(), 3);
        assert_eq!(batch.schema().column_names(), vec!["tag"]);
        // t1 sorts first through the hidden CASE key.
        assert_eq!(batch.value(0, 0), ScalarValue::Utf8("t1".into()));
    }

    #[test]
    fn join_validation_matches_binder_rules() {
        let s = session();
        let dims = Schema::from_pairs(&[("d_k", DataType::Int64), ("d_name", DataType::Utf8)]);
        s.register_table(
            "dims",
            dims.clone(),
            vec![Batch::try_new(
                dims,
                vec![
                    Column::Int64((0..3).collect()),
                    Column::Utf8((0..3).map(|i| format!("d{i}")).collect()),
                ],
            )
            .unwrap()],
        );
        let joined = s
            .table("dims")
            .unwrap()
            .join(s.table("events").unwrap(), &[("d_k", "k")], JoinType::Inner)
            .unwrap();
        assert_eq!(joined.schema().len(), 5);
        let outcome = joined.collect().unwrap();
        assert!(same_result(&outcome.batch, &joined.collect_reference().unwrap()));

        let err = s
            .table("dims")
            .unwrap()
            .join(s.table("events").unwrap(), &[("d_k", "kk")], JoinType::Inner)
            .unwrap_err();
        assert!(err.to_string().contains("did you mean 'k'"), "{err}");

        let err = s
            .table("dims")
            .unwrap()
            .join(s.table("events").unwrap(), &[("d_name", "k")], JoinType::Inner)
            .unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");

        let err = s
            .table("events")
            .unwrap()
            .join(s.table("events").unwrap(), &[("k", "k")], JoinType::Inner)
            .unwrap_err();
        assert!(err.to_string().contains("duplicate column"), "{err}");
    }

    #[test]
    fn semi_and_anti_joins_keep_this_frames_schema() {
        let s = session();
        let dims = Schema::from_pairs(&[("d_k", DataType::Int64), ("d_name", DataType::Utf8)]);
        s.register_table(
            "dims",
            dims.clone(),
            vec![Batch::try_new(
                dims,
                vec![
                    Column::Int64((0..3).collect()),
                    Column::Utf8((0..3).map(|i| format!("d{i}")).collect()),
                ],
            )
            .unwrap()],
        );
        // events.k in 0..100; dims.d_k in 0..3.
        let semi = s
            .table("events")
            .unwrap()
            .semi_join(s.table("dims").unwrap(), &[("k", "d_k")])
            .unwrap();
        assert_eq!(semi.schema().column_names(), vec!["k", "v", "tag"]);
        let semi_result = semi.collect().unwrap();
        assert_eq!(semi_result.batch.num_rows(), 3);
        assert!(same_result(&semi_result.batch, &semi.collect_reference().unwrap()));

        let anti = s
            .table("events")
            .unwrap()
            .anti_join(s.table("dims").unwrap(), &[("k", "d_k")])
            .unwrap();
        assert_eq!(anti.collect().unwrap().batch.num_rows(), 97);

        // Key validation matches the inner-join rules.
        let err = s
            .table("events")
            .unwrap()
            .semi_join(s.table("dims").unwrap(), &[("kk", "d_k")])
            .unwrap_err();
        assert!(err.to_string().contains("did you mean 'k'"), "{err}");
        let err = s
            .table("events")
            .unwrap()
            .anti_join(s.table("dims").unwrap(), &[("tag", "d_k")])
            .unwrap_err();
        assert!(err.to_string().contains("type mismatch"), "{err}");
    }

    #[test]
    fn with_column_adds_replaces_and_validates() {
        let s = session();
        let frame =
            s.table("events").unwrap().with_column("double_v", col("v").mul(lit(2.0f64))).unwrap();
        assert_eq!(frame.schema().column_names(), vec!["k", "v", "tag", "double_v"]);
        let batch = frame.clone().sort([(col("k"), true)]).unwrap().collect().unwrap().batch;
        assert_eq!(batch.value(1, 3), ScalarValue::Float64(1.0));
        assert!(same_result(
            &batch,
            &frame.sort([(col("k"), true)]).unwrap().collect_reference().unwrap()
        ));

        // Replacing keeps the column's position.
        let replaced =
            s.table("events").unwrap().with_column("v", col("v").add(lit(1.0f64))).unwrap();
        assert_eq!(replaced.schema().column_names(), vec!["k", "v", "tag"]);
        let batch = replaced.sort([(col("k"), true)]).unwrap().collect().unwrap().batch;
        assert_eq!(batch.value(0, 1), ScalarValue::Float64(1.0));

        let err =
            s.table("events").unwrap().with_column("x", col("vv").add(lit(1.0f64))).unwrap_err();
        assert!(err.to_string().contains("did you mean 'v'"), "{err}");
    }

    #[test]
    fn rename_unblocks_overlapping_join_namespaces() {
        let s = session();
        let renamed = s.table("events").unwrap().rename("k", "k2").unwrap();
        assert_eq!(renamed.schema().column_names(), vec!["k2", "v", "tag"]);

        // A self-join is possible once every shared column is renamed apart.
        let right = renamed.rename("v", "v2").unwrap().rename("tag", "tag2").unwrap();
        let joined =
            s.table("events").unwrap().join(right, &[("k", "k2")], JoinType::Inner).unwrap();
        assert_eq!(joined.schema().len(), 6);
        let outcome = joined.collect().unwrap();
        assert_eq!(outcome.batch.num_rows(), 100);
        assert!(same_result(&outcome.batch, &joined.collect_reference().unwrap()));

        let err = s.table("events").unwrap().rename("kk", "x").unwrap_err();
        assert!(err.to_string().contains("did you mean 'k'"), "{err}");
        let err = s.table("events").unwrap().rename("k", "v").unwrap_err();
        assert!(err.to_string().contains("already names a column"), "{err}");
    }

    #[test]
    fn date_helper_matches_parsed_dates() {
        assert_eq!(
            date(1998, 9, 2),
            Expr::Literal(ScalarValue::Date(quokka_batch::datatype::parse_date("1998-09-02")))
        );
    }
}
