//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` with the
//! non-poisoning `lock()`/`read()`/`write()` API, backed by `std::sync`.
//! Poisoned locks are recovered rather than propagated, matching
//! `parking_lot`'s behaviour of never poisoning.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
