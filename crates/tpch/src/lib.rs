//! TPC-H workload for the Quokka reproduction.
//!
//! The paper evaluates on the full TPC-H benchmark at scale factor 100,
//! stored as Parquet on S3. This crate provides the equivalent workload at
//! laptop scale:
//!
//! * [`schema`] — the eight TPC-H table schemas.
//! * [`generator`] — a deterministic `dbgen`-style data generator. Row
//!   counts scale with the scale factor; value distributions (dates, key
//!   relationships, categorical columns, comment text containing the
//!   keywords the queries grep for) follow the TPC-H specification closely
//!   enough that every query touches a meaningful amount of data and every
//!   predicate is selective rather than degenerate.
//! * [`queries`] — hand-built logical plans for **all 22 TPC-H queries**,
//!   with subqueries decorrelated into joins/aggregations the same way a SQL
//!   optimizer would.
//!
//! The paper's representative subset (§V) is exposed as
//! [`queries::REPRESENTATIVE`]: Q1 and Q6 (category I, simple aggregation),
//! Q3 and Q10 (category II, simple pipelined joins), and Q5, Q7, Q8, Q9
//! (category III, multi-join pipelines).

pub mod generator;
pub mod queries;
pub mod schema;

pub use generator::TpchGenerator;
pub use queries::{query, QueryCategory, ALL_QUERIES, REPRESENTATIVE};
